//! Offline stand-in for `crossbeam`, providing the `scope` API the tensor
//! kernels use, implemented on `std::thread::scope` (std has had scoped
//! threads since 1.63, so crossbeam's version is no longer needed here).

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope reference
    /// (unused by this workspace, present for API compatibility).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which threads borrowing from the environment can
/// be spawned; all are joined before `scope` returns.
///
/// # Errors
///
/// Mirrors crossbeam's signature by returning `Result`; with std scoped
/// threads a panicking child propagates at join, so this only ever returns
/// `Ok` — callers' `.expect(...)` is a no-op kept for API compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}
