//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple timing loop (warmup + timed samples, median-of-samples
//! reporting) instead of criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample, recording per-call duration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup call so first-touch costs don't pollute the samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

fn median(mut xs: Vec<Duration>) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort();
    xs[xs.len() / 2]
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    println!("bench {label:<48} median {:>12.3?}", median(b.results));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; mirrors the real API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, &mut f);
        self
    }
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
