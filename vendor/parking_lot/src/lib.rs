//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's non-poisoning API shape.

use std::sync;

pub use sync::MutexGuard as StdMutexGuard;

/// Mutex with parking_lot's `lock()` (no poisoning result).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New mutex around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Lock, recovering from poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's `read()`/`write()` (no poisoning results).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Shared lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
