//! Offline stand-in for `serde`.
//!
//! The real `serde` cannot be fetched in this build environment, so this
//! vendored crate provides the subset the workspace actually uses:
//! [`Serialize`]/[`Deserialize`] traits with `#[derive(...)]` support,
//! backed by a concrete JSON-shaped value tree ([`value::Value`]) instead
//! of serde's visitor machinery. `serde_json` (also vendored) renders and
//! parses that tree.
//!
//! The wire format matches serde's JSON conventions for the shapes this
//! workspace serializes: structs become objects, unit enum variants become
//! strings, struct/tuple variants become externally tagged objects, and
//! `Duration` becomes `{"secs": u64, "nanos": u32}`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Error produced when a value tree cannot be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decode `self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::deserialize_value(
                                    it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    _ => Err(Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().serialize_value());
        m.insert("nanos".to_string(), self.subsec_nanos().serialize_value());
        Value::Object(m)
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs =
            u64::deserialize_value(m.get("secs").ok_or_else(|| Error::custom("missing secs"))?)?;
        let nanos = u32::deserialize_value(
            m.get("nanos")
                .ok_or_else(|| Error::custom("missing nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}
