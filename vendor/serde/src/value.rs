//! The JSON-shaped value tree that stands in for serde's data model.

/// An arbitrary-precision-ish JSON number: unsigned, signed, or float,
/// mirroring `serde_json::Number`'s three-way representation so `u64`
/// byte counts round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// Number from a `u64`.
    pub fn from_u64(v: u64) -> Number {
        Number::PosInt(v)
    }

    /// Number from an `i64` (non-negative values normalize to `PosInt`).
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// Number from an `f64`.
    pub fn from_f64(v: f64) -> Number {
        Number::Float(v)
    }

    /// As `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            Number::NegInt(_) => None,
            Number::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(v) => Some(*v as f64),
            Number::NegInt(v) => Some(*v as f64),
            Number::Float(f) => Some(*f),
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null like serde_json's
                    // lossy modes. Parsing maps null back to Null, so callers
                    // should not rely on round-tripping non-finite floats.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An order-preserving string-keyed map (`serde_json::Map` stand-in).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K, V> {
    entries: Vec<(K, V)>,
}

impl<V> Map<String, V> {
    /// Empty map.
    pub fn new() -> Map<String, V> {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert, replacing any existing entry with the same key. Returns the
    /// replaced value, if any.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value (`serde_json::Value` stand-in).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for [`Value::Number`].
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` for [`Value::Object`].
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for [`Value::Array`].
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for [`Value::String`].
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// The `u64` behind a number value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The `i64` behind a number value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The `f64` behind a number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string slice behind a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The map behind an object value.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The vec behind an array value.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects index to `Null`
    /// (matching `serde_json`'s forgiving indexing).
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
