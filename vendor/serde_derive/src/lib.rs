//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! hand-rolled parser extracts the item's shape — struct with named or
//! tuple fields, or enum whose variants are unit / tuple / struct-like —
//! and the impls are emitted as source text. Generic types and `#[serde]`
//! attributes are not supported (the workspace uses neither); encountering
//! them is a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Split `tokens` on commas at angle-bracket depth zero. Delimited groups
/// are single tokens, so commas inside `(...)`, `[...]`, `{...}` never
/// surface; only `<...>` needs explicit depth counting.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle: i32 = 0;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Skip leading outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`), returning the rest.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // '#' then bracket group
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Field names of a brace-delimited named-field body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(body)
        .into_iter()
        .filter_map(|field| {
            let field = skip_attrs_and_vis(&field);
            match field.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => continue,
            None => panic!("serde derive: expected `struct` or `enum`"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    let rest: Vec<TokenTree> = it.cloned().collect();
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported ({name})");
    }
    let shape = if kind == "struct" {
        match rest.first() {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(split_top_level_commas(&body).len())
            }
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        let body = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                g.stream().into_iter().collect::<Vec<_>>()
            }
            other => panic!("serde derive: expected enum body, got {other:?}"),
        };
        let variants = split_top_level_commas(&body)
            .into_iter()
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| {
                let chunk = skip_attrs_and_vis(&chunk);
                let name = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde derive: expected variant name, got {other:?}"),
                };
                let shape = match chunk.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantShape::Named(parse_named_fields(&body))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantShape::Tuple(split_top_level_commas(&body).len())
                    }
                    _ => VariantShape::Unit,
                };
                Variant { name, shape }
            })
            .collect();
        Shape::Enum(variants)
    };
    Item {
        name: name.clone(),
        shape,
    }
}

fn named_to_object(fields: &[String], access: &str) -> String {
    let mut src = String::from("{ let mut __m = serde::Map::new();\n");
    for f in fields {
        src.push_str(&format!(
            "__m.insert(String::from(\"{f}\"), serde::Serialize::serialize_value({access}{f}));\n",
        ));
    }
    src.push_str("serde::Value::Object(__m) }");
    src
}

fn named_from_object(name_path: &str, fields: &[String], map: &str) -> String {
    let mut src = format!("{name_path} {{\n");
    for f in fields {
        src.push_str(&format!(
            "{f}: serde::Deserialize::deserialize_value({map}.get(\"{f}\").unwrap_or(&serde::Value::Null))?,\n",
        ));
    }
    src.push('}');
    src
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => named_to_object(fields, "&self."),
        Shape::TupleStruct(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String(String::from(\"{vname}\")),\n",
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ let mut __m = serde::Map::new(); __m.insert(String::from(\"{vname}\"), {inner}); serde::Value::Object(__m) }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inner = named_to_object(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ let __inner = {inner}; let mut __m = serde::Map::new(); __m.insert(String::from(\"{vname}\"), __inner); serde::Value::Object(__m) }}\n",
                            binds = fields.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
            fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::NamedStruct(fields) => {
            let build = named_from_object(name, fields, "__m");
            format!(
                "let __m = __v.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}\"))?;\nOk({build})"
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::deserialize_value(__v)?))"),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!(
                    "serde::Deserialize::deserialize_value(__a.get({i}).unwrap_or(&serde::Value::Null))?"
                ))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"))
                    }
                    VariantShape::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "{name}::{vname}(serde::Deserialize::deserialize_value(__inner)?)"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "serde::Deserialize::deserialize_value(__a.get({i}).unwrap_or(&serde::Value::Null))?"
                                ))
                                .collect();
                            format!(
                                "{{ let __a = __inner.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}::{vname}\"))?; {name}::{vname}({}) }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!(
                            "if let Some(__inner) = __m.get(\"{vname}\") {{ return Ok({build}); }}\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let build = named_from_object(&format!("{name}::{vname}"), fields, "__fm");
                        tagged_arms.push_str(&format!(
                            "if let Some(__inner) = __m.get(\"{vname}\") {{\n\
                                let __fm = __inner.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                                return Ok({build});\n\
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                    match __s {{\n{unit_arms}\
                        __other => return Err(serde::Error::custom(format!(\"unknown {name} variant '{{__other}}'\"))),\n\
                    }}\n\
                }}\n\
                let __m = __v.as_object().ok_or_else(|| serde::Error::custom(\"expected string or object for {name}\"))?;\n\
                {tagged_arms}\
                Err(serde::Error::custom(\"unknown {name} variant\"))"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
            fn deserialize_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
