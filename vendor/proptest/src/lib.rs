//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range and
//! `Just` strategies, `prop_map`, `prop::collection::vec`, `prop_oneof!`,
//! the `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed (derived from the test
//! name), so CI runs are reproducible. There is **no shrinking**: a
//! failing case reports its inputs via the panic message only.

use std::ops::Range;

/// Deterministic xorshift RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from a seed (zero is remapped).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from a test name, for reproducible per-test streams.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized by `size` (a `usize` or a
    /// `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi.saturating_sub(self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-of strategy built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Run `body` until `cfg.cases` cases pass, panicking on the first failure.
/// Drives the code generated by [`proptest!`].
pub fn run_cases(
    name: &str,
    cfg: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut case_index = 0u64;
    while passed < cfg.cases {
        case_index += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case #{case_index}: {msg}")
            }
        }
    }
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// `prop::` namespace mirror.
    pub mod prop {
        pub use crate::collection;
    }
}

pub use prelude::prop;

/// Assert inside a property; failure aborts only this case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Reject the current inputs (the case is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `name in strategy` binding is drawn per
/// case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_internal! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_internal! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_internal {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__cfg, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}
