//! Offline stand-in for `rand`.
//!
//! The workspace's tensor crate ships its own deterministic
//! `XorShiftRng`, so nothing here is used on hot paths; this crate only
//! satisfies manifest references with a tiny deterministic generator.

/// A deterministic xorshift generator with a `rand`-flavoured surface.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Generator seeded with `seed` (zero is remapped).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
