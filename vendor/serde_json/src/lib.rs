//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! value tree: a JSON writer (compact and pretty), a recursive-descent
//! JSON parser, `to_value`/`from_value`, and a `json!` macro.

pub use serde::value::{Map, Number, Value};

/// Error for parse and conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Rebuild a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Fails when the tree does not match `T`'s shape.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize_value(&value)?)
}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a `T`.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::deserialize_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let n = if is_float {
            Number::from_f64(text.parse::<f64>().map_err(|e| Error::new(e.to_string()))?)
        } else if text.starts_with('-') {
            Number::from_i64(text.parse::<i64>().map_err(|e| Error::new(e.to_string()))?)
        } else {
            Number::from_u64(text.parse::<u64>().map_err(|e| Error::new(e.to_string()))?)
        };
        Ok(Value::Number(n))
    }
}

/// Build a [`Value`] from JSON-looking syntax, with expression
/// interpolation for any `Serialize` value (a simplified TT-muncher in the
/// style of the real `serde_json::json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!({} $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

/// Internal helper for `json!` arrays: accumulates comma-separated
/// elements, each of which may itself be `json!` syntax.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Finished: no more tokens.
    ([$($elems:expr),*]) => { $crate::Value::Array(vec![$($elems),*]) };
    // Trailing comma.
    ([$($elems:expr),*] ,) => { $crate::json_array!([$($elems),*]) };
    // Separator comma left behind by a nested-literal element.
    ([$($elems:expr),*] , $($rest:tt)+) => {
        $crate::json_array!([$($elems),*] $($rest)+)
    };
    // Next element is a nested array/object/null literal.
    ([$($elems:expr),*] null $($rest:tt)*) => {
        $crate::json_array!([$($elems,)* $crate::Value::Null] $($rest)*)
    };
    ([$($elems:expr),*] [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_array!([$($elems,)* $crate::json!([ $($inner)* ])] $($rest)*)
    };
    ([$($elems:expr),*] { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_array!([$($elems,)* $crate::json!({ $($inner)* })] $($rest)*)
    };
    // Next element is a general expression: munch tokens up to the next
    // top-level comma.
    ([$($elems:expr),*] $($rest:tt)*) => {
        $crate::json_expr_then!(json_array_push [$($elems),*] () $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_push {
    ([$($elems:expr),*] ($($expr:tt)+) $($rest:tt)*) => {
        $crate::json_array!([$($elems,)* $crate::to_value(&($($expr)+)).expect("json! value")] $($rest)*)
    };
}

/// Internal helper for `json!` objects: `key : value` pairs where the value
/// may be nested `json!` syntax or a general expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ({$($done:tt)*}) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_object_insert!(__m $($done)*);
        $crate::Value::Object(__m)
    }};
    ({$($done:tt)*} ,) => { $crate::json_object!({$($done)*}) };
    // Separator comma left behind by a nested-literal value.
    ({$($done:tt)*} , $($rest:tt)+) => {
        $crate::json_object!({$($done)*} $($rest)+)
    };
    // key : nested literal
    ({$($done:tt)*} $key:tt : null $($rest:tt)*) => {
        $crate::json_object!({$($done)* ($key, $crate::Value::Null)} $($rest)*)
    };
    ({$($done:tt)*} $key:tt : [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_object!({$($done)* ($key, $crate::json!([ $($inner)* ]))} $($rest)*)
    };
    ({$($done:tt)*} $key:tt : { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_object!({$($done)* ($key, $crate::json!({ $($inner)* }))} $($rest)*)
    };
    // key : expression — munch to the next top-level comma.
    ({$($done:tt)*} $key:tt : $($rest:tt)*) => {
        $crate::json_expr_then!(json_object_pair {$($done)*} $key () $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_pair {
    ({$($done:tt)*} $key:tt ($($expr:tt)+) $($rest:tt)*) => {
        $crate::json_object!({$($done)* ($key, $crate::to_value(&($($expr)+)).expect("json! value"))} $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_insert {
    ($m:ident) => {};
    ($m:ident ($key:tt, $val:expr) $($rest:tt)*) => {
        $m.insert(::std::string::String::from($key), $val);
        $crate::json_object_insert!($m $($rest)*);
    };
}

/// Munches tokens into an accumulated expression until a top-level comma,
/// then dispatches to `$next!` with the context, the munched expression,
/// and the remaining tokens (comma consumed).
#[doc(hidden)]
#[macro_export]
macro_rules! json_expr_then {
    // Comma ends the expression.
    ($next:ident $($ctx:tt)*) => { $crate::json_expr_scan!($next () $($ctx)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_expr_scan {
    // Reorder: ctx tokens come first, then the pending-expr parens, then input.
    // Entry: ($next) () ctx... (pending) input...
    ($next:ident () $ctx1:tt ($($expr:tt)*) , $($rest:tt)*) => {
        $crate::$next!($ctx1 ($($expr)*) $($rest)*)
    };
    ($next:ident () $ctx1:tt ($($expr:tt)*)) => {
        $crate::$next!($ctx1 ($($expr)*))
    };
    ($next:ident () $ctx1:tt ($($expr:tt)*) $head:tt $($rest:tt)*) => {
        $crate::json_expr_scan!($next () $ctx1 ($($expr)* $head) $($rest)*)
    };
    // Object-pair variant: two context tts (done-list and key).
    ($next:ident () $ctx1:tt $ctx2:tt ($($expr:tt)*) , $($rest:tt)*) => {
        $crate::$next!($ctx1 $ctx2 ($($expr)*) $($rest)*)
    };
    ($next:ident () $ctx1:tt $ctx2:tt ($($expr:tt)*)) => {
        $crate::$next!($ctx1 $ctx2 ($($expr)*))
    };
    ($next:ident () $ctx1:tt $ctx2:tt ($($expr:tt)*) $head:tt $($rest:tt)*) => {
        $crate::json_expr_scan!($next () $ctx1 $ctx2 ($($expr)* $head) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: Value = from_str("[1, -2, 3.5, true, null, \"hi\\n\"]").unwrap();
        assert_eq!(v[0], 1);
        assert_eq!(v[1], -2);
        assert_eq!(v[2].as_f64(), Some(3.5));
        assert_eq!(v[3], Value::Bool(true));
        assert!(v[4].is_null());
        assert_eq!(v[5], "hi\n");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        let label = "skipper";
        let v = json!({
            "name": label,
            "t": 1 + 1,
            "nested": {"xs": [1, 2, 3], "flag": true},
            "arr": [label, 4.5],
        });
        assert_eq!(v["name"], "skipper");
        assert_eq!(v["t"], 2);
        assert_eq!(v["nested"]["xs"][2], 3);
        assert_eq!(v["arr"][1].as_f64(), Some(4.5));
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn object_indexing_is_forgiving() {
        let v = json!({"a": 1});
        assert!(v["missing"].is_null());
        assert!(v["a"][3].is_null());
    }
}
