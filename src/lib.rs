//! # skipper
//!
//! A from-scratch Rust reproduction of **"Skipper: Enabling efficient SNN
//! training through activation-checkpointing and time-skipping"**
//! (Singh et al., MICRO 2022).
//!
//! Training spiking neural networks with backpropagation-through-time
//! stores every layer's state for every timestep, so activation memory
//! grows linearly with the simulation horizon `T` and dominates device
//! memory. This workspace implements the paper's two remedies and
//! everything they stand on:
//!
//! * **temporal activation checkpointing** — save the neuron state at `C`
//!   boundaries, re-execute one segment at a time during the backward pass
//!   (`O(T/C) + O(C)` memory, one extra forward pass);
//! * **Skipper** — monitor the per-timestep spike activity during the
//!   first forward pass and skip the recomputation (and backward) of
//!   low-activity timesteps entirely, removing the overhead and shrinking
//!   memory again with little accuracy cost.
//!
//! The facade re-exports the sub-crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `skipper-tensor` | dense tensors, conv/matmul/pool kernels |
//! | [`autograd`] | `skipper-autograd` | reverse-mode tape, surrogate spikes |
//! | [`obs`] | `skipper-obs` | structured tracing, metrics, Perfetto trace export |
//! | [`memprof`] | `skipper-memprof` | memory accounting, allocator/device/latency models |
//! | [`snn`] | `skipper-snn` | LIF neurons, layers, topologies, encoders, optimizers |
//! | [`data`] | `skipper-data` | synthetic CIFAR / DVS-Gesture / N-MNIST |
//! | [`core`] | `skipper-core` | the five training methods + instrumentation |
//!
//! # Example
//!
//! Train a small SNN with Skipper and watch memory and skipping at work:
//!
//! ```
//! use skipper::prelude::*;
//!
//! let net = custom_net(&ModelConfig {
//!     input_hw: 8,
//!     width_mult: 0.25,
//!     ..ModelConfig::default()
//! });
//! let mut session = TrainSession::builder(
//!     net,
//!     Method::Skipper { checkpoints: 2, percentile: 50.0 },
//!     16,
//! )
//! .optimizer(Box::new(Adam::new(1e-3)))
//! .build()
//! .expect("valid method for this network and horizon");
//! let mut rng = XorShiftRng::new(7);
//! let frames = Tensor::rand([2, 3, 8, 8], &mut rng);
//! let spikes = PoissonEncoder::default().encode(&frames, 16, &mut rng);
//! let stats = session.train_batch(&spikes, &[0, 1]);
//! assert!(stats.skipped_steps > 0);
//! ```

pub use skipper_autograd as autograd;
pub use skipper_core as core;
pub use skipper_data as data;
pub use skipper_memprof as memprof;
pub use skipper_obs as obs;
pub use skipper_snn as snn;
pub use skipper_tensor as tensor;

/// One-stop imports for the common training workflow: build a session with
/// [`TrainSession::builder`], feed it encoded spike batches, read the
/// stats.
///
/// ```
/// use skipper::prelude::*;
///
/// let net = custom_net(&ModelConfig::default());
/// let session = TrainSession::builder(net, Method::Bptt, 8)
///     .workers(1)
///     .build()
///     .unwrap();
/// assert_eq!(session.timesteps(), 8);
/// ```
pub mod prelude {
    pub use skipper_core::{
        BatchStats, EpochStats, EvalStats, InferSession, InferSkip, Method, MethodError,
        Prediction, SamMetric, SentinelConfig, SessionBuilder, SkipPolicy, SkipperError,
        TrainSession,
    };
    pub use skipper_snn::{
        custom_net, lenet5, vgg5, Adam, Encoder, LatencyEncoder, ModelConfig, Optimizer,
        PoissonEncoder, Sgd, SpikingNetwork,
    };
    pub use skipper_tensor::{Tensor, XorShiftRng};
}
