//! `skipper-cli` — train, evaluate and inspect SNNs from the command line.
//!
//! ```text
//! skipper-cli info  --model vgg5
//! skipper-cli train --model lenet5 --dataset dvs-gesture --method skipper \
//!                   --checkpoints 4 --percentile 50 --epochs 4 --save model.skw
//! skipper-cli eval  --model lenet5 --dataset dvs-gesture --load model.skw
//! skipper-cli sweep --model vgg5 --dataset cifar10
//! ```
//!
//! Models/datasets are the paper's scaled workload pairings (see
//! `skipper-bench`); methods are `bptt`, `checkpointed`, `skipper`,
//! `tbptt`.

use skipper_bench::{evaluate, fit, measure, MeasureConfig, Workload, WorkloadKind};
use skipper_core::{AnalyticModel, Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::{load_params, save_params, Adam};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
skipper-cli — memory-efficient SNN training (Skipper, MICRO 2022 reproduction)

USAGE:
    skipper-cli <COMMAND> [OPTIONS]

COMMANDS:
    info     describe a model: layers, parameters, analytic memory table
    train    train a model on a synthetic dataset
    eval     evaluate saved weights
    sweep    compare all four training methods on one workload

OPTIONS (with defaults):
    --model <vgg5|vgg11|resnet20|lenet5|custom-net|alexnet>   [vgg5]
    --dataset <cifar10|cifar100|dvs-gesture|n-mnist>          [matched to model]
    --method <bptt|checkpointed|skipper|tbptt>                [skipper]
    --checkpoints <C>        checkpoint count                 [workload default]
    --percentile <p>         skip percentile (skipper)        [workload default]
    --window <trW>           truncation window (tbptt)        [workload default]
    --timesteps <T>          simulation horizon               [workload default]
    --batch <B>              batch size                       [workload default]
    --epochs <N>             training epochs                  [3]
    --lr <f>                 Adam learning rate               [2e-3]
    --save <path>            write weights after training
    --load <path>            read weights before eval/train
";

/// Parsed command line.
#[derive(Debug)]
struct Args {
    command: String,
    options: HashMap<String, String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing command")?;
    let mut options = HashMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got '{}'", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        options.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(Args { command, options })
}

impl Args {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }
}

fn workload_kind(model: &str) -> Result<WorkloadKind, String> {
    Ok(match model {
        "vgg5" => WorkloadKind::Vgg5Cifar10,
        "vgg11" => WorkloadKind::Vgg11Cifar100,
        "resnet20" => WorkloadKind::Resnet20Cifar10,
        "lenet5" => WorkloadKind::LenetDvsGesture,
        "custom-net" => WorkloadKind::CustomNetNmnist,
        "alexnet" => WorkloadKind::AlexnetCifar10,
        other => return Err(format!("unknown model '{other}' (see --help)")),
    })
}

fn method_from(args: &Args, w: &Workload) -> Result<Method, String> {
    let c = args.get("checkpoints", w.checkpoints)?;
    let p = args.get("percentile", w.percentile)?;
    let trw = args.get("window", w.trw)?;
    Ok(match args.str("method", "skipper").as_str() {
        "bptt" => Method::Bptt,
        "checkpointed" => Method::Checkpointed { checkpoints: c },
        "skipper" => Method::Skipper {
            checkpoints: c,
            percentile: p,
        },
        "tbptt" => Method::Tbptt { window: trw },
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let kind = workload_kind(&args.str("model", "vgg5"))?;
    let w = Workload::build(kind);
    let t = args.get("timesteps", w.timesteps)?;
    let b = args.get("batch", w.batch)?;
    println!("{} (scaled reproduction workload)", w.name);
    println!("  spiking layers (L_n): {}", w.net.spiking_layer_count());
    println!("  parameters:           {}", w.net.param_scalars());
    println!("  input shape:          {:?}", w.net.input_shape());
    println!("  classes:              {}", w.net.num_classes());
    println!(
        "  per-step tape:        {} elems/sample",
        w.net.per_step_graph_elems_per_sample()
    );
    println!(
        "  paper parameters:     T={}, B={}, C={}, p={}, trW={}",
        w.paper.timesteps, w.paper.batch, w.paper.checkpoints, w.paper.percentile, w.paper.trw
    );
    let model = AnalyticModel::new(&w.net);
    println!("\n  analytic activation memory at T={t}, B={b}:");
    for m in [
        Method::Bptt,
        Method::Checkpointed {
            checkpoints: w.checkpoints,
        },
        Method::Skipper {
            checkpoints: w.checkpoints,
            percentile: w.percentile,
        },
        Method::Tbptt { window: w.trw },
    ] {
        println!(
            "    {:<16} {:>12} bytes",
            m.label(),
            model.activation_bytes(&m, t, b)
        );
    }
    println!(
        "    optimal C (analytic): {}",
        model.best_checkpoint_count(t, b)
    );
    Ok(())
}

fn load_into(w: &mut Workload, path: &str) -> Result<(), String> {
    load_params(w.net.params_mut(), path).map_err(|e| format!("loading '{path}': {e}"))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let kind = workload_kind(&args.str("model", "vgg5"))?;
    let mut w = Workload::build(kind);
    if let Some(path) = args.options.get("load") {
        load_into(&mut w, path)?;
    }
    let t = args.get("timesteps", w.timesteps)?;
    let batch = args.get("batch", w.batch)?;
    let epochs = args.get("epochs", 3usize)?;
    let lr = args.get("lr", 2e-3f32)?;
    let method = method_from(args, &w)?;
    method
        .validate(&w.net, t)
        .map_err(|e| format!("invalid configuration: {e}"))?;
    println!(
        "training {} with {} for {epochs} epochs (T={t}, B={batch}, lr={lr})",
        w.name, method
    );
    let mut session = TrainSession::builder(w.net, method, t)
        .optimizer(Box::new(Adam::new(lr)))
        .build()
        .expect("valid method");
    let r = fit(&mut session, &w.train, &w.test, epochs, batch, 42);
    for (e, (tr, va)) in r.train_acc.iter().zip(&r.val_acc).enumerate() {
        println!(
            "  epoch {e}: train {:.1}%, val {:.1}%",
            100.0 * tr,
            100.0 * va
        );
    }
    println!(
        "done in {:.1}s; skipped {} timesteps total",
        r.wall_s, r.skipped
    );
    if let Some(path) = args.options.get("save") {
        let net = session.into_net();
        save_params(net.params(), path).map_err(|e| format!("saving '{path}': {e}"))?;
        println!("weights written to {path}");
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let kind = workload_kind(&args.str("model", "vgg5"))?;
    let mut w = Workload::build(kind);
    if let Some(path) = args.options.get("load") {
        load_into(&mut w, path)?;
    } else {
        println!("note: no --load given; evaluating the fresh initialisation");
    }
    let t = args.get("timesteps", w.timesteps)?;
    let batch = args.get("batch", w.batch)?;
    let session = TrainSession::builder(w.net, Method::Bptt, t)
        .optimizer(Box::new(Adam::new(1e-3)))
        .build()
        .expect("valid method");
    let acc = evaluate(&session, &w.test, batch, 7);
    let chance = 1.0 / w.test.num_classes() as f64;
    println!(
        "test accuracy: {:.1}% ({} samples, chance {:.1}%)",
        100.0 * acc,
        w.test.len(),
        100.0 * chance
    );
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let kind = workload_kind(&args.str("model", "vgg5"))?;
    let w0 = Workload::build(kind);
    let t = args.get("timesteps", w0.timesteps)?;
    let batch = args.get("batch", w0.batch)?;
    let device = DeviceModel::a100_80gb();
    println!("{} — method comparison (T={t}, B={batch})", w0.name);
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "method", "tensor peak", "modeled iter", "vs baseline"
    );
    let mut base = None;
    for m in w0.methods() {
        let w = Workload::build(kind);
        if m.validate(&w.net, t).is_err() {
            println!("{:<16} (invalid at T={t})", m.label());
            continue;
        }
        let mut session = TrainSession::builder(w.net, m.clone(), t)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build()
            .expect("valid method");
        let meas = measure(
            &mut session,
            &w.train,
            &MeasureConfig {
                iterations: 2,
                warmup: 1,
                batch,
                timesteps: t,
            },
            &device,
        );
        let rel = base.map_or(1.0, |b: f64| meas.modeled_s / b);
        if base.is_none() {
            base = Some(meas.modeled_s);
        }
        println!(
            "{:<16} {:>10} KiB {:>12.2}ms {:>11.2}x",
            m.label(),
            meas.tensor_peak / 1024,
            meas.modeled_s * 1e3,
            rel
        );
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    let args = parse_args(&argv)?;
    match args.command.as_str() {
        "info" => cmd_info(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "sweep" => cmd_sweep(&args),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    // Flush/teardown order: the metrics server drops before the guard
    // runs shutdown(), so /metrics stays live for the whole run and every
    // sink (stderr, files) is drained even on the error path.
    let _obs = skipper::obs::ShutdownGuard::new();
    skipper::obs::init_from_env();
    let _serve = skipper::obs::serve_from_env();
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        parse_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_command_and_options() {
        let a = args(&["train", "--model", "vgg5", "--epochs", "7"]);
        assert_eq!(a.command, "train");
        assert_eq!(a.str("model", "x"), "vgg5");
        assert_eq!(a.get("epochs", 0usize).unwrap(), 7);
        assert_eq!(a.get("batch", 8usize).unwrap(), 8, "default");
    }

    #[test]
    fn rejects_malformed_options() {
        let argv: Vec<String> = vec!["train".into(), "oops".into()];
        assert!(parse_args(&argv).is_err());
        let argv: Vec<String> = vec!["train".into(), "--epochs".into()];
        assert!(parse_args(&argv).is_err());
    }

    #[test]
    fn model_names_resolve() {
        assert!(workload_kind("resnet20").is_ok());
        assert!(workload_kind("vgg19").is_err());
    }

    #[test]
    fn method_selection_uses_workload_defaults() {
        let w = Workload::build(WorkloadKind::Vgg5Cifar10);
        let a = args(&["train", "--method", "skipper"]);
        match method_from(&a, &w).unwrap() {
            Method::Skipper {
                checkpoints,
                percentile,
            } => {
                assert_eq!(checkpoints, w.checkpoints);
                assert_eq!(percentile, w.percentile);
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = args(&["train", "--method", "tbptt", "--window", "9"]);
        assert_eq!(method_from(&a, &w).unwrap(), Method::Tbptt { window: 9 });
    }

    #[test]
    fn bad_numbers_are_reported() {
        let a = args(&["train", "--epochs", "banana"]);
        assert!(a.get("epochs", 1usize).is_err());
    }
}
