//! Per-binary observability harness: one RAII guard that standardizes how
//! every bench bin starts and ends its instrumented life.
//!
//! [`BenchRun::start`] clears the metrics registry, installs a
//! [`NullSink`](skipper_obs::NullSink) (so the registry aggregates even
//! with no other sink), honors the `SKIPPER_OBS`, `SKIPPER_OBS_ADDR` and
//! `SKIPPER_OBS_JSONL` environment knobs, and starts the wall clock. Dropping the guard —
//! including on early return — collects a
//! [`RunManifest`](skipper_report::RunManifest) from the registry, saves
//! it as `results/BENCH_<name>.json`, stops the metrics endpoint and calls
//! [`skipper_obs::shutdown`] so file-backed sinks (JSONL, Chrome traces)
//! are never left truncated.
//!
//! The harness also owns the continuous profiler: `SKIPPER_PROF_HZ`
//! starts the span-stack sampler for any bench (`=0` forces it off even
//! for benches that profile by default via
//! [`BenchRun::start_profiled`]), and a profiled run writes its folded
//! stacks to `results/profile_<name>.folded` — ready for
//! `flamegraph.pl` or any collapsed-stack viewer.

use skipper_report::RunManifest;
use std::time::Instant;

/// RAII harness for one bench binary; see the module docs.
#[derive(Debug)]
pub struct BenchRun {
    name: &'static str,
    started: Instant,
    server: Option<skipper_obs::MetricsServer>,
    profiler: Option<skipper_obs::Profiler>,
}

impl BenchRun {
    /// Start the harness. Call first thing in `main` and keep the guard
    /// alive to the end:
    ///
    /// ```no_run
    /// let _run = skipper_bench::BenchRun::start("fig03_time_vs_batch");
    /// // ... benchmark ...
    /// ```
    pub fn start(name: &'static str) -> BenchRun {
        Self::start_with_profile(name, None)
    }

    /// [`start`](BenchRun::start), but with the span-stack sampler on at
    /// `default_hz` when `SKIPPER_PROF_HZ` is unset. The environment
    /// always wins: an explicit `SKIPPER_PROF_HZ=0` turns the profiler
    /// off even for a bench that defaults it on.
    pub fn start_profiled(name: &'static str, default_hz: f64) -> BenchRun {
        Self::start_with_profile(name, Some(default_hz))
    }

    fn start_with_profile(name: &'static str, default_hz: Option<f64>) -> BenchRun {
        skipper_obs::registry().clear();
        skipper_obs::add_sink(Box::new(skipper_obs::NullSink::new()));
        skipper_obs::init_from_env();
        skipper_obs::jsonl_from_env();
        let server = skipper_obs::serve_from_env();
        skipper_obs::profile::reset();
        let profiler = if std::env::var(skipper_obs::profile::HZ_ENV).is_ok() {
            skipper_obs::Profiler::from_env()
        } else {
            default_hz.map(skipper_obs::Profiler::start)
        };
        BenchRun {
            name,
            started: Instant::now(),
            server,
            profiler,
        }
    }

    /// Worker threads the session builder will default to
    /// (`SKIPPER_WORKERS`, 1 when unset/invalid).
    pub fn workers() -> usize {
        std::env::var("SKIPPER_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    }
}

impl Drop for BenchRun {
    fn drop(&mut self) {
        // Stop the sampler first so the folded export is final, then
        // write the flame-graph artifact next to the manifest.
        let profiled = self.profiler.take().is_some();
        if profiled {
            let folded = skipper_obs::profile::folded_text();
            if !folded.is_empty() {
                let dir = skipper_report::results_dir();
                let path = dir.join(format!("profile_{}.folded", self.name));
                let write =
                    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, folded));
                match write {
                    Ok(()) => println!("profile: {}", path.display()),
                    Err(err) => eprintln!(
                        "profile: failed to save profile_{}.folded: {err}",
                        self.name
                    ),
                }
            }
        }
        let manifest = RunManifest::collect(
            self.name,
            self.started.elapsed().as_secs_f64(),
            crate::quick_mode(),
            Self::workers(),
        );
        match manifest.save(&skipper_report::results_dir()) {
            Ok(path) => println!("manifest: {}", path.display()),
            Err(err) => eprintln!("manifest: failed to save BENCH_{}.json: {err}", self.name),
        }
        // Stop the endpoint before tearing the sinks down: its NullSink
        // keeps `enabled()` true until the very end of the run.
        self.server.take();
        skipper_obs::shutdown();
    }
}
