//! Per-binary observability harness: one RAII guard that standardizes how
//! every bench bin starts and ends its instrumented life.
//!
//! [`BenchRun::start`] clears the metrics registry, installs a
//! [`NullSink`](skipper_obs::NullSink) (so the registry aggregates even
//! with no other sink), honors the `SKIPPER_OBS`, `SKIPPER_OBS_ADDR` and
//! `SKIPPER_OBS_JSONL` environment knobs, and starts the wall clock. Dropping the guard —
//! including on early return — collects a
//! [`RunManifest`](skipper_report::RunManifest) from the registry, saves
//! it as `results/BENCH_<name>.json`, stops the metrics endpoint and calls
//! [`skipper_obs::shutdown`] so file-backed sinks (JSONL, Chrome traces)
//! are never left truncated.

use skipper_report::RunManifest;
use std::time::Instant;

/// RAII harness for one bench binary; see the module docs.
#[derive(Debug)]
pub struct BenchRun {
    name: &'static str,
    started: Instant,
    server: Option<skipper_obs::MetricsServer>,
}

impl BenchRun {
    /// Start the harness. Call first thing in `main` and keep the guard
    /// alive to the end:
    ///
    /// ```no_run
    /// let _run = skipper_bench::BenchRun::start("fig03_time_vs_batch");
    /// // ... benchmark ...
    /// ```
    pub fn start(name: &'static str) -> BenchRun {
        skipper_obs::registry().clear();
        skipper_obs::add_sink(Box::new(skipper_obs::NullSink::new()));
        skipper_obs::init_from_env();
        skipper_obs::jsonl_from_env();
        let server = skipper_obs::serve_from_env();
        BenchRun {
            name,
            started: Instant::now(),
            server,
        }
    }

    /// Worker threads the session builder will default to
    /// (`SKIPPER_WORKERS`, 1 when unset/invalid).
    pub fn workers() -> usize {
        std::env::var("SKIPPER_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    }
}

impl Drop for BenchRun {
    fn drop(&mut self) {
        let manifest = RunManifest::collect(
            self.name,
            self.started.elapsed().as_secs_f64(),
            crate::quick_mode(),
            Self::workers(),
        );
        match manifest.save(&skipper_report::results_dir()) {
            Ok(path) => println!("manifest: {}", path.display()),
            Err(err) => eprintln!("manifest: failed to save BENCH_{}.json: {err}", self.name),
        }
        // Stop the endpoint before tearing the sinks down: its NullSink
        // keeps `enabled()` true until the very end of the run.
        self.server.take();
        skipper_obs::shutdown();
    }
}
