//! Distributed-training smoke bench: a TCP coordinator plus N worker
//! threads on loopback, with the deterministic chaos layer armed, must
//! reproduce the in-process engine **bit for bit** — losses and final
//! weights — while surviving corrupted frames, delivery delays and a
//! scheduled worker kill.
//!
//! This is the CI gate for the cluster transport: it fails (exit 1) on
//! the first bit of drift, and its manifest
//! (`results/BENCH_dist_loopback.json`) feeds `bench_gate` so wall-time
//! regressions in the recovery path are caught too. Chaos here uses
//! corrupt + delay + kill but deliberately **not** drop: a dropped work
//! frame parks the coordinator until `work_timeout`, which is recovery
//! coverage for the test suite, not a stable thing to time.
//!
//! ```text
//! dist_loopback [--workers 4] [--iters 4] [--no-chaos]
//! ```

use skipper_core::{
    run_worker, BackoffConfig, ChaosConfig, ClusterConfig, Coordinator, Method, TcpConnector,
    TrainSession, WorkerOptions,
};
use skipper_snn::{custom_net, ModelConfig, Sgd, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::time::Duration;

const T: usize = 12;
const BATCH: usize = 8;
const METHOD: Method = Method::Skipper {
    checkpoints: 2,
    percentile: 30.0,
};

struct Args {
    workers: usize,
    iters: usize,
    chaos: bool,
    /// `--serve HOST:PORT`: bind there and wait for externally launched
    /// `skipper_worker` processes instead of spawning worker threads.
    serve: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 4,
        iters: 4,
        chaos: true,
        serve: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("--workers: usize"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters: usize"),
            "--no-chaos" => args.chaos = false,
            "--serve" => args.serve = Some(value("--serve")),
            "--help" | "-h" => {
                println!(
                    "usage: dist_loopback [--workers N] [--iters N] [--no-chaos] \
                     [--serve HOST:PORT]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    assert!(args.workers >= 1 && args.iters >= 1);
    args
}

fn model() -> ModelConfig {
    ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        seed: 11,
        ..ModelConfig::default()
    }
}

fn net() -> SpikingNetwork {
    custom_net(&model())
}

fn spike_inputs() -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(42);
    (0..T)
        .map(|_| Tensor::rand([BATCH, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

fn weights(net: &SpikingNetwork) -> Vec<Vec<f32>> {
    net.params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect()
}

fn main() {
    let _run = skipper_bench::BenchRun::start("dist_loopback");
    let args = parse_args();

    // Capture this process's event stream so the run can be stitched into
    // a Perfetto trace afterwards. `SKIPPER_OBS_JSONL` (honored by the
    // harness) wins when set; otherwise the stream goes to `results/`.
    let results = skipper_report::results_dir();
    let _ = std::fs::create_dir_all(&results);
    let obs_jsonl = results.join("obs_dist_loopback.jsonl");
    if std::env::var_os("SKIPPER_OBS_JSONL").is_none() {
        match skipper_obs::JsonlSink::create(&obs_jsonl) {
            Ok(sink) => {
                skipper_obs::add_sink(Box::new(sink));
            }
            Err(e) => eprintln!("obs: cannot create {}: {e}", obs_jsonl.display()),
        }
    }

    let inputs = spike_inputs();
    let labels: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();

    // In-process reference first: the determinism contract says the
    // transport must be invisible, so this run defines the right answer.
    let mut reference = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .workers(args.workers.max(2))
        .build()
        .expect("valid method");
    let ref_losses: Vec<u64> = (0..args.iters)
        .map(|_| reference.train_batch(&inputs, &labels).loss.to_bits())
        .collect();
    let ref_weights = weights(&reference.into_net());

    // Coordinator on an ephemeral loopback port, chaos armed on both the
    // accept side (coordinator→worker sends) and each worker's connector.
    let link_chaos = args.chaos.then(|| ChaosConfig {
        seed: 7,
        corrupt: 0.02,
        delay: 0.05,
        delay_us: 2_000,
        ..ChaosConfig::default()
    });
    let cfg = ClusterConfig {
        expected_workers: args.workers,
        min_workers: 1,
        work_timeout: Duration::from_secs(2),
        max_attempts: 50,
        chaos: link_chaos.clone(),
        // Give humans time to start workers in other terminals.
        connect_timeout: Duration::from_secs(if args.serve.is_some() { 120 } else { 10 }),
        ..ClusterConfig::new(model())
    };
    let bind = args.serve.clone().unwrap_or_else(|| "127.0.0.1:0".into());
    let coordinator = Coordinator::listen_tcp(&bind, cfg).expect("loopback bind");
    let addr = coordinator.addr();
    println!(
        "coordinator on {addr}: {} workers, {} iterations, chaos {}{}",
        args.workers,
        args.iters,
        if args.chaos { "armed" } else { "off" },
        if args.serve.is_some() {
            " — waiting for external skipper_worker processes"
        } else {
            ""
        }
    );

    let kill_iter = (args.iters / 2).max(2) as u64;
    let local_workers = if args.serve.is_some() {
        0
    } else {
        args.workers as u64
    };
    // When a kill is scheduled, the coordinator must leave a flight-recorder
    // dump for the lost worker. Clear stale dumps so the post-run check
    // proves this run produced one.
    let kill_id = (args.chaos && local_workers > 1).then_some(local_workers);
    if let Some(id) = kill_id {
        let _ = std::fs::remove_file(results.join(format!("blackbox_{id}.jsonl")));
        let _ = std::fs::remove_file(results.join(format!("blackbox_{id}_self.jsonl")));
    }
    let handles: Vec<_> = (1..=local_workers)
        .map(|id| {
            let addr = addr.clone();
            // The last worker is scheduled to die mid-run so the bench
            // times the reassignment + replay path, not just the happy one.
            let mut chaos = link_chaos.clone();
            if args.chaos && id == args.workers as u64 && args.workers > 1 {
                chaos = Some(ChaosConfig {
                    kill: Some((id, kill_iter)),
                    ..chaos.unwrap_or_default()
                });
            }
            std::thread::spawn(move || {
                let mut conn = TcpConnector::new(addr, chaos.clone());
                run_worker(
                    &mut conn,
                    &WorkerOptions {
                        id,
                        chaos,
                        backoff: BackoffConfig {
                            base: Duration::from_millis(2),
                            max: Duration::from_millis(50),
                            max_retries: 20,
                            ..BackoffConfig::default()
                        },
                        // Fast idle heartbeats so the short run still
                        // exercises metric federation.
                        heartbeat_interval: Duration::from_millis(10),
                    },
                )
            })
        })
        .collect();

    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    let mut drift = false;
    for (i, want) in ref_losses.iter().enumerate() {
        let stats = session.train_batch(&inputs, &labels);
        let got = stats.loss.to_bits();
        println!(
            "iter {:>2}  loss {:.6} (bits {:016x})  skipped {}  {}",
            i + 1,
            stats.loss,
            got,
            stats.skipped_steps,
            if got == *want { "bit-exact" } else { "DRIFT" }
        );
        drift |= got != *want;
    }
    let trained = session.into_net();
    for h in handles {
        match h.join().expect("worker thread") {
            Ok(rep) => println!(
                "worker: {} iterations, {} shards, {} reconnects{}",
                rep.iterations,
                rep.shards,
                rep.reconnects,
                if rep.killed {
                    " (killed on schedule)"
                } else {
                    ""
                }
            ),
            // A worker can legitimately end on the exhausted-reconnect
            // path when chaos corrupts the final Shutdown frame.
            Err(e) => println!("worker: exited via {e}"),
        }
    }

    for (w, (got, want)) in weights(&trained).iter().zip(&ref_weights).enumerate() {
        let same = got
            .iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        if !same {
            eprintln!("weight tensor {w} drifted from the in-process reference");
            drift = true;
        }
    }

    let snap = skipper_obs::registry().snapshot();
    for (name, value) in snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("cluster.") || n.starts_with("engine.transport_"))
    {
        println!("counter {name} = {value}");
    }
    let mut obs_fail = false;

    // Metric federation: heartbeats piggyback registry deltas, which the
    // coordinator re-publishes under `worker="<id>"` labels.
    let federated = snap
        .counters
        .iter()
        .map(|(n, _)| n)
        .chain(snap.gauges.iter().map(|(n, _)| n))
        .filter(|n| n.contains("worker="))
        .count();
    println!("federated per-worker series: {federated}");
    if kill_id.is_some() && federated == 0 {
        eprintln!("FAIL: no worker-labeled series were federated to the coordinator");
        obs_fail = true;
    }

    // Flight recorder: the coordinator must have dumped a blackbox for the
    // chaos-killed worker.
    if let Some(id) = kill_id {
        let blackbox = results.join(format!("blackbox_{id}.jsonl"));
        if blackbox.exists() {
            println!("blackbox dump: {}", blackbox.display());
        } else {
            eprintln!(
                "FAIL: killed worker {id} left no blackbox at {}",
                blackbox.display()
            );
            obs_fail = true;
        }
    }

    // Trace stitching: drain the JSONL sink and merge the run's event
    // stream(s) into one Chrome trace; worker_task spans must resolve to
    // a parent `iteration` span on the coordinator.
    if args.serve.is_none() && std::env::var_os("SKIPPER_OBS_JSONL").is_none() {
        skipper_obs::flush();
        match skipper_report::stitch::stitch_files(std::slice::from_ref(&obs_jsonl)) {
            Ok(stitched) => {
                let out = results.join("cluster_trace.json");
                if let Err(e) = std::fs::write(&out, &stitched.chrome_json) {
                    eprintln!("FAIL: cannot write {}: {e}", out.display());
                    obs_fail = true;
                } else {
                    let s = stitched.stats;
                    println!(
                        "stitched trace: {} ({} spans, {}/{} worker_task under iteration)",
                        out.display(),
                        s.spans,
                        s.nested_under_iteration,
                        s.worker_tasks
                    );
                    if s.worker_tasks == 0 || s.nested_under_iteration < s.worker_tasks {
                        eprintln!(
                            "FAIL: worker_task spans not nested under iteration spans \
                             ({}/{})",
                            s.nested_under_iteration, s.worker_tasks
                        );
                        obs_fail = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL: trace stitch: {e}");
                obs_fail = true;
            }
        }
    }

    if drift {
        eprintln!("FAIL: distributed run drifted from the in-process engine");
        std::process::exit(1);
    }
    if obs_fail {
        eprintln!("FAIL: cluster observability checks failed (run was bit-exact)");
        std::process::exit(1);
    }
    println!("OK: distributed run is bit-identical to the in-process engine");
}
