//! Standalone cluster worker: dials a Skipper coordinator over TCP and
//! computes whatever shards it is assigned until the coordinator shuts
//! the cluster down.
//!
//! ```text
//! # terminal 1 — any trainer built with .cluster(Coordinator::listen_tcp(..))
//! dist_loopback --serve 127.0.0.1:7177
//!
//! # terminals 2..n — one worker each
//! SKIPPER_CLUSTER_ADDR=127.0.0.1:7177 skipper_worker --id 1
//! ```
//!
//! The worker needs no model file and no data: the coordinator's Welcome
//! frame carries the full `WireSpec` (model config, method, horizon), and
//! every work frame carries the input shards. Faults are survivable by
//! construction — a torn connection is retried with bounded exponential
//! backoff, and the coordinator replays any attempt the death of this
//! worker invalidated.
//!
//! Knobs: `--addr HOST:PORT` (overrides `SKIPPER_CLUSTER_ADDR`),
//! `--id N` (stable worker id; 0 lets the coordinator assign one),
//! `SKIPPER_CHAOS` (deterministic fault injection on this worker's link,
//! e.g. `seed=7,corrupt=0.05,kill=1@3`).

use skipper_core::{cluster_addr_from_env, run_worker, ChaosConfig, TcpConnector, WorkerOptions};

struct Args {
    addr: Option<String>,
    id: u64,
}

fn parse_args() -> Args {
    let mut args = Args { addr: None, id: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--id" => args.id = value("--id").parse().expect("--id: u64"),
            "--help" | "-h" => {
                println!("usage: skipper_worker [--addr HOST:PORT] [--id N]");
                println!("       SKIPPER_CLUSTER_ADDR supplies --addr when the flag is absent");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    // `std::process::exit` skips destructors, so all exit codes funnel
    // through `real_main`'s return value: the `BenchRun` guard (which
    // flushes obs sinks — JSONL streams, the flight-recorder's instants —
    // and saves the manifest) drops on every path, including
    // disconnect/kill failures.
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let _run = skipper_bench::BenchRun::start("skipper_worker");
    let args = parse_args();
    let Some(addr) = args.addr.or_else(cluster_addr_from_env) else {
        eprintln!("no coordinator address: pass --addr or set SKIPPER_CLUSTER_ADDR");
        return 2;
    };
    let chaos = match ChaosConfig::from_env() {
        Ok(chaos) => chaos,
        Err(e) => {
            eprintln!("bad SKIPPER_CHAOS: {e}");
            return 2;
        }
    };
    if let Some(cfg) = &chaos {
        println!("chaos armed on this link: {cfg:?}");
    }

    println!("dialing coordinator at {addr} (worker id {})", args.id);
    let mut connector = TcpConnector::new(addr, chaos.clone());
    let opts = WorkerOptions {
        id: args.id,
        chaos,
        ..WorkerOptions::default()
    };
    match run_worker(&mut connector, &opts) {
        Ok(report) => {
            println!(
                "worker done: {} iterations, {} shards, {} reconnects{}",
                report.iterations,
                report.shards,
                report.reconnects,
                if report.killed {
                    " (killed by chaos schedule)"
                } else {
                    ""
                }
            );
            0
        }
        Err(e) => {
            eprintln!("worker failed: {e}");
            1
        }
    }
}
