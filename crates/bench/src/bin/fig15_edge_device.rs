//! Paper Fig. 15: VGG5+CIFAR10 training on an NVIDIA Jetson Nano —
//! memory consumption and per-epoch latency vs batch size for baseline,
//! checkpointing (C=4) and Skipper (C=4, p=70).
//!
//! The Nano's 4 GiB unified memory loses ~2 GiB to the CUDA context (the
//! paper adds 4 GiB of swap); the device model reproduces that budget and
//! the roofline gives Nano-scale latencies.
//!
//! Expected shape: baseline fits only the smallest batches; checkpointing
//! ~4x that; Skipper doubles it again and halves the epoch latency at the
//! same footprint.

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{AnalyticModel, Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::{vgg5, Adam, ModelConfig};

fn main() {
    let _run = skipper_bench::BenchRun::start("fig15_edge_device");
    let mut report = Report::new("fig15_edge_device");
    let nano = DeviceModel::jetson_nano();
    let probe = Workload::build_for_measurement(WorkloadKind::Vgg5Cifar10);
    let t = probe.timesteps;
    let methods = [
        Method::Bptt,
        Method::Checkpointed {
            checkpoints: probe.checkpoints,
        },
        Method::Skipper {
            checkpoints: probe.checkpoints,
            percentile: probe.percentile,
        },
    ];

    // -------- measured at laptop scale, Nano latency model --------
    report.line(format!(
        "== VGG5 (scaled) on {nano} — measured iterations, Nano roofline =="
    ));
    report.line(format!(
        "{:>6} {:<16} {:>14} {:>16}",
        "B", "method", "overall mem", "epoch latency"
    ));
    let batches: Vec<usize> = if quick_mode() {
        vec![4]
    } else {
        vec![2, 4, 8, 16]
    };
    let epoch_samples = 256usize;
    let mut measured = Vec::new();
    for &b in &batches {
        for m in &methods {
            let w = Workload::build_for_measurement(WorkloadKind::Vgg5Cifar10);
            let mut s = TrainSession::builder(w.net, m.clone(), t)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            let meas = measure(
                &mut s,
                &w.train,
                &MeasureConfig {
                    iterations: 2,
                    warmup: 1,
                    batch: b,
                    timesteps: t,
                },
                &nano,
            );
            let fits = nano.fits(meas.alloc.reserved);
            let iters = epoch_samples.div_ceil(b) as f64;
            report.line(format!(
                "{b:>6} {:<16} {:>14} {:>14.1} s{}",
                m.label(),
                human_bytes(meas.overall_bytes),
                meas.modeled_s * iters,
                if fits { "" } else { "  (OOM at device scale)" }
            ));
            measured.push(serde_json::json!({
                "batch": b,
                "method": m.label(),
                "overall_bytes": meas.overall_bytes,
                "epoch_s": meas.modeled_s * iters,
            }));
        }
    }
    report.json("measured", measured);

    // -------- analytic at paper scale --------
    report.blank();
    report.line("== VGG5 at paper scale (width 1.0, 32x32, T=100) — analytic ==");
    let net = vgg5(&ModelConfig {
        input_hw: 32,
        width_mult: 1.0,
        ..ModelConfig::default()
    });
    let model = AnalyticModel::new(&net);
    let paper_methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 4 },
        Method::Skipper {
            checkpoints: 4,
            percentile: 70.0,
        },
    ];
    report.line(format!("{:<16} {:>8}", "method", "B_max"));
    let mut series = Vec::new();
    for m in &paper_methods {
        let mut best = 0usize;
        for b in 1..=512 {
            if nano.fits(model.breakdown(m, 100, b).total()) {
                best = b;
            }
        }
        report.line(format!("{:<16} {best:>8}", m.label()));
        series.push(serde_json::json!({"method": m.label(), "b_max": best}));
    }
    report.json("paper_scale_bmax", series);
    report.blank();
    report.line("Expected shape (paper Fig. 15): baseline stalls around B=8,");
    report.line("checkpointing reaches ~B=32, skipper ~B=64, halving latency.");
    report.save();
}
