//! Kill-and-resume demo: fault-tolerant training with durable snapshots,
//! divergence sentinels and the memory-budget governor.
//!
//! The batch fed at iteration `i` is derived deterministically from `i`,
//! so a run that is killed and resumed from its snapshot replays the
//! exact batches the uninterrupted run would have seen — and, because
//! snapshots restore the complete optimizer state and the iteration
//! counter that seeds every iteration's randomness, the loss trajectory
//! after the resume is **bit-exact** against the uninterrupted run.
//!
//! ```text
//! # uninterrupted reference
//! fault_tolerant_training --batches 10
//!
//! # crash after 5 batches, then pick the run back up
//! fault_tolerant_training --batches 10 --kill-after 5
//! fault_tolerant_training --batches 10 --resume
//! ```
//!
//! The per-iteration `loss bits` lines of the reference and of the
//! resumed run agree exactly from iteration 6 on.
//!
//! Other knobs: `--poison N` forces the loss to NaN at iteration `N`
//! (watch the sentinels roll back, back the learning rate off and
//! retry); `--mem-budget BYTES` arms the governor (watch it step the
//! method toward the paper's `C = √T` optimum under pressure).

use skipper_bench::{Workload, WorkloadKind};
use skipper_core::{Method, SentinelConfig, TrainSession};
use skipper_snn::Adam;
use skipper_tensor::XorShiftRng;

struct Args {
    batches: u64,
    snapshot: String,
    resume: bool,
    mem_budget: Option<u64>,
    kill_after: Option<u64>,
    poison: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        batches: 10,
        snapshot: "fault_demo.sksn".into(),
        resume: false,
        mem_budget: None,
        kill_after: None,
        poison: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--batches" => args.batches = value("--batches").parse().expect("--batches: u64"),
            "--snapshot" => args.snapshot = value("--snapshot"),
            "--resume" => args.resume = true,
            "--mem-budget" => {
                args.mem_budget = Some(value("--mem-budget").parse().expect("--mem-budget: bytes"))
            }
            "--kill-after" => {
                args.kill_after = Some(value("--kill-after").parse().expect("--kill-after: u64"))
            }
            "--poison" => args.poison = Some(value("--poison").parse().expect("--poison: u64")),
            "--help" | "-h" => {
                println!(
                    "usage: fault_tolerant_training [--batches N] [--snapshot PATH] [--resume] \
                     [--mem-budget BYTES] [--kill-after N] [--poison ITER]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    // Installs the env-driven sinks, serves SKIPPER_OBS_ADDR and flushes
    // everything on exit (this bin can also exit via process::exit in the
    // crash injection path — the manifest then covers the surviving run).
    let _run = skipper_bench::BenchRun::start("fault_tolerant_training");
    let args = parse_args();
    let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
    let timesteps = w.timesteps;
    let method = Method::Skipper {
        checkpoints: w.checkpoints,
        percentile: w.percentile,
    };
    let mut session = TrainSession::builder(w.net, method, timesteps)
        .optimizer(Box::new(Adam::new(1e-3)))
        .build()
        .expect("valid method");
    session.enable_sentinels(SentinelConfig::default());
    session.set_memory_budget(args.mem_budget);
    if let Some(iter) = args.poison {
        session.inject_loss_poison(iter);
    }

    if args.resume {
        session
            .resume_from(&args.snapshot)
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", args.snapshot));
        println!(
            "resumed from {} at iteration {}",
            args.snapshot,
            session.iteration()
        );
    } else {
        println!("fresh session ({}, T={timesteps})", session.method());
    }

    let mut completed = 0u64;
    while session.iteration() < args.batches {
        // The upcoming iteration index alone decides the batch content, so
        // interrupted and uninterrupted runs see identical data.
        let seed = session.iteration() + 1;
        let (inputs, labels) = w
            .train
            .first_batch(w.batch, timesteps, &mut XorShiftRng::new(seed));
        let stats = match session.try_train_batch(&inputs, &labels) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("training stopped: {e}");
                eprintln!("last good state is in {}", args.snapshot);
                std::process::exit(2);
            }
        };
        println!(
            "iter {:>3}  loss {:.6} (bits {:016x})  acc {:.2}  peak {:>6} KiB  lr {:.2e}{}",
            session.iteration(),
            stats.loss,
            stats.loss.to_bits(),
            stats.accuracy(),
            stats.peak_bytes() / 1024,
            session.learning_rate(),
            if stats.recoveries > 0 {
                format!("  [recovered x{}]", stats.recoveries)
            } else {
                String::new()
            }
        );
        for action in session
            .governor_log()
            .iter()
            .filter(|a| a.iteration == session.iteration())
        {
            println!("       governor: {action}");
        }
        session
            .save_snapshot(&args.snapshot)
            .unwrap_or_else(|e| panic!("cannot snapshot to {}: {e}", args.snapshot));
        completed += 1;
        if args.kill_after == Some(completed) {
            println!("simulating a crash after {completed} batches (snapshot is durable)");
            std::process::exit(17);
        }
    }
    println!(
        "done: {} iterations, snapshot at {}",
        session.iteration(),
        args.snapshot
    );
}
