//! Paper Fig. 3(c,d): breakdown of GPU tensor memory by category vs
//! timesteps, for VGG5 and ResNet20 at fixed batch size, baseline BPTT.
//!
//! Expected shape: the activation share grows with T and dominates
//! (60–95 % in the paper).

use skipper_bench::{measure, MeasureConfig, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_memprof::{Category, DeviceModel};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig03_breakdown_vs_t");
    let mut report = Report::new("fig03_breakdown_vs_t");
    let device = DeviceModel::a100_80gb();
    let cats = [
        Category::Activations,
        Category::Input,
        Category::Weights,
        Category::WeightGrads,
        Category::OptimizerState,
    ];
    for kind in [WorkloadKind::Vgg5Cifar10, WorkloadKind::Resnet20Cifar10] {
        let probe = Workload::build_for_measurement(kind);
        report.line(format!(
            "== {} — tensor memory breakdown vs T (B={}) ==",
            probe.name, probe.batch
        ));
        let mut header = format!("{:>6}", "T");
        for c in cats {
            header += &format!(" {:>14}", c.label());
        }
        report.line(header);
        let sweep = [
            probe.timesteps / 4,
            probe.timesteps / 2,
            probe.timesteps * 3 / 4,
            probe.timesteps,
        ];
        let mut series = Vec::new();
        for &t in &sweep {
            let w = Workload::build_for_measurement(kind);
            let mut session = TrainSession::builder(w.net, Method::Bptt, t)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            let m = measure(
                &mut session,
                &w.train,
                &MeasureConfig {
                    iterations: 2,
                    warmup: 1,
                    batch: w.batch,
                    timesteps: t,
                },
                &device,
            );
            let total: u64 = cats.iter().map(|&c| m.peak(c)).sum();
            let mut row = format!("{t:>6}");
            let mut frac = serde_json::Map::new();
            for c in cats {
                let pct = 100.0 * m.peak(c) as f64 / total.max(1) as f64;
                row += &format!(" {pct:>13.1}%");
                frac.insert(c.label().to_owned(), serde_json::json!(pct));
            }
            report.line(row);
            series.push(serde_json::json!({"t": t, "percent": frac, "total_bytes": total}));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 3c,d): activations dominate and their");
    report.line("share grows with T (paper: 60%-95%).");
    report.save();
}
