//! Ablation: what should Skipper monitor, and does the activity heuristic
//! beat random skipping?
//!
//! The paper (Section VI-A) motivates the spike-sum SAM and names two
//! refinements as future work — spike counts normalised by layer size and
//! the ℓ2-norm of the membrane trace; Section VII-B stresses that skipped
//! timesteps "are not chosen randomly, but are based on a well-defined
//! heuristic". This bench trains the same workload with:
//!
//! * SAM = spike-sum / neuron-normalised / membrane-ℓ2 (SST policy), and
//! * the random policy (pure temporal dropout) at the same `p`,
//!
//! and reports accuracy, so the value of activity-guided skipping is
//! measurable.

use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, SamMetric, SkipPolicy, TrainSession};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("ablation_sam_policy");
    let mut report = Report::new("ablation_sam_policy");
    let epochs = if quick_mode() { 2 } else { 6 };
    let kind = WorkloadKind::LenetDvsGesture;
    let probe = Workload::build(kind);
    let p = probe.percentile;
    let c = probe.checkpoints;
    report.line(format!(
        "Skipper ablation on {} (T={}, C={c}, p={p:.0}, {epochs} epochs)",
        probe.name, probe.timesteps
    ));
    report.line(format!(
        "{:<26} {:>10} {:>10} {:>10}",
        "configuration", "train", "val", "skipped"
    ));
    let configs: Vec<(String, SamMetric, SkipPolicy)> = vec![
        (
            "SST spike-sum (paper)".into(),
            SamMetric::SpikeSum,
            SkipPolicy::SpikeActivity,
        ),
        (
            "SST neuron-normalized".into(),
            SamMetric::NeuronNormalized,
            SkipPolicy::SpikeActivity,
        ),
        (
            "SST membrane-l2".into(),
            SamMetric::MembraneL2,
            SkipPolicy::SpikeActivity,
        ),
        (
            "random skipping".into(),
            SamMetric::SpikeSum,
            SkipPolicy::Random,
        ),
    ];
    let mut rows = Vec::new();
    for (name, metric, policy) in configs {
        let w = Workload::build(kind);
        let mut session = TrainSession::builder(
            w.net,
            Method::Skipper {
                checkpoints: c,
                percentile: p,
            },
            w.timesteps,
        )
        .optimizer(Box::new(Adam::new(2e-3)))
        .build()
        .expect("valid method");
        session.set_sam_metric(metric);
        session.set_skip_policy(policy);
        let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 77);
        report.line(format!(
            "{:<26} {:>9.1}% {:>9.1}% {:>10}",
            name,
            100.0 * r.train_acc.last().copied().unwrap_or(0.0),
            100.0 * r.final_val_acc(),
            r.skipped,
        ));
        rows.push(serde_json::json!({
            "config": name,
            "train_acc": r.train_acc,
            "val_acc": r.val_acc,
            "skipped": r.skipped,
        }));
    }
    // Reference: baseline BPTT, no skipping.
    let w = Workload::build(kind);
    let mut session = TrainSession::builder(w.net, Method::Bptt, w.timesteps)
        .optimizer(Box::new(Adam::new(2e-3)))
        .build()
        .expect("valid method");
    let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 77);
    report.line(format!(
        "{:<26} {:>9.1}% {:>9.1}% {:>10}",
        "baseline (no skipping)",
        100.0 * r.train_acc.last().copied().unwrap_or(0.0),
        100.0 * r.final_val_acc(),
        0,
    ));
    rows.push(serde_json::json!({
        "config": "baseline",
        "train_acc": r.train_acc,
        "val_acc": r.val_acc,
        "skipped": 0,
    }));
    report.json("rows", rows);
    report.blank();
    report.line("Expected shape: all SST variants track baseline accuracy; the");
    report.line("random policy is the weakest guide at equal p (the paper's");
    report.line("argument for activity-guided rather than random skipping).");
    report.save();
}
