//! Paper Fig. 14: peak GPU memory (log scale) vs timesteps for VGG11 and
//! ResNet20 under baseline / checkpointing / Skipper, including the
//! extrapolated out-of-memory bars.
//!
//! Small horizons are *measured*; large horizons use the analytic model
//! (validated against the tracker in the integration tests) — exactly the
//! paper's own methodology for its patterned bars.
//!
//! Expected shape: baseline linear in T and first to hit the 80 GiB wall;
//! checkpointing scales to ~4.5x the baseline's maximum T; Skipper to
//! ~9x.

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::max_skippable_percentile;
use skipper_core::{AnalyticModel, Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::{resnet20, vgg11, ModelConfig, SpikingNetwork};

fn paper_scale_net(kind: WorkloadKind) -> SpikingNetwork {
    // Full-width networks at CIFAR resolution for the analytic projection.
    match kind {
        WorkloadKind::Vgg11Cifar100 => vgg11(&ModelConfig {
            input_hw: 32,
            num_classes: 100,
            width_mult: 1.0,
            ..ModelConfig::default()
        }),
        _ => resnet20(&ModelConfig {
            input_hw: 32,
            num_classes: 10,
            width_mult: 1.0,
            ..ModelConfig::default()
        }),
    }
}

fn main() {
    let _run = skipper_bench::BenchRun::start("fig14_memory_vs_timesteps");
    let mut report = Report::new("fig14_memory_vs_timesteps");
    let device = DeviceModel::a100_80gb();
    for (kind, c, p, paper_ts) in [
        (
            WorkloadKind::Vgg11Cifar100,
            5usize,
            50.0f32,
            vec![100usize, 200, 300, 500, 900, 1000, 1500, 1800],
        ),
        (
            WorkloadKind::Resnet20Cifar10,
            5,
            52.0,
            vec![200, 300, 500, 900, 1000, 2500, 2800],
        ),
    ] {
        let probe = Workload::build_for_measurement(kind);
        // -------- measured, scaled --------
        report.line(format!(
            "== {} — MEASURED at laptop scale (B={}) ==",
            probe.name, probe.batch
        ));
        report.line(format!(
            "{:>6} {:>14} {:>14} {:>14}",
            "T",
            "baseline",
            probe.methods()[1].label(),
            probe.methods()[2].label()
        ));
        let t_sweep: Vec<usize> = if quick_mode() {
            vec![probe.timesteps / 2]
        } else {
            vec![probe.timesteps / 2, probe.timesteps]
        };
        let mut measured = Vec::new();
        for &t in &t_sweep {
            let mut row = format!("{t:>6}");
            let mut entry = serde_json::Map::new();
            entry.insert("t".into(), serde_json::json!(t));
            let layers = probe.net.spiking_layer_count();
            let cc = probe.checkpoints.min(t / layers.max(1)).max(1);
            let pp = probe
                .percentile
                .min((max_skippable_percentile(t, cc, layers) - 1.0).max(0.0));
            for m in [
                Method::Bptt,
                Method::Checkpointed { checkpoints: cc },
                Method::Skipper {
                    checkpoints: cc,
                    percentile: pp,
                },
            ] {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, m.clone(), t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                let meas = measure(
                    &mut s,
                    &w.train,
                    &MeasureConfig {
                        iterations: 2,
                        warmup: 1,
                        batch: probe.batch,
                        timesteps: t,
                    },
                    &device,
                );
                row += &format!(" {:>14}", human_bytes(meas.tensor_peak));
                entry.insert(m.label(), serde_json::json!(meas.tensor_peak));
            }
            report.line(row);
            measured.push(serde_json::Value::Object(entry));
        }
        report.json(format!("{}_measured", probe.name), measured);

        // -------- analytic, paper scale --------
        let net = paper_scale_net(kind);
        let model = AnalyticModel::new(&net);
        let batch = 128usize;
        report.blank();
        report.line(format!(
            "== {} — ANALYTIC at paper scale (width 1.0, 32x32, B={batch}) ==",
            probe.name
        ));
        report.line(format!(
            "{:>6} {:>14} {:>14} {:>14}",
            "T",
            "baseline",
            format!("C={c}"),
            format!("C={c} & p={p:.0}")
        ));
        let mut analytic = Vec::new();
        for &t in &paper_ts {
            let mut row = format!("{t:>6}");
            let mut entry = serde_json::Map::new();
            entry.insert("t".into(), serde_json::json!(t));
            for m in [
                Method::Bptt,
                Method::Checkpointed { checkpoints: c },
                Method::Skipper {
                    checkpoints: c,
                    percentile: p,
                },
            ] {
                let bytes = model.breakdown(&m, t, batch).total();
                let marker = if device.fits(bytes) { ' ' } else { '*' };
                row += &format!(" {:>13}{marker}", human_bytes(bytes));
                entry.insert(m.label(), serde_json::json!(bytes));
            }
            report.line(row);
            analytic.push(serde_json::Value::Object(entry));
        }
        report.json(format!("{}_analytic", probe.name), analytic);
        // Maximum horizon ratios.
        let t_max = |m: &Method| {
            let mut best = 0usize;
            let mut t = 50;
            while t <= 50_000 {
                if device.fits(model.breakdown(m, t, batch).total()) {
                    best = t;
                } else {
                    break;
                }
                t += 50;
            }
            best
        };
        let tb = t_max(&Method::Bptt);
        let tc = t_max(&Method::Checkpointed { checkpoints: c });
        let ts = t_max(&Method::Skipper {
            checkpoints: c,
            percentile: p,
        });
        report.line(format!(
            "  T_max: baseline {tb}, checkpointed {tc} ({:.1}x), skipper {ts} ({:.1}x)",
            tc as f64 / tb.max(1) as f64,
            ts as f64 / tb.max(1) as f64
        ));
        report.line("  (* = exceeds the 80 GiB A100: the paper's patterned bars)");
        report.blank();
    }
    report.line("Expected shape (paper Fig. 14): baseline grows linearly and OOMs");
    report.line("first; checkpointing reaches ~3-4.5x its T_max; skipper ~9x.");
    report.save();
}

use skipper_snn::Adam;
