//! Paper Fig. 16: AlexNet+CIFAR10 at T=50 — (a) memory / time / accuracy
//! of TBPTT-LBP as a function of its truncation window, against (b) the
//! proposed baseline / checkpointing / Skipper configurations.
//!
//! Expected shape: growing the LBP window raises memory and time without
//! improving accuracy, while the checkpointing/Skipper family improves
//! accuracy with the longer horizon at similar or lower memory.

use skipper_bench::{
    fit, human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig16_tbptt_lbp_sweep");
    let mut report = Report::new("fig16_tbptt_lbp_sweep");
    let device = DeviceModel::a100_80gb();
    let epochs = if quick_mode() { 1 } else { 3 };
    let probe = Workload::build(WorkloadKind::AlexnetCifar10);
    let t = 50usize; // the paper's Fig. 16 horizon
    let taps = vec![2usize, 5];

    let run = |report: &mut Report, m: &Method, label_extra: &str| {
        let w = Workload::build(WorkloadKind::AlexnetCifar10);
        m.validate(&w.net, t).expect("valid config");
        let mut session = TrainSession::builder(w.net, m.clone(), t)
            .optimizer(Box::new(Adam::new(2e-3)))
            .build()
            .expect("valid method");
        let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 16);
        let meas = measure(
            &mut session,
            &w.train,
            &MeasureConfig {
                iterations: 2,
                warmup: 0,
                batch: probe.batch,
                timesteps: t,
            },
            &device,
        );
        report.line(format!(
            "{:<22} {:>14} {:>14.1} ms {:>9.1}%",
            format!("{}{label_extra}", m.label()),
            human_bytes(meas.overall_bytes),
            meas.modeled_s * 1e3,
            100.0 * r.final_val_acc(),
        ));
        serde_json::json!({
            "config": m.label(),
            "overall_bytes": meas.overall_bytes,
            "modeled_s": meas.modeled_s,
            "accuracy": r.final_val_acc(),
        })
    };

    report.line(format!(
        "AlexNet+CIFAR10 (scaled), T={t}, B={}, {epochs} epochs per point",
        probe.batch
    ));
    report.blank();
    report.line("(a) TBPTT-LBP vs truncation window:");
    report.line(format!(
        "{:<22} {:>14} {:>17} {:>10}",
        "config", "memory", "iter (modeled)", "accuracy"
    ));
    let windows: Vec<usize> = if quick_mode() {
        vec![10]
    } else {
        vec![10, 25, 50]
    };
    let mut lbp_rows = Vec::new();
    for w in windows {
        let m = Method::TbpttLbp {
            window: w,
            taps: taps.clone(),
        };
        lbp_rows.push(run(&mut report, &m, ""));
    }
    report.json("lbp_sweep", lbp_rows);

    report.blank();
    report.line("(b) proposed training schemes:");
    report.line(format!(
        "{:<22} {:>14} {:>17} {:>10}",
        "config", "memory", "iter (modeled)", "accuracy"
    ));
    let ours = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 4 },
        Method::Skipper {
            checkpoints: 4,
            percentile: 25.0,
        },
        Method::Skipper {
            checkpoints: 4,
            percentile: 40.0,
        },
    ];
    let mut our_rows = Vec::new();
    for m in &ours {
        our_rows.push(run(&mut report, m, ""));
    }
    report.json("proposed", our_rows);
    report.blank();
    report.line("Expected shape (paper Fig. 16): larger LBP windows cost memory/");
    report.line("time with flat accuracy; the proposed schemes hold accuracy at");
    report.line("T=50 with up to 40% of timesteps skipped, at lower memory.");
    report.save();
}
