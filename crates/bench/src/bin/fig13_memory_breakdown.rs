//! Paper Fig. 13: breakdown of overall GPU memory into live tensors,
//! allocator cache and CUDA context, for baseline / checkpointing /
//! Skipper across batch sizes.
//!
//! Expected shape: the context is a fixed cost that dominates small
//! configurations (up to 50–80 % for the smallest time-skipped runs), so
//! tensor-only savings are larger than the overall numbers suggest.

use skipper_bench::{measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig13_memory_breakdown");
    let mut report = Report::new("fig13_memory_breakdown");
    let device = DeviceModel::a100_80gb();
    let kinds: &[WorkloadKind] = if quick_mode() {
        &[WorkloadKind::Vgg5Cifar10]
    } else {
        &WorkloadKind::SWEEPS
    };
    for &kind in kinds {
        let probe = Workload::build_for_measurement(kind);
        let t = probe.timesteps;
        let methods = [
            Method::Bptt,
            Method::Checkpointed {
                checkpoints: probe.checkpoints,
            },
            Method::Skipper {
                checkpoints: probe.checkpoints,
                percentile: probe.percentile,
            },
        ];
        let batches: Vec<usize> = if quick_mode() {
            vec![4]
        } else {
            vec![2, 8, 16]
        };
        report.line(format!(
            "== {} — tensors / cache / context shares (T={t}) ==",
            probe.name
        ));
        report.line(format!(
            "{:>6} {:<16} {:>10} {:>10} {:>10}",
            "B", "method", "tensors", "cached", "context"
        ));
        let mut series = Vec::new();
        for &b in &batches {
            for m in &methods {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, m.clone(), t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                let meas = measure(
                    &mut s,
                    &w.train,
                    &MeasureConfig {
                        iterations: 2,
                        warmup: 1,
                        batch: b,
                        timesteps: t,
                    },
                    &device,
                );
                let tensors = meas.alloc.peak_allocated;
                let cached = meas.alloc.cache_overhead();
                let context = device.context_bytes;
                let total = (tensors + cached + context) as f64;
                report.line(format!(
                    "{b:>6} {:<16} {:>9.1}% {:>9.1}% {:>9.1}%",
                    m.label(),
                    100.0 * tensors as f64 / total,
                    100.0 * cached as f64 / total,
                    100.0 * context as f64 / total,
                ));
                series.push(serde_json::json!({
                    "batch": b,
                    "method": m.label(),
                    "tensor_bytes": tensors,
                    "cached_bytes": cached,
                    "context_bytes": context,
                }));
            }
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 13): the fixed context share is largest");
    report.line("for the smallest (skipper) configurations, so tensor-only savings");
    report.line("exceed the overall-memory savings of Fig. 12.");
    report.save();
}
