//! Paper Fig. 12: overall GPU memory consumption vs batch size for
//! baseline BPTT, checkpointing, Skipper and TBPTT, on the four sweep
//! workloads.
//!
//! Expected shape: baseline highest and growing fastest with B;
//! checkpointing 2–4x lower; Skipper another 1.2–1.7x below that; TBPTT
//! comparable to checkpointing.

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::TrainSession;
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig12_memory_vs_batch");
    let mut report = Report::new("fig12_memory_vs_batch");
    let device = DeviceModel::a100_80gb();
    let kinds: &[WorkloadKind] = if quick_mode() {
        &[WorkloadKind::Vgg5Cifar10]
    } else {
        &WorkloadKind::SWEEPS
    };
    for &kind in kinds {
        let probe = Workload::build_for_measurement(kind);
        let t = probe.timesteps;
        let methods = probe.methods();
        let batches: Vec<usize> = if quick_mode() {
            vec![4]
        } else {
            vec![2, 4, 8, 16]
        };
        report.line(format!(
            "== {} — peak tensor memory vs batch size (T={t}) ==",
            probe.name
        ));
        report.line("   (overall = tensor + cache + 600 MiB context; see JSON)");
        let mut header = format!("{:>6}", "B");
        for m in &methods {
            header += &format!(" {:>16}", m.label());
        }
        report.line(header);
        let mut series = Vec::new();
        for &b in &batches {
            let mut row = format!("{b:>6}");
            let mut entry = serde_json::Map::new();
            entry.insert("batch".into(), serde_json::json!(b));
            for m in &methods {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, m.clone(), t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                let meas = measure(
                    &mut s,
                    &w.train,
                    &MeasureConfig {
                        iterations: 2,
                        warmup: 1,
                        batch: b,
                        timesteps: t,
                    },
                    &device,
                );
                row += &format!(" {:>16}", human_bytes(meas.tensor_peak));
                entry.insert(
                    m.label(),
                    serde_json::json!({
                        "tensor_peak": meas.tensor_peak,
                        "overall_bytes": meas.overall_bytes,
                    }),
                );
            }
            report.line(row);
            series.push(serde_json::Value::Object(entry));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 12): baseline >> checkpointed ≈ TBPTT");
    report.line("> skipper, with the gap widening as B grows (paper: 1.7x-3.7x");
    report.line("for checkpointing, a further 1.2x-1.7x for skipper).");
    report.save();
}
