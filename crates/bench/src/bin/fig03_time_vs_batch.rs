//! Paper Fig. 3(e,f): time per training epoch and GPU memory vs batch
//! size, for VGG5 and ResNet20 under baseline BPTT.
//!
//! Expected shape: per-epoch modeled device time falls steeply with batch
//! size (launch-overhead amortisation — the paper reports ~5x from B=32 to
//! B=512) while memory grows linearly in B.

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let mut report = Report::new("fig03_time_vs_batch");
    let device = DeviceModel::a100_80gb();
    let epoch_samples = 512usize; // fixed sample budget per epoch
    for kind in [WorkloadKind::Vgg5Cifar10, WorkloadKind::Resnet20Cifar10] {
        let probe = Workload::build_for_measurement(kind);
        let batches: Vec<usize> = if quick_mode() {
            vec![2, 8]
        } else {
            vec![2, 4, 8, 16, 32]
        };
        report.line(format!(
            "== {} — epoch time & memory vs batch size (T={}) ==",
            probe.name, probe.timesteps
        ));
        report.line(format!(
            "{:>6} {:>16} {:>16} {:>14}",
            "B", "epoch (modeled)", "epoch (wall)", "tensor peak"
        ));
        let mut series = Vec::new();
        for &b in &batches {
            let w = Workload::build_for_measurement(kind);
            let mut session =
                TrainSession::new(w.net, Box::new(Adam::new(1e-3)), Method::Bptt, w.timesteps);
            let m = measure(
                &mut session,
                &w.train,
                &MeasureConfig {
                    iterations: 2,
                    warmup: 1,
                    batch: b,
                    timesteps: w.timesteps,
                },
                &device,
            );
            let iters = epoch_samples.div_ceil(b) as f64;
            report.line(format!(
                "{b:>6} {:>14.2} s {:>14.2} s {:>14}",
                m.modeled_s * iters,
                m.wall_s * iters,
                human_bytes(m.tensor_peak)
            ));
            series.push(serde_json::json!({
                "batch": b,
                "epoch_modeled_s": m.modeled_s * iters,
                "epoch_wall_s": m.wall_s * iters,
                "tensor_peak": m.tensor_peak,
            }));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 3e,f): modeled epoch time drops");
    report.line("several-fold as B grows; memory scales linearly with B.");
    report.save();
}
