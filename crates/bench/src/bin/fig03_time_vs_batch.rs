//! Paper Fig. 3(e,f): time per training epoch and GPU memory vs batch
//! size, for VGG5 and ResNet20 under baseline BPTT.
//!
//! Expected shape: per-epoch modeled device time falls steeply with batch
//! size (launch-overhead amortisation — the paper reports ~5x from B=32 to
//! B=512) while memory grows linearly in B.
//!
//! A second section sweeps `SessionBuilder::workers` at a fixed large
//! batch: the sharded engine splits the batch across a persistent worker
//! pool, so on a multi-core host wall time should fall with the worker
//! count while the loss stays bit-identical to the single-worker
//! reference (the reduction order is canonical; see
//! `skipper_core::engine`).

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig03_time_vs_batch");
    let mut report = Report::new("fig03_time_vs_batch");
    let device = DeviceModel::a100_80gb();
    let epoch_samples = 512usize; // fixed sample budget per epoch
    for kind in [WorkloadKind::Vgg5Cifar10, WorkloadKind::Resnet20Cifar10] {
        let probe = Workload::build_for_measurement(kind);
        let batches: Vec<usize> = if quick_mode() {
            vec![2, 8]
        } else {
            vec![2, 4, 8, 16, 32]
        };
        report.line(format!(
            "== {} — epoch time & memory vs batch size (T={}) ==",
            probe.name, probe.timesteps
        ));
        report.line(format!(
            "{:>6} {:>16} {:>16} {:>14}",
            "B", "epoch (modeled)", "epoch (wall)", "tensor peak"
        ));
        let mut series = Vec::new();
        for &b in &batches {
            let w = Workload::build_for_measurement(kind);
            let mut session = TrainSession::builder(w.net, Method::Bptt, w.timesteps)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            let m = measure(
                &mut session,
                &w.train,
                &MeasureConfig {
                    iterations: 2,
                    warmup: 1,
                    batch: b,
                    timesteps: w.timesteps,
                },
                &device,
            );
            let iters = epoch_samples.div_ceil(b) as f64;
            report.line(format!(
                "{b:>6} {:>14.2} s {:>14.2} s {:>14}",
                m.modeled_s * iters,
                m.wall_s * iters,
                human_bytes(m.tensor_peak)
            ));
            series.push(serde_json::json!({
                "batch": b,
                "epoch_modeled_s": m.modeled_s * iters,
                "epoch_wall_s": m.wall_s * iters,
                "tensor_peak": m.tensor_peak,
            }));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 3e,f): modeled epoch time drops");
    report.line("several-fold as B grows; memory scales linearly with B.");
    report.blank();

    // Data-parallel scaling: wall time per iteration vs worker count at a
    // fixed batch, plus a bitwise check of the loss against workers = 1.
    let sweep_batch = 64usize;
    let worker_counts: &[usize] = if quick_mode() { &[1, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.line(format!(
        "== data-parallel scaling — custom-Net, B={sweep_batch}, {cores} host core(s) =="
    ));
    report.line(format!(
        "{:>8} {:>12} {:>9} {:>14}",
        "workers", "iter (wall)", "speedup", "loss bitwise"
    ));
    // Determinism check: from identical weights, one iteration's loss is
    // bit-identical for every worker count (across optimizer steps the
    // sharded gradient reduction differs from the single-graph path at
    // f32 rounding, so multi-iteration losses drift — by design).
    let first_loss = |n: usize| -> f64 {
        let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
        let mut session = TrainSession::builder(w.net, Method::Bptt, w.timesteps)
            .optimizer(Box::new(Adam::new(1e-3)))
            .workers(n)
            .build()
            .expect("valid method");
        let mut rng = skipper_tensor::XorShiftRng::new(0xF1603);
        let (inputs, labels) = w.train.first_batch(sweep_batch, w.timesteps, &mut rng);
        session.train_batch(&inputs, &labels).loss
    };
    let reference_loss = first_loss(1);

    let mut baseline_wall: Option<f64> = None;
    let mut series = Vec::new();
    for &n in worker_counts {
        let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
        let mut session = TrainSession::builder(w.net, Method::Bptt, w.timesteps)
            .optimizer(Box::new(Adam::new(1e-3)))
            .workers(n)
            .build()
            .expect("valid method");
        let m = measure(
            &mut session,
            &w.train,
            &MeasureConfig {
                iterations: 2,
                warmup: 1,
                batch: sweep_batch,
                timesteps: w.timesteps,
            },
            &device,
        );
        let base_wall = *baseline_wall.get_or_insert(m.wall_s);
        let speedup = base_wall / m.wall_s;
        let bitwise = first_loss(n).to_bits() == reference_loss.to_bits();
        report.line(format!(
            "{n:>8} {:>10.3} s {:>8.2}x {:>14}",
            m.wall_s,
            speedup,
            if bitwise { "yes" } else { "NO" }
        ));
        series.push(serde_json::json!({
            "workers": n,
            "iter_wall_s": m.wall_s,
            "speedup": speedup,
            "loss_bitwise": bitwise,
        }));
    }
    report.json("worker_scaling", series);
    report.line("Speedup tracks the host core count: a single-core host");
    report.line("shows ~1x; the determinism column must read \"yes\" always.");
    report.save();
}
