//! Paper Table II: checkpointing and Skipper vs TBPTT-LBP (Guo et al.
//! \[28\]) on AlexNet+CIFAR10 at T=20 — accuracy and memory.
//!
//! Expected shape: all four configurations land at similar accuracy;
//! checkpointing/Skipper match or beat TBPTT-LBP's memory, and enlarging
//! the LBP truncation window costs memory without buying accuracy.

use skipper_bench::{
    fit, human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("table2_tbptt_lbp");
    let mut report = Report::new("table2_tbptt_lbp");
    let device = DeviceModel::a100_80gb();
    let epochs = if quick_mode() { 1 } else { 4 };
    let probe = Workload::build(WorkloadKind::AlexnetCifar10);
    let t = probe.timesteps; // 20, as in the paper
                             // AlexNet modules: 5 ConvLif, Flatten, 2 LinearLif, Output.
                             // Paper attaches local classifiers at layers 4 and 8 → module taps 2, 5.
    let taps = vec![2usize, 5];
    let configs = [
        Method::TbpttLbp {
            window: 10,
            taps: taps.clone(),
        },
        Method::TbpttLbp {
            window: 20,
            taps: taps.clone(),
        },
        Method::Checkpointed { checkpoints: 2 },
        Method::Skipper {
            checkpoints: 2,
            percentile: 20.0,
        },
    ];
    report.line(format!(
        "AlexNet+CIFAR10 (scaled), T={t}, B={}, {epochs} epochs",
        probe.batch
    ));
    report.line(format!(
        "{:<22} {:>10} {:>14}",
        "config", "accuracy", "overall mem"
    ));
    let mut rows = Vec::new();
    for m in &configs {
        let w = Workload::build(WorkloadKind::AlexnetCifar10);
        m.validate(&w.net, t).expect("valid config");
        let mut session = TrainSession::builder(w.net, m.clone(), t)
            .optimizer(Box::new(Adam::new(2e-3)))
            .build()
            .expect("valid method");
        let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 21);
        let meas = measure(
            &mut session,
            &w.train,
            &MeasureConfig {
                iterations: 2,
                warmup: 0,
                batch: probe.batch,
                timesteps: t,
            },
            &device,
        );
        report.line(format!(
            "{:<22} {:>9.1}% {:>14}",
            m.label(),
            100.0 * r.final_val_acc(),
            human_bytes(meas.overall_bytes)
        ));
        rows.push(serde_json::json!({
            "config": m.label(),
            "accuracy": r.final_val_acc(),
            "overall_bytes": meas.overall_bytes,
        }));
    }
    report.json("rows", rows);
    report.blank();
    report.line("Expected shape (paper Table II): similar accuracy everywhere;");
    report.line("LBP trW=20 costs more memory than trW=10 without gaining");
    report.line("accuracy; C=2 and C=2&p=20 match it at equal or lower memory.");
    report.save();
}
