//! Paper Fig. 3(a,b): test accuracy and GPU memory vs timesteps for
//! VGG5+CIFAR10 and ResNet20+CIFAR10 under baseline BPTT.
//!
//! Expected shape: accuracy improves (then saturates) with more timesteps;
//! memory grows linearly with T.

use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_memprof::{reset_peaks, snapshot};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig03_accuracy_memory_vs_t");
    let mut report = Report::new("fig03_accuracy_memory_vs_t");
    let quick = quick_mode();
    let epochs = if quick { 1 } else { 3 };
    for kind in [WorkloadKind::Vgg5Cifar10, WorkloadKind::Resnet20Cifar10] {
        let probe = Workload::build(kind);
        let sweep: Vec<usize> = if quick {
            vec![probe.timesteps / 4, probe.timesteps / 2]
        } else {
            vec![
                probe.timesteps / 8,
                probe.timesteps / 4,
                probe.timesteps / 2,
                probe.timesteps * 3 / 4,
                probe.timesteps,
            ]
        };
        report.line(format!(
            "== {} (scaled from paper T={} B={}) — baseline BPTT ==",
            probe.name, probe.paper.timesteps, probe.paper.batch
        ));
        report.line(format!(
            "{:>6} {:>10} {:>14}",
            "T", "test acc", "peak tensor mem"
        ));
        let mut series = Vec::new();
        for &t in &sweep {
            let w = Workload::build(kind);
            let mut session = TrainSession::builder(w.net, Method::Bptt, t)
                .optimizer(Box::new(Adam::new(2e-3)))
                .build()
                .expect("valid method");
            reset_peaks();
            let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 42);
            let peak = snapshot().total_peak();
            report.line(format!(
                "{t:>6} {:>9.1}% {:>10.2} MiB",
                100.0 * r.final_val_acc(),
                peak as f64 / (1 << 20) as f64
            ));
            series.push(serde_json::json!({
                "t": t,
                "test_acc": r.final_val_acc(),
                "peak_bytes": peak,
            }));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 3a,b): accuracy rises with T while");
    report.line("memory grows linearly in T.");
    report.save();
}
