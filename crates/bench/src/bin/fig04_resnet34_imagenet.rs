//! Paper Fig. 4: ResNet34 SNN on ImageNet — (a) tensor memory breakdown vs
//! timesteps at B=1, and (b) data-parallel training time on 4x A100 and
//! per-GPU memory vs batch size at T=200.
//!
//! The paper itself can only run this configuration partially (B=16 is the
//! largest batch that fits at T=200, and a single epoch extrapolates to
//! ~3.5 days); here the *validated* analytic memory model and the GPU
//! roofline model project the full figure.
//!
//! Expected shape: activations take 56–90 % of memory and their share
//! grows with T; per-GPU memory grows linearly in B while time per sample
//! falls.

use skipper_bench::{human_bytes, Report};
use skipper_core::{AnalyticModel, Method};
use skipper_memprof::{DataParallelModel, DeviceModel};
use skipper_snn::{resnet34, ModelConfig};

fn main() {
    let _run = skipper_bench::BenchRun::start("fig04_resnet34_imagenet");
    let mut report = Report::new("fig04_resnet34_imagenet");
    // Full-scale ResNet34 at ImageNet geometry (this only allocates the
    // weights, ~85 MB — the activations exist analytically).
    let net = resnet34(&ModelConfig {
        input_hw: 224,
        in_channels: 3,
        num_classes: 1000,
        width_mult: 1.0,
        ..ModelConfig::default()
    });
    let model = AnalyticModel::new(&net);
    report.line(format!(
        "ResNet34 SNN @ ImageNet geometry: {} spiking layers, {:.1}M params",
        net.spiking_layer_count(),
        net.param_scalars() as f64 / 1e6
    ));

    // ---- (a) breakdown vs timesteps at B=1 ----
    report.blank();
    report.line("(a) tensor memory breakdown vs T at B=1 (baseline BPTT):");
    report.line(format!(
        "{:>6} {:>12} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "T", "total", "act %", "input %", "wts %", "grads %", "optim %"
    ));
    let mut series_a = Vec::new();
    for t in [50usize, 100, 150, 200] {
        let b = model.breakdown(&Method::Bptt, t, 1);
        let total = b.total() as f64;
        report.line(format!(
            "{t:>6} {:>12} {:>7.1}% {:>8.1}% {:>8.1}% {:>9.1}% {:>9.1}%",
            human_bytes(b.total()),
            100.0 * b.activations as f64 / total,
            100.0 * b.input as f64 / total,
            100.0 * b.weights as f64 / total,
            100.0 * b.weight_grads as f64 / total,
            100.0 * b.optimizer as f64 / total,
        ));
        series_a.push(serde_json::json!({
            "t": t,
            "total": b.total(),
            "activation_fraction": b.activation_fraction(),
        }));
    }
    report.json("breakdown_vs_t", series_a);

    // ---- (b) 4x A100 data parallel, T=200 ----
    report.blank();
    report.line("(b) 4x A100 data-parallel: time to train 800 samples and per-GPU");
    report.line("    memory vs global batch size (T=200):");
    report.line(format!(
        "{:>6} {:>16} {:>16} {:>6}",
        "B", "train time", "per-GPU mem", "fits?"
    ));
    let cluster = DataParallelModel::four_a100();
    let device = DeviceModel::a100_80gb();
    let t = 200usize;
    let fwd_flops = net.per_step_flops_per_sample();
    let param_bytes = net.param_scalars() * 4;
    let resident = param_bytes * 4; // weights + grads + 2 Adam moments
    let kernels_per_step = net.modules().len() as f64 * 2.0;
    let mut series_b = Vec::new();
    for batch in [4usize, 8, 12, 16] {
        let shard = (batch / cluster.n_devices).max(1);
        // Iteration = forward + recompute-free backward (2x) over T steps.
        let step_flops = fwd_flops * shard as f64;
        let iter_s: f64 = (0..t)
            .map(|_| {
                3.0 * device.kernel_time_s(step_flops, step_flops)
                    + kernels_per_step * device.launch_overhead_s
            })
            .sum();
        let act = model.activation_bytes(&Method::Bptt, t, shard);
        let cost = cluster.step(iter_s, param_bytes, resident, act);
        let iters = 800usize.div_ceil(batch) as f64;
        let total_s = cost.total_s() * iters;
        report.line(format!(
            "{batch:>6} {:>13.1} min {:>16} {:>6}",
            total_s / 60.0,
            human_bytes(cost.per_device_bytes),
            if cluster.fits(&cost) { "yes" } else { "OOM" }
        ));
        series_b.push(serde_json::json!({
            "batch": batch,
            "train_800_s": total_s,
            "per_gpu_bytes": cost.per_device_bytes,
            "fits": cluster.fits(&cost),
        }));
    }
    report.json("data_parallel_vs_batch", series_b);
    report.blank();
    report.line("Expected shape (paper Fig. 4): activations are 56-90% of memory,");
    report.line("growing with T; larger batches amortise time but B=16 is the");
    report.line("largest that fits at T=200, and one ImageNet epoch takes days.");
    report.save();
}
