//! Record a structured trace of a short Skipper training run.
//!
//! Installs two `skipper-obs` sinks — a [`ChromeTraceSink`] that writes
//! `results/trace_training.trace.json` (Chrome trace-event format, drag
//! into <https://ui.perfetto.dev> or `chrome://tracing`) and a ring buffer
//! whose contents feed the terminal summary table — then trains the tiny
//! N-MNIST net for a few iterations with `T = 20`, `C = 2`, `p = 50`.
//!
//! Besides producing the artefact, the bin cross-checks the trace against
//! the runner's own accounting: every timestep of every iteration must
//! appear as exactly one `skip_decision` event, and the events flagged
//! `skip=true` must equal `BatchStats::skipped_steps`.

use skipper_bench::{quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_obs as obs;
use skipper_snn::Adam;
use skipper_tensor::XorShiftRng;

fn main() {
    let _run = skipper_bench::BenchRun::start("trace_training");
    let t = 20usize;
    let c = 2usize;
    let p = 50.0f32;
    let iterations = if quick_mode() { 2 } else { 8 };

    let mut report = Report::new("trace_training");
    report.line(format!(
        "Tracing {iterations} Skipper iterations on custom-net/N-MNIST (T={t}, C={c}, p={p})"
    ));

    // Sinks: Chrome trace to disk, ring buffer for the summary table.
    // (BenchRun already cleared the registry and installed its no-op sink.)
    std::fs::create_dir_all("results").ok();
    let trace_path = std::path::Path::new("results").join("trace_training.trace.json");
    let chrome_id = obs::add_sink(Box::new(obs::ChromeTraceSink::new(&trace_path)));
    let (ring, handle) = obs::RingBufferSink::new(1 << 16);
    let ring_id = obs::add_sink(Box::new(ring));

    let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
    let mut session = TrainSession::builder(
        w.net,
        Method::Skipper {
            checkpoints: c,
            percentile: p,
        },
        t,
    )
    .optimizer(Box::new(Adam::new(1e-3)))
    .build()
    .expect("valid method");
    let mut rng = XorShiftRng::new(7);
    let (inputs, labels) = w.train.first_batch(4, t, &mut rng);

    let (mut skipped, mut recomputed) = (0usize, 0usize);
    for _ in 0..iterations {
        let stats = session.train_batch(&inputs, &labels);
        assert_eq!(
            stats.skipped_steps + stats.recomputed_steps,
            t,
            "every timestep is either recomputed or skipped"
        );
        skipped += stats.skipped_steps;
        recomputed += stats.recomputed_steps;
    }

    // Removing a sink flushes it; the Chrome sink writes its file here.
    obs::remove_sink(chrome_id);
    obs::remove_sink(ring_id);
    let events = handle.snapshot();
    let metrics = obs::registry().snapshot();

    // Trace ↔ runner consistency: one skip_decision per timestep per
    // iteration, and the skip=true subset matches BatchStats.
    let decisions: Vec<_> = events
        .iter()
        .filter(|e| e.name == "skip_decision")
        .collect();
    assert_eq!(
        decisions.len(),
        iterations * t,
        "one skip_decision event per timestep per iteration"
    );
    let skipped_events = decisions
        .iter()
        .filter(|e| {
            e.fields
                .iter()
                .any(|(k, v)| *k == "skip" && matches!(v, obs::FieldValue::Bool(true)))
        })
        .count();
    assert_eq!(
        skipped_events, skipped,
        "skip=true events match BatchStats::skipped_steps"
    );

    report.line(format!(
        "consistency: {} skip_decision events = {iterations} iters x {t} steps; \
         {skipped_events} skipped + {} recomputed = {}",
        decisions.len(),
        recomputed,
        skipped + recomputed
    ));
    report.line(format!(
        "trace: {} events -> {}",
        events.len(),
        trace_path.display()
    ));
    report.blank();
    for line in obs::render_summary(&events, &metrics, 12).lines() {
        report.line(line);
    }

    report.json("iterations", iterations);
    report.json("events", events.len());
    report.json("skipped_steps", skipped);
    report.json("recomputed_steps", recomputed);
    report.save();
}
