//! Ablation: surrogate-gradient family under Skipper.
//!
//! The paper trains with a fixed surrogate (following Neftci et al. 2019);
//! this ablation checks that Skipper's time-skipping is robust to the
//! surrogate choice — triangle, fast-sigmoid and arc-tan all train, and
//! the skipper-vs-baseline accuracy gap stays small for each.

use skipper_autograd::Surrogate;
use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_snn::Adam;

fn set_surrogate(net: &mut skipper_snn::SpikingNetwork, surrogate: Surrogate) {
    use skipper_snn::Module;
    for m in net.modules_mut() {
        match m {
            Module::ConvLif { lif, .. } | Module::LinearLif { lif, .. } => {
                lif.cfg.surrogate = surrogate;
            }
            Module::Residual { lif1, lif2, .. } => {
                lif1.cfg.surrogate = surrogate;
                lif2.cfg.surrogate = surrogate;
            }
            _ => {}
        }
    }
}

fn main() {
    let _run = skipper_bench::BenchRun::start("ablation_surrogate");
    let mut report = Report::new("ablation_surrogate");
    let epochs = if quick_mode() { 1 } else { 4 };
    let kind = WorkloadKind::Vgg5Cifar10;
    let probe = Workload::build(kind);
    report.line(format!(
        "Surrogate ablation on {} (T={}, {epochs} epochs)",
        probe.name, probe.timesteps
    ));
    report.line(format!(
        "{:<28} {:>12} {:>12}",
        "surrogate", "baseline", "skipper"
    ));
    let surrogates = [
        ("triangle(w=1)", Surrogate::Triangle { width: 1.0 }),
        ("triangle(w=0.5)", Surrogate::Triangle { width: 0.5 }),
        ("fast-sigmoid(s=2)", Surrogate::FastSigmoid { slope: 2.0 }),
        ("arctan(a=2)", Surrogate::ArcTan { alpha: 2.0 }),
    ];
    let mut rows = Vec::new();
    for (name, surrogate) in surrogates {
        let mut accs = Vec::new();
        for method in [
            Method::Bptt,
            Method::Skipper {
                checkpoints: probe.checkpoints,
                percentile: probe.percentile,
            },
        ] {
            let mut w = Workload::build(kind);
            set_surrogate(&mut w.net, surrogate);
            let mut session = TrainSession::builder(w.net, method, w.timesteps)
                .optimizer(Box::new(Adam::new(2e-3)))
                .build()
                .expect("valid method");
            let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 31);
            accs.push(r.final_val_acc());
        }
        report.line(format!(
            "{:<28} {:>11.1}% {:>11.1}%",
            name,
            100.0 * accs[0],
            100.0 * accs[1]
        ));
        rows.push(serde_json::json!({
            "surrogate": name,
            "baseline": accs[0],
            "skipper": accs[1],
        }));
    }
    report.json("rows", rows);
    report.blank();
    report.line("Expected shape: every surrogate trains; skipper stays within");
    report.line("noise of its own baseline for each surrogate family.");
    report.save();
}
