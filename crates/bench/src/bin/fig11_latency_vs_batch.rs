//! Paper Fig. 11: end-to-end training latency per epoch vs batch size,
//! with each bar annotated by its memory consumption — under a constant
//! memory budget, Skipper fits larger batches and finishes epochs sooner.
//!
//! Expected shape: for every method latency falls with B; at the *same*
//! memory budget Skipper reaches a larger B than checkpointing, which
//! reaches a larger B than baseline (paper: up to 52 % lower latency).

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig11_latency_vs_batch");
    let mut report = Report::new("fig11_latency_vs_batch");
    let device = DeviceModel::a100_80gb();
    let epoch_samples = 512usize;
    let kinds: &[WorkloadKind] = if quick_mode() {
        &[WorkloadKind::Vgg5Cifar10]
    } else {
        &WorkloadKind::SWEEPS
    };
    for &kind in kinds {
        let probe = Workload::build_for_measurement(kind);
        let t = probe.timesteps;
        let methods = [
            Method::Bptt,
            Method::Checkpointed {
                checkpoints: probe.checkpoints,
            },
            Method::Skipper {
                checkpoints: probe.checkpoints,
                percentile: probe.percentile,
            },
        ];
        let batches: Vec<usize> = if quick_mode() {
            vec![4]
        } else {
            vec![2, 4, 8, 16]
        };
        report.line(format!(
            "== {} — epoch latency (modeled) and memory vs B (T={t}) ==",
            probe.name
        ));
        let mut series = Vec::new();
        for m in &methods {
            report.line(format!("-- {} --", m.label()));
            report.line(format!(
                "{:>6} {:>14} {:>16}",
                "B", "epoch latency", "overall memory"
            ));
            for &b in &batches {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, m.clone(), t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                let meas = measure(
                    &mut s,
                    &w.train,
                    &MeasureConfig {
                        iterations: 2,
                        warmup: 1,
                        batch: b,
                        timesteps: t,
                    },
                    &device,
                );
                let iters = epoch_samples.div_ceil(b) as f64;
                report.line(format!(
                    "{b:>6} {:>12.2} s {:>16}",
                    meas.modeled_s * iters,
                    human_bytes(meas.overall_bytes)
                ));
                series.push(serde_json::json!({
                    "method": m.label(),
                    "batch": b,
                    "epoch_s": meas.modeled_s * iters,
                    "overall_bytes": meas.overall_bytes,
                }));
            }
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 11): at any fixed memory budget the");
    report.line("skipper column reaches the largest batch and lowest epoch latency.");
    report.save();
}
