use skipper_bench::{Workload, WorkloadKind};
use skipper_snn::StepCtx;
use skipper_tensor::XorShiftRng;
fn main() {
    let w = Workload::build(WorkloadKind::Vgg11Cifar100);
    let mut rng = XorShiftRng::new(1);
    let (inputs, _) = w.train.first_batch(4, w.timesteps, &mut rng);
    let mut state = w.net.init_state(4);
    let mut sums = vec![0.0f64; w.net.state_shapes().len()];
    for (t, inp) in inputs.iter().enumerate() {
        let _ = w.net.step_infer(inp, &mut state, &StepCtx::eval(t));
        for (i, s) in state.spikes.iter().enumerate() { sums[i] += s.sum(); }
    }
    for (i, (s, shape)) in sums.iter().zip(w.net.state_shapes()).enumerate() {
        let n: usize = shape.iter().product();
        println!("layer {i} {:?}: rate {:.4}", shape, s / (n as f64 * 4.0 * w.timesteps as f64));
    }
}
