//! Serving smoke bench: a multi-tenant gateway on loopback HTTP must
//! (1) answer micro-batched traffic **bit-identically** to a direct
//! `InferSession::predict` on each sample, (2) actually coalesce — more
//! 200s than forward passes, (3) shed an over-budget tenant with typed
//! 429s while a well-behaved tenant keeps its 200s, and (4) with
//! SAM-driven inference-time skipping enabled, early-exit quiet
//! timesteps and cut predict latency.
//!
//! This is the CI gate for `skipper-serve`: it exits 1 on the first
//! violated contract, and its manifest
//! (`results/BENCH_serve_loopback.json`) carries the
//! `serve.request_wall_us` p50/p95/p99 that `bench_gate` diffs against
//! the committed baseline — request-latency regressions fail CI the
//! same way training-iteration regressions do.
//!
//! ```text
//! serve_loopback [--clients 4] [--requests 16] [--quick]
//! ```

use skipper_core::{InferSession, InferSkip};
use skipper_serve::{
    Gateway, GatewayConfig, ModelPool, PredictRequest, PredictResponse, SloConfig, SloStatus,
    TenantConfig,
};
use skipper_snn::{custom_net, ModelConfig, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spike-train length. Long enough that a p50 skip schedule has real
/// work to drop.
const T: usize = 12;
const SHAPE: [usize; 3] = [3, 8, 8];
const PER_STEP: usize = 3 * 8 * 8;
/// Percentile 55 so the nearest-rank SST over an even quiet/dense split
/// lands on a dense step: every quiet step is strictly below it and
/// early-exits (p50 would land on the busiest *quiet* step, and the
/// strict `<` comparison would then skip nothing).
const SKIP: InferSkip = InferSkip {
    percentile: 55.0,
    min_steps: 1,
};

struct Args {
    clients: usize,
    requests: usize,
}

fn parse_args() -> Args {
    let quick = skipper_bench::quick_mode();
    let mut args = Args {
        clients: 4,
        requests: if quick { 4 } else { 16 },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("--clients: usize"),
            "--requests" => args.requests = value("--requests").parse().expect("--requests: usize"),
            "--quick" => {}
            "--help" | "-h" => {
                println!("usage: serve_loopback [--clients N] [--requests N] [--quick]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    assert!(args.clients >= 2 && args.requests >= 1);
    args
}

fn net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

/// Client-side encoding: a deterministic flat spike train, timestep-major.
/// Even timesteps are dense, odd ones are all-zero, so a p50 skip
/// schedule deterministically drops half the steps.
fn encode(seed: u64) -> Vec<f32> {
    let mut rng = XorShiftRng::new(seed);
    let mut out = Vec::with_capacity(T * PER_STEP);
    for t in 0..T {
        let frame = Tensor::rand([1, 3, 8, 8], &mut rng).map(|x| (x > 0.55) as i32 as f32);
        if t % 2 == 0 {
            out.extend_from_slice(frame.data());
        } else {
            out.extend(std::iter::repeat_n(0.0, PER_STEP));
        }
    }
    out
}

fn to_steps(inputs: &[f32]) -> Vec<Tensor> {
    inputs
        .chunks_exact(PER_STEP)
        .map(|s| Tensor::from_vec(s.to_vec(), [1, 3, 8, 8]))
        .collect()
}

fn request_body(tenant: &str, inputs: &[f32]) -> String {
    serde_json::to_string(&PredictRequest {
        tenant: tenant.to_string(),
        timesteps: T,
        shape: SHAPE.to_vec(),
        inputs: inputs.to_vec(),
        deadline_ms: None,
    })
    .expect("request serializes")
}

fn post(addr: SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    let raw = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("request write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    let raw = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("request write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn counter(name: &str) -> f64 {
    skipper_obs::registry()
        .snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

/// Drive `clients x requests` concurrent predictions through `addr`,
/// asserting each 200 row is bit-identical to its direct-inference
/// reference. Returns (successes, drift) with per-client mean latency
/// printed.
fn run_traffic(
    addr: SocketAddr,
    tenant: &str,
    clients: usize,
    requests: usize,
    references: &Arc<Vec<Vec<f32>>>,
) -> (usize, bool) {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let refs = Arc::clone(references);
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let inputs = encode(c as u64 + 1);
                let body = request_body(&tenant, &inputs);
                let mut ok = 0usize;
                let mut drift = false;
                let started = Instant::now();
                for _ in 0..requests {
                    let (status, text) = post(addr, &body);
                    if status != 200 {
                        eprintln!("client {c}: HTTP {status}: {text}");
                        continue;
                    }
                    ok += 1;
                    let resp: PredictResponse = match serde_json::from_str(&text) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("client {c}: bad body: {e:?}");
                            drift = true;
                            continue;
                        }
                    };
                    let want = &refs[c];
                    let same = resp.logits.len() == want.len()
                        && resp
                            .logits
                            .iter()
                            .zip(want)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    if !same {
                        eprintln!("client {c}: logits drifted from direct inference");
                        drift = true;
                    }
                }
                let mean_ms = started.elapsed().as_secs_f64() * 1e3 / requests as f64;
                (ok, drift, mean_ms)
            })
        })
        .collect();
    let mut successes = 0usize;
    let mut drift = false;
    for (c, h) in handles.into_iter().enumerate() {
        let (ok, d, mean_ms) = h.join().expect("client thread");
        println!("client {c}: {ok}/{requests} ok, mean {mean_ms:.2} ms/request");
        successes += ok;
        drift |= d;
    }
    (successes, drift)
}

/// Mean direct `predict` wall time over `iters` calls (µs).
fn predict_mean_us(session: &InferSession, steps: &[Tensor], iters: usize) -> f64 {
    // Warm up allocator caches so the comparison times the kernels.
    session.predict(steps).expect("warmup predict");
    let started = Instant::now();
    for _ in 0..iters {
        session.predict(steps).expect("timed predict");
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    // Profiled by default (odd prime Hz so the sampler never phase-locks
    // with the batcher's millisecond-grained waits); SKIPPER_PROF_HZ
    // still overrides, and =0 turns the sampler off.
    let _run = skipper_bench::BenchRun::start_profiled("serve_loopback", 499.0);
    let args = parse_args();
    let quick = skipper_bench::quick_mode();
    let mut fail = false;

    // Direct-inference references: the gateway's micro-batching must be
    // invisible, so a solo predict per client defines the right answer.
    let reference_session = InferSession::new(net());
    let references: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..args.clients)
            .map(|c| {
                let steps = to_steps(&encode(c as u64 + 1));
                reference_session
                    .predict(&steps)
                    .expect("reference predict")
                    .logits
                    .data()
                    .to_vec()
            })
            .collect(),
    );

    // Phase 1: plain gateway on the global router (the production path —
    // `/v1/predict` rides the same server `/metrics` would). A generous
    // tenant carries the traffic; "burst" is budgeted for ~2 requests so
    // overload answers are typed 429s, not queue pressure.
    let cfg = GatewayConfig {
        tenants: vec![
            TenantConfig::new("acme", 10_000.0, 10_000.0),
            TenantConfig::new("burst", 0.5, 2.0),
        ],
        max_batch: args.clients,
        max_delay: Duration::from_millis(25),
        // Fast SLO ticks so the burn-rate check below sees several
        // evaluations within the bench's short life.
        slo: Some(SloConfig {
            eval_period: Duration::from_millis(100),
            ..SloConfig::default()
        }),
        ..GatewayConfig::default()
    };
    let shed_before = counter("serve.shed{reason=rate_limited}");
    let (successes, batches, shed_429s) = {
        let mut gateway = Gateway::start(
            cfg.clone(),
            ModelPool::fixed(InferSession::new(net())),
            skipper_obs::global_router(),
        )
        .expect("gateway threads");
        let addr = gateway.bind("127.0.0.1:0").expect("loopback bind");
        println!(
            "gateway on {addr}: {} clients x {} requests, max_batch {}, max_delay {:?}",
            args.clients, args.requests, cfg.max_batch, cfg.max_delay
        );

        let batches_before = counter("serve.batches");
        let (successes, drift) =
            run_traffic(addr, "acme", args.clients, args.requests, &references);
        fail |= drift;
        let batches = counter("serve.batches") - batches_before;

        // Overload: hammer the starved tenant faster than it refills.
        let burst_total = if quick { 8 } else { 16 };
        let body = request_body("burst", &encode(1));
        let mut shed_429s = 0usize;
        for _ in 0..burst_total {
            let (status, text) = post(addr, &body);
            match status {
                200 => {}
                429 if text.contains("rate_limited") => shed_429s += 1,
                other => {
                    eprintln!("burst tenant: unexpected HTTP {other}: {text}");
                    fail = true;
                }
            }
        }
        println!("burst tenant: {shed_429s}/{burst_total} typed 429s");

        // SLO check: after all that traffic (including the intentional
        // 429s, which are policy and must NOT count as budget burn), the
        // burn rate has to sit below 1.0. Give the engine a few ticks to
        // fold the traffic in first.
        std::thread::sleep(Duration::from_millis(350));
        let (slo_status, slo_body) = get(addr, "/slo");
        if slo_status != 200 {
            eprintln!("FAIL: GET /slo answered HTTP {slo_status}: {slo_body}");
            fail = true;
        } else {
            match serde_json::from_str::<SloStatus>(&slo_body) {
                Ok(slo) => {
                    for w in &slo.windows {
                        println!(
                            "slo[{}]: burn {:.3} (latency {:.3}, availability {:.3}) over \
                             {:.0} requests",
                            w.window, w.burn_rate, w.latency_burn, w.availability_burn, w.requests
                        );
                    }
                    if !slo.healthy || slo.windows.iter().any(|w| w.burn_rate >= 1.0) {
                        eprintln!("FAIL: SLO burn rate at or above 1.0 on baseline traffic");
                        fail = true;
                    }
                    if slo.windows.len() != 2 {
                        eprintln!("FAIL: /slo reported {} windows, want 2", slo.windows.len());
                        fail = true;
                    }
                }
                Err(e) => {
                    eprintln!("FAIL: /slo body does not parse: {e:?}: {slo_body}");
                    fail = true;
                }
            }
            let slo_path = skipper_report::results_dir().join("slo_serve_loopback.json");
            match std::fs::create_dir_all(skipper_report::results_dir())
                .and_then(|()| std::fs::write(&slo_path, &slo_body))
            {
                Ok(()) => println!("slo report: {}", slo_path.display()),
                Err(e) => eprintln!("slo report: failed to save: {e}"),
            }
        }
        (successes, batches, shed_429s)
    };
    let shed_total = counter("serve.shed{reason=rate_limited}") - shed_before;

    // Phase 2: skipping mode. The same alternating dense/quiet spike
    // trains, a p50 SST — the quiet half of the timesteps early-exits.
    // Latency is compared on direct sessions (batching delay would
    // drown the kernel saving), then gateway traffic proves the counter
    // plumbing end to end.
    let steps = to_steps(&encode(1));
    let iters = if quick { 5 } else { 40 };
    let plain_us = predict_mean_us(&InferSession::new(net()), &steps, iters);
    let skip_session = InferSession::new(net()).with_skip(SKIP);
    let skip_us = predict_mean_us(&skip_session, &steps, iters);
    let reduction_pct = (plain_us - skip_us) / plain_us * 100.0;
    let skipped = skip_session
        .predict(&steps)
        .expect("skip predict")
        .skipped_steps;
    println!(
        "inference-time skipping (p{} SST, T={T}): {plain_us:.0} -> {skip_us:.0} us/predict \
         ({reduction_pct:+.1}% latency, {skipped}/{T} steps early-exited)",
        SKIP.percentile
    );

    let skipped_before = counter("serve.steps_skipped");
    {
        let mut gateway = Gateway::start(
            GatewayConfig {
                skip: Some(SKIP),
                ..cfg
            },
            ModelPool::fixed(InferSession::new(net()).with_skip(SKIP)),
            skipper_obs::global_router(),
        )
        .expect("skip gateway threads");
        let addr = gateway.bind("127.0.0.1:0").expect("loopback bind");
        let (status, text) = post(addr, &request_body("acme", &encode(1)));
        if status != 200 {
            eprintln!("skip gateway: HTTP {status}: {text}");
            fail = true;
        }
    }
    let skipped_served = counter("serve.steps_skipped") - skipped_before;

    // The contracts, each a hard exit-1: the manifest only means
    // something if the run it summarizes held them.
    let expected = args.clients * args.requests;
    if successes != expected {
        eprintln!("FAIL: {successes}/{expected} requests answered 200");
        fail = true;
    }
    if batches >= successes as f64 {
        eprintln!("FAIL: {batches} forward passes for {successes} requests — nothing coalesced");
        fail = true;
    } else {
        println!(
            "coalescing: {successes} requests in {batches} forward passes \
             (mean occupancy {:.2})",
            successes as f64 / batches
        );
    }
    if shed_429s == 0 || shed_total <= 0.0 {
        eprintln!(
            "FAIL: overloaded tenant was never shed (429s {shed_429s}, counter {shed_total})"
        );
        fail = true;
    }
    if skipped == 0 || skipped_served <= 0.0 {
        eprintln!(
            "FAIL: skipping mode evaluated everything (direct {skipped}, served {skipped_served})"
        );
        fail = true;
    }
    if reduction_pct <= 0.0 {
        eprintln!("FAIL: skipping did not reduce predict latency ({reduction_pct:+.1}%)");
        fail = true;
    }
    // Continuous-profiling contract: the sampler (on by default here)
    // must have caught the gateway at work, with the forward pass nested
    // under the batcher's span. The harness writes this same folded text
    // to results/profile_serve_loopback.folded on drop.
    let folded = skipper_obs::profile::folded_text();
    if folded.is_empty() {
        eprintln!("FAIL: the span-stack sampler collected nothing");
        fail = true;
    } else if !folded.contains("gateway_batch;execute") {
        eprintln!("FAIL: no sample nested execute under gateway_batch:\n{folded}");
        fail = true;
    } else {
        println!(
            "profiler: {} distinct stacks sampled, execute nests under gateway_batch",
            folded.lines().count()
        );
    }

    if fail {
        eprintln!("FAIL: serving contracts violated");
        std::process::exit(1);
    }
    println!("OK: batched serving is bit-identical, shedding is typed, skipping pays");
}
