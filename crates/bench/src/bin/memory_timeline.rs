//! Within-iteration activation-memory timelines (supplementary figure).
//!
//! The defining picture of the paper's mechanism, reconstructed from the
//! allocation event log of one real training iteration per method:
//!
//! * baseline BPTT — one big sawtooth (ramp over the whole forward pass,
//!   drain during backward);
//! * checkpointed — `C` small humps, one per re-executed segment;
//! * Skipper — the same humps, flattened by the skipped timesteps.

use skipper_bench::{human_bytes, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_memprof::{
    downsample, enable_event_log, sparkline, take_events, timeline_from_events, Category,
};
use skipper_snn::Adam;
use skipper_tensor::XorShiftRng;

fn main() {
    let _run = skipper_bench::BenchRun::start("memory_timeline");
    let mut report = Report::new("memory_timeline");
    let kind = WorkloadKind::Vgg5Cifar10;
    let probe = Workload::build_for_measurement(kind);
    let t = if quick_mode() {
        probe.timesteps / 2
    } else {
        probe.timesteps
    };
    let width = 72usize;
    report.line(format!(
        "Activation memory over one training iteration — {} (T={t}, B={})",
        probe.name, probe.batch
    ));
    report.blank();
    let methods = [
        Method::Bptt,
        Method::Checkpointed {
            checkpoints: probe.checkpoints,
        },
        Method::Skipper {
            checkpoints: probe.checkpoints,
            percentile: probe.percentile,
        },
    ];
    let mut series = Vec::new();
    for m in &methods {
        let w = Workload::build_for_measurement(kind);
        let mut session = TrainSession::builder(w.net, m.clone(), t)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build()
            .expect("valid method");
        let mut rng = XorShiftRng::new(1);
        let (inputs, labels) = w.train.first_batch(probe.batch, t, &mut rng);
        // Warm-up so persistent buffers exist, then record one iteration.
        let _ = session.train_batch(&inputs, &labels);
        enable_event_log();
        let _ = session.train_batch(&inputs, &labels);
        let events = take_events();
        let tl = timeline_from_events(&events);
        let peak = tl
            .iter()
            .map(|p| p.live(Category::Activations))
            .max()
            .unwrap_or(0);
        let small = downsample(&tl, width);
        report.line(format!(
            "{:<14} peak {:>10}  ({} allocation events)",
            m.label(),
            human_bytes(peak),
            events.len()
        ));
        report.line(format!("  {}", sparkline(&small, Category::Activations)));
        report.blank();
        series.push(serde_json::json!({
            "method": m.label(),
            "peak_bytes": peak,
            "curve": small
                .iter()
                .map(|p| p.live(Category::Activations))
                .collect::<Vec<_>>(),
        }));
    }
    report.json("timelines", series);
    report.line("Expected shape: one tall sawtooth for baseline; C low humps for");
    report.line("checkpointing; flattened humps for skipper.");
    report.save();
}
