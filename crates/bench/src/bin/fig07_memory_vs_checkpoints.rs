//! Paper Fig. 7: overall peak memory and computation time vs the number of
//! checkpoints C, for the four sweep workloads at fixed B and T.
//!
//! Expected shape: memory is U-shaped in C with the minimum near √T
//! (Eq. 3); time is ~30 % above baseline and roughly flat in C.

use skipper_bench::{
    human_bytes, measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind,
};
use skipper_core::{max_checkpoints, Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig07_memory_vs_checkpoints");
    let mut report = Report::new("fig07_memory_vs_checkpoints");
    let device = DeviceModel::a100_80gb();
    let kinds: &[WorkloadKind] = if quick_mode() {
        &[WorkloadKind::Vgg5Cifar10]
    } else {
        &WorkloadKind::SWEEPS
    };
    for &kind in kinds {
        let probe = Workload::build_for_measurement(kind);
        // Shallow networks get a doubled horizon so the U-shaped minimum
        // (near sqrt(T·A/S), Eq. 3) falls inside the admissible C range.
        let t = if probe.net.spiking_layer_count() <= 7 {
            probe.timesteps * 2
        } else {
            probe.timesteps
        };
        let cmax = max_checkpoints(t, probe.net.spiking_layer_count());
        let mut cs: Vec<usize> = vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24]
            .into_iter()
            .filter(|&c| c <= cmax && c <= t)
            .collect();
        cs.dedup();
        report.line(format!(
            "== {} — memory & time vs C (T={t}, B={}, C_max={cmax}) ==",
            probe.name, probe.batch
        ));
        report.line(format!(
            "{:>10} {:>14} {:>14} {:>14} {:>12}",
            "C", "tensor peak", "overall mem", "modeled iter", "vs baseline"
        ));
        // Baseline reference.
        let mcfg = MeasureConfig {
            iterations: 2,
            warmup: 1,
            batch: probe.batch,
            timesteps: t,
        };
        let base = {
            let w = Workload::build_for_measurement(kind);
            let mut s = TrainSession::builder(w.net, Method::Bptt, t)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            measure(&mut s, &w.train, &mcfg, &device)
        };
        report.line(format!(
            "{:>10} {:>14} {:>14} {:>12.2}ms {:>12}",
            "baseline",
            human_bytes(base.tensor_peak),
            human_bytes(base.overall_bytes),
            base.modeled_s * 1e3,
            "1.00x"
        ));
        let mut series = vec![serde_json::json!({
            "c": 0,
            "tensor_peak": base.tensor_peak,
            "overall_bytes": base.overall_bytes,
            "modeled_s": base.modeled_s,
        })];
        for &c in &cs {
            let w = Workload::build_for_measurement(kind);
            let mut s = TrainSession::builder(w.net, Method::Checkpointed { checkpoints: c }, t)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            let m = measure(&mut s, &w.train, &mcfg, &device);
            report.line(format!(
                "{c:>10} {:>14} {:>14} {:>12.2}ms {:>11.2}x",
                human_bytes(m.tensor_peak),
                human_bytes(m.overall_bytes),
                m.modeled_s * 1e3,
                m.modeled_s / base.modeled_s
            ));
            series.push(serde_json::json!({
                "c": c,
                "tensor_peak": m.tensor_peak,
                "overall_bytes": m.overall_bytes,
                "modeled_s": m.modeled_s,
            }));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 7): memory falls to a minimum near");
    report.line("C = sqrt(T) then rises again; the checkpointed runtime sits ~30%");
    report.line("above baseline and stays roughly constant across C.");
    report.save();
}
