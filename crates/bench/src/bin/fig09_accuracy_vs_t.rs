//! Paper Fig. 9: accuracy vs timesteps for the LeNet SNN on DVS-Gesture,
//! trained with baseline BPTT and with Skipper.
//!
//! Expected shape: accuracy grows with T for both regimes and the two
//! stay within noise of each other at every horizon.

use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{max_skippable_percentile, Method, TrainSession};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig09_accuracy_vs_t");
    let mut report = Report::new("fig09_accuracy_vs_t");
    let quick = quick_mode();
    let epochs = if quick { 2 } else { 5 };
    let probe = Workload::build(WorkloadKind::LenetDvsGesture);
    let sweep: Vec<usize> = if quick {
        vec![16, 32]
    } else {
        vec![8, 16, 24, 32, 40]
    };
    report.line(format!(
        "LeNet + synthetic DVS-gesture, B={}, {epochs} epochs per point",
        probe.batch
    ));
    report.line(format!(
        "{:>6} {:>12} {:>18}",
        "T", "baseline", "skipper (C, p)"
    ));
    let mut series = Vec::new();
    for &t in &sweep {
        let layers = probe.net.spiking_layer_count();
        // Scale C and p with T, respecting the Eq. 7 bound.
        let c = (t / (2 * layers)).max(1);
        let p = (max_skippable_percentile(t, c, layers) - 10.0).clamp(0.0, 70.0);
        let base_acc = {
            let w = Workload::build(WorkloadKind::LenetDvsGesture);
            let mut s = TrainSession::builder(w.net, Method::Bptt, t)
                .optimizer(Box::new(Adam::new(2e-3)))
                .build()
                .expect("valid method");
            fit(&mut s, &w.train, &w.test, epochs, w.batch, 11).final_val_acc()
        };
        let skip_acc = {
            let w = Workload::build(WorkloadKind::LenetDvsGesture);
            let m = Method::Skipper {
                checkpoints: c,
                percentile: p,
            };
            m.validate(&w.net, t).expect("valid");
            let mut s = TrainSession::builder(w.net, m, t)
                .optimizer(Box::new(Adam::new(2e-3)))
                .build()
                .expect("valid method");
            fit(&mut s, &w.train, &w.test, epochs, w.batch, 11).final_val_acc()
        };
        report.line(format!(
            "{t:>6} {:>11.1}% {:>9.1}% (C={c}, p={p:.0})",
            100.0 * base_acc,
            100.0 * skip_acc
        ));
        series.push(serde_json::json!({
            "t": t, "baseline": base_acc, "skipper": skip_acc, "c": c, "p": p,
        }));
    }
    report.json("series", series);
    report.blank();
    report.line("Expected shape (paper Fig. 9): accuracy improves with T; skipper");
    report.line("tracks baseline at every horizon.");
    report.save();
}
