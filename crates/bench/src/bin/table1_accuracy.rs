//! Paper Table I: test accuracy of the five workloads under the four
//! training techniques (baseline BPTT, checkpointed, Skipper, TBPTT).
//!
//! Expected shape: checkpointing matches baseline exactly (same
//! gradients); Skipper stays within noise of baseline; TBPTT matches on
//! shallow networks but falls behind on the deep ones (the paper's VGG11
//! drops ~9 %).

use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("table1_accuracy");
    let mut report = Report::new("table1_accuracy");
    let quick = quick_mode();
    // Per-workload epoch budgets: heavier networks get fewer epochs (the
    // hybrid ANN pre-initialisation gives them a head start, as in the
    // paper's 20-epoch fine-tuning).
    let epochs_for = |kind: WorkloadKind| -> usize {
        if quick {
            return 1;
        }
        match kind {
            WorkloadKind::Resnet20Cifar10 => 3,
            WorkloadKind::Vgg11Cifar100 => 6,
            _ => 8,
        }
    };
    let kinds: &[WorkloadKind] = if quick {
        &[WorkloadKind::Vgg5Cifar10, WorkloadKind::CustomNetNmnist]
    } else {
        &WorkloadKind::TABLE1
    };
    report.line("Table I (scaled): test accuracy on synthetic data".to_string());
    report.line(format!(
        "{:<20} {:>10} {:>12} {:>14} {:>12} {:>8}",
        "workload", "baseline", "checkpointed", "skipper", "TBPTT", "chance"
    ));
    let mut rows = Vec::new();
    for &kind in kinds {
        let epochs = epochs_for(kind);
        let probe = Workload::build(kind);
        let t = probe.timesteps;
        let methods = [
            Method::Bptt,
            Method::Checkpointed {
                checkpoints: probe.checkpoints,
            },
            Method::Skipper {
                checkpoints: probe.checkpoints,
                percentile: probe.percentile,
            },
            Method::Tbptt { window: probe.trw },
        ];
        let mut accs = Vec::new();
        for method in &methods {
            let w = Workload::build(kind);
            method.validate(&w.net, t).expect("valid method");
            let mut session = TrainSession::builder(w.net, method.clone(), t)
                .optimizer(Box::new(Adam::new(2e-3)))
                .build()
                .expect("valid method");
            let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 42);
            accs.push(r.final_val_acc());
        }
        let chance = 1.0 / probe.train.num_classes() as f64;
        report.line(format!(
            "{:<20} {:>9.1}% {:>11.1}% {:>8.1}% (p={:.0}) {:>11.1}% {:>7.1}%",
            probe.name,
            100.0 * accs[0],
            100.0 * accs[1],
            100.0 * accs[2],
            probe.percentile,
            100.0 * accs[3],
            100.0 * chance,
        ));
        rows.push(serde_json::json!({
            "workload": probe.name,
            "baseline": accs[0],
            "checkpointed": accs[1],
            "skipper": accs[2],
            "tbptt": accs[3],
            "checkpoints": probe.checkpoints,
            "percentile": probe.percentile,
            "trw": probe.trw,
            "timesteps": t,
        }));
    }
    report.json("rows", rows);
    report.blank();
    report.line("Expected shape (paper Table I): checkpointed == baseline;");
    report.line("skipper within noise of baseline even at high p; TBPTT");
    report.line("competitive on shallow nets, weaker on the deep ones.");
    report.save();
}
