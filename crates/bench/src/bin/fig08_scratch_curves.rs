//! Paper Fig. 8: training and validation accuracy vs epochs when training
//! the LeNet SNN on DVS-Gesture *from scratch* under baseline, plain
//! checkpointing, and Skipper.
//!
//! Expected shape: all three regimes converge together; Skipper does not
//! slow or destabilise learning.

use skipper_bench::{fit, quick_mode, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig08_scratch_curves");
    let mut report = Report::new("fig08_scratch_curves");
    let epochs = if quick_mode() { 2 } else { 8 };
    let probe = Workload::build(WorkloadKind::LenetDvsGesture);
    let c = probe.checkpoints;
    let p = probe.percentile;
    let methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: c },
        Method::Skipper {
            checkpoints: c,
            percentile: p,
        },
    ];
    report.line(format!(
        "LeNet on synthetic DVS-gesture from scratch, T={}, B={}, {} epochs",
        probe.timesteps, probe.batch, epochs
    ));
    for method in methods {
        let w = Workload::build(WorkloadKind::LenetDvsGesture);
        let mut session = TrainSession::builder(w.net, method.clone(), w.timesteps)
            .optimizer(Box::new(Adam::new(2e-3)))
            .build()
            .expect("valid method");
        let r = fit(&mut session, &w.train, &w.test, epochs, w.batch, 7);
        report.blank();
        report.line(format!("-- {} --", method.label()));
        report.line(format!("{:>7} {:>10} {:>10}", "epoch", "train", "val"));
        for e in 0..epochs {
            report.line(format!(
                "{e:>7} {:>9.1}% {:>9.1}%",
                100.0 * r.train_acc[e],
                100.0 * r.val_acc[e]
            ));
        }
        report.json(
            method.label(),
            serde_json::json!({
                "train": r.train_acc,
                "val": r.val_acc,
                "skipped_steps": r.skipped,
            }),
        );
    }
    report.blank();
    report.line("Expected shape (paper Fig. 8): the three curves overlap — skipper");
    report.line("converges like baseline while skipping low-activity timesteps.");
    report.save();
}
