//! A narrated walkthrough of the paper's Figs. 5 and 6: the exact
//! step-by-step execution of checkpointed and time-skipped training on a
//! tiny SNN with `T = 20`, `C = 2` — the same configuration the figures
//! illustrate.
//!
//! Run it to see, with real numbers, what happens in each phase: which
//! timesteps are checkpointed, what the SAM records, where the SST lands,
//! which steps are skipped, and how much tape memory each segment holds.

use skipper_bench::{Report, Workload, WorkloadKind};
use skipper_core::{percentile, Method, TrainSession};
use skipper_memprof::{
    downsample, enable_event_log, sparkline, take_events, timeline_from_events, Category,
};
use skipper_snn::Adam;
use skipper_tensor::XorShiftRng;

fn main() {
    let _run = skipper_bench::BenchRun::start("walkthrough");
    let mut report = Report::new("walkthrough");
    let t = 20usize;
    let c = 2usize;
    let p = 50.0f32;
    let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
    let mut rng = XorShiftRng::new(3);
    let (inputs, labels) = w.train.first_batch(4, t, &mut rng);

    report.line(format!(
        "Walkthrough of paper Figs. 5/6 on {} (T={t}, C={c}, p={p})",
        w.name
    ));
    report.line("segments: [0,10) and [10,20); checkpoints taken at t=0 and t=10".to_string());

    // ---- Fig. 5: plain checkpointing ----
    report.blank();
    report.line("== Fig. 5 — activation checkpointing ==");
    report.line("Step 1   forward pass, no grad; save state at t=0 and t=10");
    report.line("Step 2/3 rebuild segment [10,20) on a tape; backprop; free it");
    report.line("Step 4/5 rebuild segment [0,10); seed dL/dU from step 3; backprop");
    {
        let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
        let mut session = TrainSession::builder(w.net, Method::Checkpointed { checkpoints: c }, t)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build()
            .expect("valid method");
        let _ = session.train_batch(&inputs, &labels); // warm-up
        enable_event_log();
        let stats = session.train_batch(&inputs, &labels);
        let tl = timeline_from_events(&take_events());
        report.line(format!(
            "observed: {} steps recomputed, peak activations {} KiB",
            stats.recomputed_steps,
            stats.mem.peak(Category::Activations) / 1024
        ));
        report.line("activation memory over the iteration (two humps = two segments):".to_string());
        report.line(format!(
            "  {}",
            sparkline(&downsample(&tl, 64), Category::Activations)
        ));
    }

    // ---- Fig. 6: skipper ----
    report.blank();
    report.line("== Fig. 6 — checkpointing with time-skipping ==");
    {
        let w = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
        let mut session = TrainSession::builder(
            w.net,
            Method::Skipper {
                checkpoints: c,
                percentile: p,
            },
            t,
        )
        .optimizer(Box::new(Adam::new(1e-3)))
        .build()
        .expect("valid method");
        let stats = session.train_batch(&inputs, &labels);
        // Reconstruct the SAM trace by re-running the first forward pass.
        let w2 = Workload::build_for_measurement(WorkloadKind::CustomNetNmnist);
        let mut state = w2.net.init_state(4);
        let mut sums = Vec::with_capacity(t);
        for (ti, input) in inputs.iter().enumerate() {
            let out = w2
                .net
                .step_infer(input, &mut state, &skipper_snn::StepCtx::eval(ti));
            sums.push(out.spike_sum);
        }
        report.line("Step 1: first forward pass records the SAM trace s_t:");
        report.line(format!(
            "  s = [{}]",
            sums.iter()
                .map(|s| format!("{s:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for (seg, range) in [(1usize, 0..10usize), (2, 10..20)] {
            let sst = percentile(&sums[range.clone()], p);
            let skipped: Vec<usize> = range.clone().filter(|&ti| sums[ti] < sst).collect();
            report.line(format!(
                "Step 2 (segment {seg}): SST = percentile(s[{}..{}], {p}) = {sst:.0}",
                range.start, range.end
            ));
            report.line(format!(
                "  → skip t ∈ {skipped:?} (s_t < SST); recompute the rest"
            ));
        }
        report.line(format!(
            "observed: {} skipped, {} recomputed, peak activations {} KiB",
            stats.skipped_steps,
            stats.recomputed_steps,
            stats.mem.peak(Category::Activations) / 1024
        ));
    }
    report.blank();
    report.line("The skipped timesteps never enter the second-pass tape, which is");
    report.line("why skipper's humps are lower and its backward pass shorter.");
    report.save();
}
