//! Paper Fig. 10: computational overhead of checkpointing, Skipper and
//! TBPTT relative to baseline BPTT, vs batch size, for the four sweep
//! workloads.
//!
//! Expected shape: plain checkpointing sits ~+30 % above baseline;
//! Skipper goes *below* baseline (negative overhead, down to −40 % in the
//! paper); TBPTT is also below baseline but pays for it in accuracy
//! (Table I).

use skipper_bench::{measure, quick_mode, MeasureConfig, Report, Workload, WorkloadKind};
use skipper_core::{Method, TrainSession};
use skipper_memprof::DeviceModel;
use skipper_snn::Adam;

fn main() {
    let _run = skipper_bench::BenchRun::start("fig10_overhead_vs_batch");
    let mut report = Report::new("fig10_overhead_vs_batch");
    let device = DeviceModel::a100_80gb();
    let kinds: &[WorkloadKind] = if quick_mode() {
        &[WorkloadKind::Vgg5Cifar10]
    } else {
        &WorkloadKind::SWEEPS
    };
    for &kind in kinds {
        let probe = Workload::build_for_measurement(kind);
        let t = probe.timesteps;
        let batches: Vec<usize> = if quick_mode() {
            vec![4]
        } else {
            vec![2, 4, 8, 16]
        };
        let methods = [
            Method::Checkpointed {
                checkpoints: probe.checkpoints,
            },
            Method::Skipper {
                checkpoints: probe.checkpoints,
                percentile: probe.percentile,
            },
            Method::Tbptt { window: probe.trw },
        ];
        report.line(format!(
            "== {} — modeled time overhead vs baseline (T={t}) ==",
            probe.name
        ));
        let mut header = format!("{:>6}", "B");
        for m in &methods {
            header += &format!(" {:>16}", m.label());
        }
        report.line(header);
        let mut series = Vec::new();
        for &b in &batches {
            let mcfg = MeasureConfig {
                iterations: 2,
                warmup: 1,
                batch: b,
                timesteps: t,
            };
            let base = {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, Method::Bptt, t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                measure(&mut s, &w.train, &mcfg, &device).modeled_s
            };
            let mut row = format!("{b:>6}");
            let mut entry = serde_json::Map::new();
            entry.insert("batch".into(), serde_json::json!(b));
            for m in &methods {
                let w = Workload::build_for_measurement(kind);
                let mut s = TrainSession::builder(w.net, m.clone(), t)
                    .optimizer(Box::new(Adam::new(1e-3)))
                    .build()
                    .expect("valid method");
                let time = measure(&mut s, &w.train, &mcfg, &device).modeled_s;
                let overhead = 100.0 * (time - base) / base;
                row += &format!(" {overhead:>+15.1}%");
                entry.insert(m.label(), serde_json::json!(overhead / 100.0));
            }
            report.line(row);
            series.push(serde_json::Value::Object(entry));
        }
        report.json(probe.name, series);
        report.blank();
    }
    report.line("Expected shape (paper Fig. 10): checkpointing ~+30%; skipper");
    report.line("negative overhead (faster than baseline); TBPTT also fast.");
    report.save();
}
