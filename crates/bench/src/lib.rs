//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every table and figure of the paper's evaluation (Section VII) has a
//! binary under `src/bin/` that regenerates its rows/series at laptop
//! scale. This library holds what they share:
//!
//! * [`workloads`] — the paper's five workload pairings (network x
//!   dataset) at scaled width/resolution, with the paper's original
//!   parameters attached for reference;
//! * [`measure`](fn@measure) — run a [`TrainSession`] for a few instrumented
//!   iterations and collect exactly what the paper measures (wall time,
//!   modeled device time, per-category peak tensor bytes, caching
//!   allocator statistics, overall device occupancy);
//! * [`report`] — uniform text + JSON output into `results/`.
//!
//! [`TrainSession`]: skipper_core::TrainSession

pub mod harness;
pub mod measure;
pub mod report;
pub mod train;
pub mod workloads;

pub use harness::BenchRun;
pub use measure::{human_bytes, measure, DataSource, MeasureConfig, Measurement};
pub use report::Report;
pub use train::{evaluate, fit, quick_mode, FitResult};
pub use workloads::{paper_methods, Workload, WorkloadKind};
