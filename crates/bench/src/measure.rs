//! Instrumented measurement of training iterations.

use skipper_core::{BatchStats, TrainSession};
use skipper_data::{event_batch, BatchIter, EventDataset, ImageDataset};
use skipper_memprof::{
    enable_event_log, reset_peaks, take_events, AllocStats, CachingAllocator, Category,
    DeviceModel, LatencyModel,
};
use skipper_snn::{Encoder, PoissonEncoder};
use skipper_tensor::{Tensor, XorShiftRng};

/// A dataset wrapped for uniform spike-batch production.
pub enum DataSource {
    /// Frame data, Poisson rate-encoded on the fly.
    Images {
        /// The frames.
        dataset: ImageDataset,
        /// The encoder applied per batch.
        encoder: PoissonEncoder,
    },
    /// Event data, binned into polarity frames.
    Events(EventDataset),
}

impl DataSource {
    /// Wrap frames with the default Poisson encoder.
    pub fn images(dataset: ImageDataset) -> DataSource {
        DataSource::Images {
            dataset,
            encoder: PoissonEncoder::default(),
        }
    }

    /// Wrap event streams.
    pub fn events(dataset: EventDataset) -> DataSource {
        DataSource::Events(dataset)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        match self {
            DataSource::Images { dataset, .. } => dataset.len(),
            DataSource::Events(d) => d.len(),
        }
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        match self {
            DataSource::Images { dataset, .. } => dataset.num_classes(),
            DataSource::Events(d) => d.num_classes(),
        }
    }

    /// Spike sequence + labels for the samples at `indices`.
    pub fn batch(
        &self,
        indices: &[usize],
        timesteps: usize,
        rng: &mut XorShiftRng,
    ) -> (Vec<Tensor>, Vec<usize>) {
        match self {
            DataSource::Images { dataset, encoder } => {
                let (frames, labels) = dataset.batch(indices);
                (encoder.encode(&frames, timesteps, rng), labels)
            }
            DataSource::Events(d) => event_batch(d, indices, timesteps),
        }
    }

    /// A batch of the first `batch_size` samples wrapped for quick
    /// measurement loops (cycling when the dataset is small).
    pub fn first_batch(
        &self,
        batch_size: usize,
        timesteps: usize,
        rng: &mut XorShiftRng,
    ) -> (Vec<Tensor>, Vec<usize>) {
        let indices: Vec<usize> = (0..batch_size).map(|i| i % self.len()).collect();
        self.batch(&indices, timesteps, rng)
    }

    /// Shuffled epoch iterator.
    pub fn epoch(&self, batch_size: usize, seed: u64) -> BatchIter {
        BatchIter::new_drop_last(self.len(), batch_size, seed)
    }
}

/// How to measure.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Instrumented iterations (after warm-up).
    pub iterations: usize,
    /// Warm-up iterations (excluded from the averages; lets allocator and
    /// parameter state settle, like the paper's "after a warm start").
    pub warmup: usize,
    /// Batch size.
    pub batch: usize,
    /// Simulation horizon.
    pub timesteps: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            iterations: 3,
            warmup: 1,
            batch: 8,
            timesteps: 20,
        }
    }
}

/// What one measurement run produced (means over the instrumented
/// iterations; peaks are maxima).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mean wall-clock seconds per iteration (real CPU execution).
    pub wall_s: f64,
    /// Mean modeled device seconds per iteration.
    pub modeled_s: f64,
    /// Peak coincident tensor bytes.
    pub tensor_peak: u64,
    /// Peak bytes per category.
    pub peaks: Vec<(Category, u64)>,
    /// Caching-allocator statistics over the instrumented window.
    pub alloc: AllocStats,
    /// `nvidia-smi`-style overall bytes: context + reserved.
    pub overall_bytes: u64,
    /// Mean loss.
    pub loss: f64,
    /// Mean accuracy over the instrumented iterations.
    pub accuracy: f64,
    /// Total timesteps skipped.
    pub skipped: usize,
    /// Total timesteps recomputed.
    pub recomputed: usize,
    /// Mean kernel FLOPs per iteration.
    pub flops: f64,
}

impl Measurement {
    /// Peak bytes of one category.
    pub fn peak(&self, category: Category) -> u64 {
        self.peaks
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }
}

/// Run `cfg.warmup + cfg.iterations` training iterations of `session` on
/// repeated batches from `source`, measuring under `device`'s latency and
/// context models.
pub fn measure(
    session: &mut TrainSession,
    source: &DataSource,
    cfg: &MeasureConfig,
    device: &DeviceModel,
) -> Measurement {
    let latency = LatencyModel::new(device.clone());
    let mut rng = XorShiftRng::new(0xBEEF);
    // Warm-up (not instrumented).
    for _ in 0..cfg.warmup {
        let (inputs, labels) = source.first_batch(cfg.batch, cfg.timesteps, &mut rng);
        let _ = session.train_batch(&inputs, &labels);
    }
    reset_peaks();
    enable_event_log();
    let mut batches: Vec<BatchStats> = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let (inputs, labels) = source.first_batch(cfg.batch, cfg.timesteps, &mut rng);
        batches.push(session.train_batch(&inputs, &labels));
    }
    let events = take_events();
    let alloc = CachingAllocator::replay(&events);
    let n = cfg.iterations as f64;
    let snap = batches
        .last()
        .map(|b| b.mem)
        .expect("at least one iteration");
    // Persistent bytes (weights, grads, optimizer) + per-iteration peak
    // reserve drive the nvidia-smi number.
    let overall = device.overall_bytes(alloc.reserved);
    Measurement {
        wall_s: batches.iter().map(|b| b.wall.as_secs_f64()).sum::<f64>() / n,
        modeled_s: batches
            .iter()
            .map(|b| b.modeled_time_s(&latency))
            .sum::<f64>()
            / n,
        tensor_peak: batches.iter().map(|b| b.peak_bytes()).max().unwrap_or(0),
        peaks: Category::ALL.iter().map(|&c| (c, snap.peak(c))).collect(),
        alloc,
        overall_bytes: overall,
        loss: batches.iter().map(|b| b.loss).sum::<f64>() / n,
        accuracy: batches.iter().map(|b| b.accuracy()).sum::<f64>() / n,
        skipped: batches.iter().map(|b| b.skipped_steps).sum(),
        recomputed: batches.iter().map(|b| b.recomputed_steps).sum(),
        flops: batches.iter().map(|b| b.ops.total_flops()).sum::<f64>() / n,
    }
}

/// Format bytes as MiB/GiB with sensible precision.
pub fn human_bytes(bytes: u64) -> String {
    let gib = bytes as f64 / (1u64 << 30) as f64;
    if gib >= 1.0 {
        format!("{gib:.2} GiB")
    } else {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Workload, WorkloadKind};
    use skipper_core::Method;
    use skipper_snn::Adam;

    #[test]
    fn measure_produces_consistent_numbers() {
        let w = Workload::build(WorkloadKind::CustomNetNmnist);
        let mut session =
            skipper_core::TrainSession::builder(w.net, Method::Checkpointed { checkpoints: 3 }, 12)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
        let cfg = MeasureConfig {
            iterations: 2,
            warmup: 1,
            batch: 4,
            timesteps: 12,
        };
        let m = measure(&mut session, &w.train, &cfg, &DeviceModel::a100_80gb());
        assert!(m.wall_s > 0.0);
        assert!(m.modeled_s > 0.0);
        assert!(m.tensor_peak > 0);
        assert!(m.alloc.reserved >= m.alloc.peak_allocated);
        assert!(m.overall_bytes > m.alloc.reserved);
        assert!(m.peak(Category::Activations) > 0);
        assert!(m.flops > 0.0);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512 << 20), "512.0 MiB");
        assert_eq!(human_bytes(3 << 30), "3.00 GiB");
    }
}
