//! The paper's workload pairings (Table I) at laptop scale.
//!
//! Each [`Workload`] builds the paper's topology (layer counts intact, so
//! `T/L_n` and Eq. 7 behave as in the paper) at reduced width/resolution,
//! together with the matching synthetic dataset. The paper's original
//! `T`, `C`, `p` and `trW` are kept as metadata; the scaled defaults are
//! chosen so one benchmark iteration takes milliseconds, not minutes.

use skipper_data::{
    synth_cifar, synth_dvs_gesture, synth_nmnist, SynthEventConfig, SynthImageConfig,
};
use skipper_snn::{
    alexnet, custom_net, lenet5, resnet20, vgg11, vgg5, LifConfig, ModelConfig, SpikingNetwork,
};

use crate::measure::DataSource;
use skipper_core::Method;

/// Which of the paper's five (+ AlexNet) pairings to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// VGG5 + CIFAR-10 (paper: T=100, B=128, C=4, p=70, trW=25).
    Vgg5Cifar10,
    /// VGG11 + CIFAR-100 (paper: T=125, B=128, C=5, p=50, trW=25).
    Vgg11Cifar100,
    /// ResNet20 + CIFAR-10 (paper: T=250, B=128, C=5, p=52, trW=50).
    Resnet20Cifar10,
    /// LeNet + DVS-Gesture (paper: T=400, B=32, C=10, p=70, trW=40).
    LenetDvsGesture,
    /// custom-Net + N-MNIST (paper: T=300, B=256, C=4, p=70).
    CustomNetNmnist,
    /// AlexNet + CIFAR-10 (Table II / Fig. 16; paper T=20/50).
    AlexnetCifar10,
}

impl WorkloadKind {
    /// All five Table I workloads (AlexNet excluded; it belongs to the
    /// TBPTT-LBP comparison).
    pub const TABLE1: [WorkloadKind; 5] = [
        WorkloadKind::Vgg5Cifar10,
        WorkloadKind::Vgg11Cifar100,
        WorkloadKind::Resnet20Cifar10,
        WorkloadKind::LenetDvsGesture,
        WorkloadKind::CustomNetNmnist,
    ];

    /// The four workloads used by the batch/checkpoint sweeps
    /// (Figs. 7, 10–13).
    pub const SWEEPS: [WorkloadKind; 4] = [
        WorkloadKind::Vgg5Cifar10,
        WorkloadKind::Vgg11Cifar100,
        WorkloadKind::Resnet20Cifar10,
        WorkloadKind::LenetDvsGesture,
    ];
}

/// The paper's parameters for a workload, kept for reference/reporting.
#[derive(Debug, Clone, Copy)]
pub struct PaperParams {
    /// Simulation horizon in the paper.
    pub timesteps: usize,
    /// Batch size in the paper.
    pub batch: usize,
    /// Checkpoint count in Table I.
    pub checkpoints: usize,
    /// Skip percentile in Table I.
    pub percentile: f32,
    /// TBPTT truncation window in Table I (0 = not reported).
    pub trw: usize,
}

/// A network + dataset pairing ready to benchmark.
pub struct Workload {
    /// Short name matching the paper ("VGG5+CIFAR10", …).
    pub name: &'static str,
    /// The spiking network (scaled width).
    pub net: SpikingNetwork,
    /// The synthetic dataset, wrapped for uniform batching.
    pub train: DataSource,
    /// Held-out split.
    pub test: DataSource,
    /// Scaled default horizon used by the benches.
    pub timesteps: usize,
    /// Scaled default batch size.
    pub batch: usize,
    /// Scaled default checkpoint count.
    pub checkpoints: usize,
    /// Scaled default skip percentile.
    pub percentile: f32,
    /// Scaled default truncation window.
    pub trw: usize,
    /// The paper's original parameters.
    pub paper: PaperParams,
}

impl Workload {
    /// Build a workload at the default laptop scale.
    pub fn build(kind: WorkloadKind) -> Workload {
        Workload::build_scaled(kind, 1.0)
    }

    /// Build with an extra multiplier on the default width (sweeps that
    /// need something even smaller/larger).
    pub fn build_scaled(kind: WorkloadKind, extra_width: f32) -> Workload {
        let mut w = Workload::build_uncalibrated(kind, extra_width);
        // The paper's hybrid recipe (Section VII, ref. [37]): frame-based
        // SNNs are pre-initialised from an ANN trained on the same data,
        // then converted (threshold balancing, Diehl et al. [18]) and
        // fine-tuned as SNNs. Event-based workloads (DVS-Gesture, N-MNIST)
        // are trained from scratch, exactly as in the paper — calibration
        // alone revives their sparse-input activity.
        if let DataSource::Images { dataset, .. } = &w.train {
            let mut opt = skipper_snn::Adam::new(5e-3);
            for epoch in 0..3u64 {
                for idx in skipper_data::BatchIter::new_drop_last(dataset.len(), 16, epoch) {
                    let (frames, labels) = dataset.batch(&idx);
                    skipper_snn::ann_train_batch(&mut w.net, &mut opt, &frames, &labels);
                }
            }
        }
        let mut rng = skipper_tensor::XorShiftRng::new(0xCA11B);
        let (inputs, _) = w
            .train
            .first_batch(8.min(w.train.len()), w.timesteps, &mut rng);
        let _ = skipper_snn::calibrate_thresholds(&mut w.net, &inputs, 0.08);
        w
    }

    /// Build without the hybrid ANN pre-training and threshold calibration
    /// — raw Kaiming initialisation, for ablations and cost measurements
    /// that must not pay the pre-training time.
    pub fn build_raw(kind: WorkloadKind) -> Workload {
        Workload::build_uncalibrated(kind, 1.0)
    }

    /// Build for memory/time measurement: thresholds are calibrated (so
    /// spike activity — and therefore kernel sparsity — is realistic) but
    /// the ANN pre-training is skipped (weight values do not affect the
    /// cost measurements).
    pub fn build_for_measurement(kind: WorkloadKind) -> Workload {
        let mut w = Workload::build_uncalibrated(kind, 1.0);
        let mut rng = skipper_tensor::XorShiftRng::new(0xCA11B);
        let (inputs, _) = w
            .train
            .first_batch(8.min(w.train.len()), w.timesteps, &mut rng);
        let _ = skipper_snn::calibrate_thresholds(&mut w.net, &inputs, 0.08);
        w
    }

    fn build_uncalibrated(kind: WorkloadKind, extra_width: f32) -> Workload {
        let image_cfg = |hw: usize, classes: usize| SynthImageConfig {
            hw,
            num_classes: classes,
            train_per_class: (480 / classes.max(8)).max(16),
            test_per_class: (120 / classes.max(8)).max(4),
            ..SynthImageConfig::default()
        };
        let event_cfg = |hw: usize| SynthEventConfig {
            hw,
            train_per_class: 8,
            test_per_class: 2,
            ..SynthEventConfig::default()
        };
        let model = |hw: usize, in_ch: usize, classes: usize, width: f32| ModelConfig {
            input_hw: hw,
            in_channels: in_ch,
            num_classes: classes,
            width_mult: width * extra_width,
            lif: LifConfig::default(),
            ..ModelConfig::default()
        };
        match kind {
            WorkloadKind::Vgg5Cifar10 => {
                let (train, test) = synth_cifar(&image_cfg(16, 10));
                Workload {
                    name: "VGG5+CIFAR10",
                    net: vgg5(&model(16, 3, 10, 0.25)),
                    train: DataSource::images(train),
                    test: DataSource::images(test),
                    timesteps: 40,
                    batch: 8,
                    checkpoints: 2,
                    percentile: 70.0,
                    trw: 10,
                    paper: PaperParams {
                        timesteps: 100,
                        batch: 128,
                        checkpoints: 4,
                        percentile: 70.0,
                        trw: 25,
                    },
                }
            }
            WorkloadKind::Vgg11Cifar100 => {
                // 20 classes on a deep stack from scratch is the hardest
                // scaled workload; keep the class patterns crisp (no shift,
                // low noise) so few-epoch training is meaningful.
                let (train, test) = synth_cifar(&SynthImageConfig {
                    noise: 0.04,
                    max_shift: 0,
                    ..image_cfg(16, 20)
                });
                Workload {
                    name: "VGG11+CIFAR100",
                    net: vgg11(&model(16, 3, 20, 0.25)),
                    train: DataSource::images(train),
                    test: DataSource::images(test),
                    timesteps: 44,
                    batch: 8,
                    checkpoints: 2,
                    percentile: 50.0,
                    trw: 11,
                    paper: PaperParams {
                        timesteps: 125,
                        batch: 128,
                        checkpoints: 5,
                        percentile: 50.0,
                        trw: 25,
                    },
                }
            }
            WorkloadKind::Resnet20Cifar10 => {
                let (train, test) = synth_cifar(&image_cfg(16, 10));
                Workload {
                    name: "ResNet20+CIFAR10",
                    net: resnet20(&model(16, 3, 10, 0.25)),
                    train: DataSource::images(train),
                    test: DataSource::images(test),
                    timesteps: 60,
                    batch: 4,
                    checkpoints: 2,
                    percentile: 30.0,
                    trw: 12,
                    paper: PaperParams {
                        timesteps: 250,
                        batch: 128,
                        checkpoints: 5,
                        percentile: 52.0,
                        trw: 50,
                    },
                }
            }
            WorkloadKind::LenetDvsGesture => {
                let (train, test) = synth_dvs_gesture(&event_cfg(16));
                Workload {
                    name: "LeNet+DVS-gesture",
                    net: lenet5(&model(16, 2, 11, 0.25)),
                    train: DataSource::events(train),
                    test: DataSource::events(test),
                    timesteps: 40,
                    batch: 4,
                    checkpoints: 4,
                    percentile: 50.0,
                    trw: 8,
                    paper: PaperParams {
                        timesteps: 400,
                        batch: 32,
                        checkpoints: 10,
                        percentile: 70.0,
                        trw: 40,
                    },
                }
            }
            WorkloadKind::CustomNetNmnist => {
                let (train, test) = synth_nmnist(&event_cfg(16));
                Workload {
                    name: "custom-Net+N-MNIST",
                    net: custom_net(&model(16, 2, 10, 0.25)),
                    train: DataSource::events(train),
                    test: DataSource::events(test),
                    timesteps: 30,
                    batch: 8,
                    checkpoints: 3,
                    percentile: 70.0,
                    trw: 6,
                    paper: PaperParams {
                        timesteps: 300,
                        batch: 256,
                        checkpoints: 4,
                        percentile: 70.0,
                        trw: 0,
                    },
                }
            }
            WorkloadKind::AlexnetCifar10 => {
                let (train, test) = synth_cifar(&image_cfg(16, 10));
                Workload {
                    name: "AlexNet+CIFAR10",
                    net: alexnet(&model(16, 3, 10, 0.0625)),
                    train: DataSource::images(train),
                    test: DataSource::images(test),
                    timesteps: 20,
                    batch: 8,
                    checkpoints: 2,
                    percentile: 20.0,
                    trw: 10,
                    paper: PaperParams {
                        timesteps: 20,
                        batch: 256,
                        checkpoints: 2,
                        percentile: 20.0,
                        trw: 10,
                    },
                }
            }
        }
    }

    /// The four methods the paper compares on this workload, at the scaled
    /// defaults.
    pub fn methods(&self) -> Vec<Method> {
        paper_methods(self.checkpoints, self.percentile, self.trw)
    }
}

/// Baseline, checkpointed, skipper and TBPTT with the given parameters.
pub fn paper_methods(checkpoints: usize, percentile: f32, trw: usize) -> Vec<Method> {
    vec![
        Method::Bptt,
        Method::Checkpointed { checkpoints },
        Method::Skipper {
            checkpoints,
            percentile,
        },
        Method::Tbptt { window: trw },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_validate() {
        for kind in WorkloadKind::TABLE1 {
            let w = Workload::build(kind);
            assert!(!w.train.is_empty(), "{}", w.name);
            assert!(!w.test.is_empty());
            assert_eq!(w.net.num_classes(), w.train.num_classes());
            for m in w.methods() {
                m.validate(&w.net, w.timesteps)
                    .unwrap_or_else(|e| panic!("{} {m}: {e}", w.name));
            }
        }
    }

    #[test]
    fn alexnet_matches_paper_t20() {
        let w = Workload::build(WorkloadKind::AlexnetCifar10);
        assert_eq!(w.timesteps, w.paper.timesteps);
        assert_eq!(w.net.spiking_layer_count(), 7);
    }

    #[test]
    fn scaled_horizons_preserve_t_over_l_ordering() {
        // VGG5 has a higher T/L_n than VGG11, which has the lowest —
        // the property the paper uses to explain skip headroom.
        let ratio = |k: WorkloadKind| {
            let w = Workload::build(k);
            w.timesteps as f32 / w.net.spiking_layer_count() as f32
        };
        assert!(ratio(WorkloadKind::Vgg5Cifar10) > ratio(WorkloadKind::Vgg11Cifar100));
        assert!(ratio(WorkloadKind::Resnet20Cifar10) < ratio(WorkloadKind::Vgg5Cifar10));
    }
}
