//! Uniform reporting: print to stdout and persist under `results/`.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// A figure/table report being assembled.
#[derive(Debug, Default)]
pub struct Report {
    name: String,
    lines: Vec<String>,
    json: serde_json::Map<String, serde_json::Value>,
}

impl Report {
    /// Start a report for `<name>` (e.g. `"fig07"`); output lands in
    /// `results/<name>.txt` and `results/<name>.json`.
    pub fn new(name: impl Into<String>) -> Report {
        Report {
            name: name.into(),
            lines: Vec::new(),
            json: serde_json::Map::new(),
        }
    }

    /// Append (and echo) one line of the text report.
    pub fn line(&mut self, text: impl Into<String>) {
        let text = text.into();
        println!("{text}");
        self.lines.push(text);
    }

    /// Blank separator line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Attach a JSON value under `key` (series data for plotting).
    pub fn json(&mut self, key: impl Into<String>, value: impl Serialize) {
        let v = serde_json::to_value(value).expect("serializable report value");
        self.json.insert(key.into(), v);
    }

    /// Directory the reports are written to (created on demand):
    /// `results/` next to the workspace root, or the current directory's
    /// `results/` when run elsewhere.
    fn results_dir() -> PathBuf {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = here
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or(here);
        root.join("results")
    }

    /// Write both artifacts and report their paths.
    pub fn save(&self) {
        let dir = Self::results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let txt = dir.join(format!("{}.txt", self.name));
        let json = dir.join(format!("{}.json", self.name));
        if let Err(e) = fs::write(&txt, self.lines.join("\n") + "\n") {
            eprintln!("warning: cannot write {}: {e}", txt.display());
        }
        let value = serde_json::Value::Object(self.json.clone());
        if let Err(e) = fs::write(&json, serde_json::to_string_pretty(&value).unwrap()) {
            eprintln!("warning: cannot write {}: {e}", json.display());
        }
        println!("\n[saved {} and {}]", txt.display(), json.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_saves() {
        let mut r = Report::new("unit_test_report");
        r.line("hello");
        r.json("series", vec![1, 2, 3]);
        r.save();
        let dir = Report::results_dir();
        let txt = std::fs::read_to_string(dir.join("unit_test_report.txt")).unwrap();
        assert!(txt.contains("hello"));
        let json: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(dir.join("unit_test_report.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(json["series"][2], 3);
        let _ = std::fs::remove_file(dir.join("unit_test_report.txt"));
        let _ = std::fs::remove_file(dir.join("unit_test_report.json"));
    }
}
