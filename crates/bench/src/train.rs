//! Epoch-level training helper for the accuracy benches (Table I,
//! Figs. 8/9, Table II, Fig. 16).

use crate::measure::DataSource;
use skipper_core::{EpochStats, TrainSession};
use skipper_tensor::XorShiftRng;

/// Accuracy trajectory of a training run.
#[derive(Debug, Clone, Default)]
pub struct FitResult {
    /// Training accuracy per epoch.
    pub train_acc: Vec<f64>,
    /// Held-out accuracy per epoch.
    pub val_acc: Vec<f64>,
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Total wall time of the run, seconds.
    pub wall_s: f64,
    /// Total timesteps skipped across the run.
    pub skipped: usize,
}

impl FitResult {
    /// Final held-out accuracy.
    pub fn final_val_acc(&self) -> f64 {
        self.val_acc.last().copied().unwrap_or(0.0)
    }
}

/// Held-out accuracy of `session` on `data`.
pub fn evaluate(session: &TrainSession, data: &DataSource, batch: usize, seed: u64) -> f64 {
    let timesteps = session.timesteps();
    let mut rng = XorShiftRng::new(seed);
    let (mut correct, mut total) = (0usize, 0usize);
    for idx in data.epoch(batch, 0) {
        let (inputs, labels) = data.batch(&idx, timesteps, &mut rng);
        correct += session.eval_batch(&inputs, &labels).correct;
        total += labels.len();
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Train for `epochs` epochs, evaluating on `test` after each.
pub fn fit(
    session: &mut TrainSession,
    train: &DataSource,
    test: &DataSource,
    epochs: usize,
    batch: usize,
    seed: u64,
) -> FitResult {
    let timesteps = session.timesteps();
    let mut result = FitResult::default();
    for epoch in 0..epochs {
        let epoch_span = skipper_obs::span!("epoch", epoch = epoch, of = epochs);
        let mut rng = XorShiftRng::new(seed ^ ((epoch as u64 + 1) * 0x9E37));
        let mut stats = EpochStats::default();
        for idx in train.epoch(batch, seed.wrapping_add(epoch as u64)) {
            let (inputs, labels) = train.batch(&idx, timesteps, &mut rng);
            stats.absorb(&session.train_batch(&inputs, &labels), None);
        }
        result.train_acc.push(stats.accuracy());
        result.train_loss.push(stats.mean_loss());
        result.wall_s += stats.wall.as_secs_f64();
        result.skipped += stats.skipped_steps;
        {
            let _eval = skipper_obs::span!("evaluate", epoch = epoch);
            result.val_acc.push(evaluate(session, test, batch, 99));
        }
        drop(epoch_span);
        skipper_obs::instant!(
            skipper_obs::Level::Info,
            "epoch.done",
            epoch = epoch,
            train_acc = result.train_acc[epoch],
            val_acc = result.val_acc[epoch],
            mean_loss = result.train_loss[epoch],
        );
    }
    result
}

/// `--quick` on the command line shrinks a sweep for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Workload, WorkloadKind};
    use skipper_core::Method;
    use skipper_snn::Adam;

    #[test]
    fn fit_improves_over_random_on_custom_net() {
        let w = Workload::build(WorkloadKind::CustomNetNmnist);
        let chance = 1.0 / w.train.num_classes() as f64;
        let mut session = TrainSession::builder(
            w.net,
            Method::Skipper {
                checkpoints: 3,
                percentile: 40.0,
            },
            w.timesteps,
        )
        .optimizer(Box::new(Adam::new(2e-3)))
        .build()
        .expect("valid method");
        let r = fit(&mut session, &w.train, &w.test, 3, w.batch, 1);
        assert_eq!(r.train_acc.len(), 3);
        assert!(
            r.final_val_acc() > 1.5 * chance,
            "val acc {:.3} should beat chance {:.3}",
            r.final_val_acc(),
            chance
        );
        assert!(r.skipped > 0);
    }
}
