//! Criterion benchmarks of one full training iteration per method — the
//! end-to-end costs behind Figs. 7 and 10: checkpointing should cost ~4/3
//! of baseline, Skipper less than baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipper_core::{Method, TrainSession};
use skipper_snn::{custom_net, ModelConfig, Sgd};
use skipper_tensor::{Tensor, XorShiftRng};

fn iteration_bench(c: &mut Criterion) {
    let timesteps = 24usize;
    let mut rng = XorShiftRng::new(5);
    let inputs: Vec<Tensor> = (0..timesteps)
        .map(|_| Tensor::rand([4, 3, 12, 12], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect();
    let labels = vec![0usize, 1, 2, 3];
    let methods = [
        ("bptt", Method::Bptt),
        ("checkpointed_c4", Method::Checkpointed { checkpoints: 4 }),
        (
            "skipper_c4_p50",
            Method::Skipper {
                checkpoints: 4,
                percentile: 50.0,
            },
        ),
        ("tbptt_w6", Method::Tbptt { window: 6 }),
        (
            "tbptt_lbp_w6",
            Method::TbpttLbp {
                window: 6,
                taps: vec![1, 2],
            },
        ),
    ];
    let mut group = c.benchmark_group("train_iteration_customnet_t24_b4");
    group.sample_size(10);
    for (name, method) in methods {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let net = custom_net(&ModelConfig {
                input_hw: 12,
                width_mult: 0.25,
                ..ModelConfig::default()
            });
            let mut session = TrainSession::builder(net, method.clone(), timesteps)
                .optimizer(Box::new(Sgd::new(1e-4)))
                .build()
                .expect("valid method");
            b.iter(|| session.train_batch(&inputs, &labels));
        });
    }
    group.finish();
}

criterion_group!(trainers, iteration_bench);
criterion_main!(trainers);
