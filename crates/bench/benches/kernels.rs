//! Criterion micro-benchmarks of the compute substrate: the kernels whose
//! cost model feeds the paper-shape latency projections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipper_snn::{lif_step_infer, Encoder, LifConfig, PoissonEncoder};
use skipper_tensor::{avg_pool2d, conv2d, matmul, Conv2dSpec, Tensor, XorShiftRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = XorShiftRng::new(1);
    for n in [32usize, 64, 128] {
        let a = Tensor::randn([n, n], &mut rng);
        let b = Tensor::randn([n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_3x3_pad1");
    let mut rng = XorShiftRng::new(2);
    for (b, ch, hw) in [(4usize, 8usize, 16usize), (8, 16, 16), (8, 32, 32)] {
        let input = Tensor::randn([b, ch, hw, hw], &mut rng);
        let weight = Tensor::randn([ch, ch, 3, 3], &mut rng);
        let id = format!("b{b}_c{ch}_{hw}x{hw}");
        group.bench_function(BenchmarkId::from_parameter(id), |bch| {
            bch.iter(|| conv2d(&input, &weight, None, Conv2dSpec::padded(1)))
        });
    }
    group.finish();
}

fn bench_pool_and_lif(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(3);
    let x = Tensor::randn([8, 32, 16, 16], &mut rng);
    c.bench_function("avg_pool2d_2x2", |b| b.iter(|| avg_pool2d(&x, 2)));

    let cfg = LifConfig::default();
    let current = Tensor::randn([8, 32, 16, 16], &mut rng);
    let mem = Tensor::randn([8, 32, 16, 16], &mut rng);
    let prev = Tensor::rand([8, 32, 16, 16], &mut rng).map(|v| (v > 0.8) as i32 as f32);
    c.bench_function("lif_step_infer_64k_neurons", |b| {
        b.iter(|| lif_step_infer(&cfg, &current, &mem, &prev))
    });
}

fn bench_poisson_encode(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(4);
    let frames = Tensor::rand([8, 3, 16, 16], &mut rng);
    let encoder = PoissonEncoder::default();
    c.bench_function("poisson_encode_T16", |b| {
        b.iter(|| encoder.encode(&frames, 16, &mut rng))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv2d, bench_pool_and_lif, bench_poisson_encode
}
criterion_main!(kernels);
