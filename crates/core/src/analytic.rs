//! The analytic memory model (paper Eqs. 3 and 6).
//!
//! The paper extrapolates baseline memory beyond the 80 GiB of an A100
//! (the patterned bars of Fig. 14) and reports ResNet34/ImageNet
//! breakdowns that no single GPU can hold (Fig. 4). This module computes
//! the same quantities from shapes alone:
//!
//! ```text
//! A            = per-timestep taped activation bytes   (exact, from the
//!                network's node inventory — validated against the real
//!                tape in the integration tests)
//! S            = neuron state bytes (U and o of every layer)
//! BPTT         ≈ T·A
//! Checkpointed ≈ (T/C)·A + C·S           (Eq. 3)
//! Skipper      ≈ (1 − p/100)·(T/C)·A + C·S    (Eq. 6)
//! TBPTT        ≈ trW·A + S
//! ```
//!
//! plus the method-independent weights / gradients / optimizer-moment /
//! input terms of the Fig. 3(c,d) breakdown.

use crate::method::Method;
use serde::{Deserialize, Serialize};
use skipper_snn::SpikingNetwork;

/// Per-category byte estimate for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyticBreakdown {
    /// Peak activation bytes (tape + checkpoint/boundary state).
    pub activations: u64,
    /// Encoded input sequence bytes (`T·B·C·H·W·4`).
    pub input: u64,
    /// Trainable parameter bytes.
    pub weights: u64,
    /// Weight-gradient accumulator bytes.
    pub weight_grads: u64,
    /// Optimizer moment bytes (Adam: `2x` weights).
    pub optimizer: u64,
}

impl AnalyticBreakdown {
    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.activations + self.input + self.weights + self.weight_grads + self.optimizer
    }

    /// Activation share of the total (the paper's 60–95 % headline).
    pub fn activation_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.activations as f64 / self.total() as f64
    }
}

/// Shape-only memory model of training `net`.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticModel<'a> {
    net: &'a SpikingNetwork,
}

impl<'a> AnalyticModel<'a> {
    /// Model for `net`.
    pub fn new(net: &'a SpikingNetwork) -> AnalyticModel<'a> {
        AnalyticModel { net }
    }

    /// Exact bytes appended to a tape by one timestep at batch size `b`.
    pub fn per_step_bytes(&self, batch: usize) -> u64 {
        self.net.per_step_graph_elems_per_sample() * batch as u64 * 4
    }

    /// Bytes of one full neuron-state snapshot `(U, o)` at batch size `b`.
    pub fn state_bytes(&self, batch: usize) -> u64 {
        self.net.state_elems_per_sample() * batch as u64 * 4
    }

    /// Peak activation bytes for `method` over `timesteps` at batch `b`.
    pub fn activation_bytes(&self, method: &Method, timesteps: usize, batch: usize) -> u64 {
        let a = self.per_step_bytes(batch);
        let s = self.state_bytes(batch);
        match method {
            Method::Bptt => timesteps as u64 * a,
            Method::Checkpointed { checkpoints } => {
                let seg = timesteps.div_ceil(*checkpoints) as u64;
                seg * a + *checkpoints as u64 * s
            }
            Method::Skipper {
                checkpoints,
                percentile,
            } => {
                let seg = timesteps.div_ceil(*checkpoints) as f64;
                let kept = (seg * (1.0 - *percentile as f64 / 100.0)).ceil() as u64;
                kept * a + *checkpoints as u64 * s
            }
            Method::Tbptt { window } | Method::TbpttLbp { window, .. } => (*window as u64) * a + s,
        }
    }

    /// Encoded input bytes for the whole horizon.
    pub fn input_bytes(&self, timesteps: usize, batch: usize) -> u64 {
        let per: usize = self.net.input_shape().iter().product();
        (timesteps * batch * per * 4) as u64
    }

    /// Trainable parameter bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.net.param_scalars() * 4
    }

    /// Full per-category breakdown (Adam optimizer assumed, as in the
    /// paper: moments are `2x` the weights).
    pub fn breakdown(&self, method: &Method, timesteps: usize, batch: usize) -> AnalyticBreakdown {
        let weights = self.weight_bytes();
        AnalyticBreakdown {
            activations: self.activation_bytes(method, timesteps, batch),
            input: self.input_bytes(timesteps, batch),
            weights,
            weight_grads: weights,
            optimizer: 2 * weights,
        }
    }

    /// The `C` that minimises checkpointed activation memory; the paper's
    /// `C = √T` rule falls out when state ≈ per-step cost.
    pub fn best_checkpoint_count(&self, timesteps: usize, batch: usize) -> usize {
        let mut best = (u64::MAX, 1usize);
        for c in 1..=timesteps {
            let bytes =
                self.activation_bytes(&Method::Checkpointed { checkpoints: c }, timesteps, batch);
            if bytes < best.0 {
                best = (bytes, c);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, vgg5, ModelConfig};

    fn net() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    }

    #[test]
    fn bptt_memory_linear_in_t() {
        let n = net();
        let m = AnalyticModel::new(&n);
        let a10 = m.activation_bytes(&Method::Bptt, 10, 4);
        let a20 = m.activation_bytes(&Method::Bptt, 20, 4);
        assert_eq!(a20, 2 * a10);
    }

    #[test]
    fn checkpointing_is_sublinear_and_u_shaped() {
        let n = net();
        let m = AnalyticModel::new(&n);
        let t = 100;
        let base = m.activation_bytes(&Method::Bptt, t, 4);
        let c10 = m.activation_bytes(&Method::Checkpointed { checkpoints: 10 }, t, 4);
        assert!(c10 * 4 < base, "C=10 must save ≥4x at T=100");
        // U-shape: too few and too many checkpoints both cost more than
        // the optimum.
        let best = m.best_checkpoint_count(t, 4);
        let at = |c: usize| m.activation_bytes(&Method::Checkpointed { checkpoints: c }, t, 4);
        assert!(at(best) <= at(1));
        assert!(at(best) <= at(t));
        assert!(best > 1 && best < t, "optimum strictly interior: {best}");
    }

    #[test]
    fn skipper_saves_beyond_checkpointing() {
        let n = net();
        let m = AnalyticModel::new(&n);
        let plain = m.activation_bytes(&Method::Checkpointed { checkpoints: 5 }, 100, 4);
        let skip = m.activation_bytes(
            &Method::Skipper {
                checkpoints: 5,
                percentile: 50.0,
            },
            100,
            4,
        );
        assert!(skip < plain);
        assert!(skip * 2 > plain, "p=50 roughly halves the tape share");
    }

    #[test]
    fn breakdown_totals_and_activation_dominance() {
        let cfg = ModelConfig {
            input_hw: 16,
            width_mult: 0.5,
            ..ModelConfig::default()
        };
        let n = vgg5(&cfg);
        let m = AnalyticModel::new(&n);
        let b = m.breakdown(&Method::Bptt, 100, 32);
        assert_eq!(
            b.total(),
            b.activations + b.input + b.weights + b.weight_grads + b.optimizer
        );
        assert!(
            b.activation_fraction() > 0.6,
            "activations dominate at T=100, B=32: {}",
            b.activation_fraction()
        );
        assert_eq!(b.optimizer, 2 * b.weights);
    }

    #[test]
    fn tbptt_memory_tracks_window() {
        let n = net();
        let m = AnalyticModel::new(&n);
        let w5 = m.activation_bytes(&Method::Tbptt { window: 5 }, 100, 4);
        let w10 = m.activation_bytes(&Method::Tbptt { window: 10 }, 100, 4);
        assert!(w10 > w5);
        assert!(w10 < 2 * w5 + m.state_bytes(4) * 2);
    }
}
