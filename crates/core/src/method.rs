//! Training-method selection and the paper's validity constraints.

use crate::sam::{max_checkpoints, max_skippable_percentile};
use serde::{Deserialize, Serialize};
use skipper_snn::SpikingNetwork;
use std::fmt;

/// Which training regime to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Baseline SNN-BPTT: full graph over all timesteps.
    Bptt,
    /// Temporal activation checkpointing with `checkpoints` segments.
    Checkpointed {
        /// `C`: number of checkpoints / time segments.
        checkpoints: usize,
    },
    /// Checkpointing + time-skipping (the paper's contribution).
    Skipper {
        /// `C`: number of checkpoints / time segments.
        checkpoints: usize,
        /// `p`: percentile of timesteps skipped per segment (0–100).
        percentile: f32,
    },
    /// Truncated BPTT with windows of `window` timesteps.
    Tbptt {
        /// `trW`: truncation window length.
        window: usize,
    },
    /// TBPTT with locally supervised blocks (Guo et al. \[28\]).
    TbpttLbp {
        /// `trW`: truncation window length.
        window: usize,
        /// Module indices after which gradients are cut and a local
        /// classifier attached (ascending, exclusive upper bounds).
        taps: Vec<usize>,
    },
}

/// Why a method configuration is invalid for a given network and horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodError {
    /// `C` must satisfy `1 ≤ C ≤ T` and each segment must be non-empty.
    BadCheckpointCount {
        /// Offending `C`.
        checkpoints: usize,
        /// Horizon.
        timesteps: usize,
    },
    /// Section V-A: `T/C ≥ L_n` so information reaches every layer within
    /// a segment.
    SegmentShorterThanDepth {
        /// Segment length `T/C`.
        segment: usize,
        /// Spiking depth `L_n`.
        layers: usize,
    },
    /// Eq. 7: `(1 − p/100)·T/C ≥ L_n`.
    TooManySkips {
        /// Requested percentile.
        percentile: f32,
        /// The Eq. 7 bound for this configuration.
        max_percentile: f32,
    },
    /// Percentile must lie in `[0, 100)`.
    BadPercentile {
        /// Offending value.
        percentile: f32,
    },
    /// Window must satisfy `1 ≤ trW ≤ T`.
    BadWindow {
        /// Offending window.
        window: usize,
        /// Horizon.
        timesteps: usize,
    },
    /// Taps must be ascending and inside the module list.
    BadTaps,
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodError::BadCheckpointCount {
                checkpoints,
                timesteps,
            } => write!(
                f,
                "invalid checkpoint count {checkpoints} for T={timesteps}"
            ),
            MethodError::SegmentShorterThanDepth { segment, layers } => write!(
                f,
                "segment length {segment} is shorter than the spiking depth {layers}"
            ),
            MethodError::TooManySkips {
                percentile,
                max_percentile,
            } => write!(
                f,
                "skip percentile {percentile} exceeds the Eq. 7 bound {max_percentile:.1}"
            ),
            MethodError::BadPercentile { percentile } => {
                write!(f, "percentile {percentile} outside [0, 100)")
            }
            MethodError::BadWindow { window, timesteps } => {
                write!(f, "invalid truncation window {window} for T={timesteps}")
            }
            MethodError::BadTaps => write!(f, "taps must be ascending module indices"),
        }
    }
}

impl std::error::Error for MethodError {}

impl Method {
    /// Short label used in tables and figures (e.g. `"C=5 & p=52"`).
    pub fn label(&self) -> String {
        match self {
            Method::Bptt => "baseline".to_owned(),
            Method::Checkpointed { checkpoints } => format!("C={checkpoints}"),
            Method::Skipper {
                checkpoints,
                percentile,
            } => format!("C={checkpoints} & p={percentile:.0}"),
            Method::Tbptt { window } => format!("trW={window}"),
            Method::TbpttLbp { window, .. } => format!("LBP trW={window}"),
        }
    }

    /// Check the paper's validity constraints for training `net` over
    /// `timesteps`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see [`MethodError`]).
    pub fn validate(&self, net: &SpikingNetwork, timesteps: usize) -> Result<(), MethodError> {
        let layers = net.spiking_layer_count();
        match self {
            Method::Bptt => Ok(()),
            Method::Checkpointed { checkpoints } => {
                Self::validate_segments(*checkpoints, timesteps, layers)
            }
            Method::Skipper {
                checkpoints,
                percentile,
            } => {
                Self::validate_segments(*checkpoints, timesteps, layers)?;
                if !(0.0..100.0).contains(percentile) {
                    return Err(MethodError::BadPercentile {
                        percentile: *percentile,
                    });
                }
                let bound = max_skippable_percentile(timesteps, *checkpoints, layers);
                if *percentile > bound {
                    return Err(MethodError::TooManySkips {
                        percentile: *percentile,
                        max_percentile: bound,
                    });
                }
                Ok(())
            }
            Method::Tbptt { window } => {
                if *window == 0 || *window > timesteps {
                    Err(MethodError::BadWindow {
                        window: *window,
                        timesteps,
                    })
                } else {
                    Ok(())
                }
            }
            Method::TbpttLbp { window, taps } => {
                if *window == 0 || *window > timesteps {
                    return Err(MethodError::BadWindow {
                        window: *window,
                        timesteps,
                    });
                }
                let modules = net.modules().len();
                let ascending = taps.windows(2).all(|w| w[0] < w[1]);
                if taps.is_empty() || !ascending || taps.iter().any(|&t| t == 0 || t >= modules) {
                    return Err(MethodError::BadTaps);
                }
                Ok(())
            }
        }
    }

    /// The structural subset of [`Method::validate`]: only the conditions
    /// that would make a training step panic outright (zero or oversized
    /// `C`/`trW`, a percentile outside `[0, 100)`, malformed taps).
    ///
    /// The paper's *semantic* bounds — Section V-A's `T/C ≥ L_n` and
    /// Eq. 7's skip limit — are deliberately not checked here: a
    /// configuration that violates them still executes (the gradients are
    /// merely degraded), and the edge-case suite exercises exactly that.
    /// [`crate::SessionBuilder::build`] applies the full check up front;
    /// this one guards `try_train_batch` at runtime.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint.
    pub fn validate_structure(
        &self,
        net: &SpikingNetwork,
        timesteps: usize,
    ) -> Result<(), MethodError> {
        match self {
            Method::Bptt => Ok(()),
            Method::Checkpointed { checkpoints } | Method::Skipper { checkpoints, .. } => {
                if *checkpoints == 0 || *checkpoints > timesteps {
                    return Err(MethodError::BadCheckpointCount {
                        checkpoints: *checkpoints,
                        timesteps,
                    });
                }
                if let Method::Skipper { percentile, .. } = self {
                    if !(0.0..100.0).contains(percentile) {
                        return Err(MethodError::BadPercentile {
                            percentile: *percentile,
                        });
                    }
                }
                Ok(())
            }
            Method::Tbptt { window } => {
                if *window == 0 || *window > timesteps {
                    Err(MethodError::BadWindow {
                        window: *window,
                        timesteps,
                    })
                } else {
                    Ok(())
                }
            }
            Method::TbpttLbp { window, taps } => {
                if *window == 0 || *window > timesteps {
                    return Err(MethodError::BadWindow {
                        window: *window,
                        timesteps,
                    });
                }
                let modules = net.modules().len();
                let ascending = taps.windows(2).all(|w| w[0] < w[1]);
                if taps.is_empty() || !ascending || taps.iter().any(|&t| t == 0 || t >= modules) {
                    return Err(MethodError::BadTaps);
                }
                Ok(())
            }
        }
    }

    fn validate_segments(
        checkpoints: usize,
        timesteps: usize,
        layers: usize,
    ) -> Result<(), MethodError> {
        if checkpoints == 0 || checkpoints > timesteps {
            return Err(MethodError::BadCheckpointCount {
                checkpoints,
                timesteps,
            });
        }
        if checkpoints > max_checkpoints(timesteps, layers) {
            return Err(MethodError::SegmentShorterThanDepth {
                segment: timesteps / checkpoints,
                layers,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Segment boundaries for `C` checkpoints over `T` timesteps:
/// `C + 1` values `0 = b_0 < b_1 < … < b_C = T` with near-equal spacing.
///
/// # Panics
///
/// Panics if `checkpoints` is zero or exceeds `timesteps`.
pub fn segment_bounds(timesteps: usize, checkpoints: usize) -> Vec<usize> {
    assert!(
        checkpoints >= 1 && checkpoints <= timesteps,
        "need 1 ≤ C ≤ T"
    );
    (0..=checkpoints)
        .map(|k| k * timesteps / checkpoints)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, ModelConfig};

    fn net() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        }) // L_n = 3
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(Method::Bptt.label(), "baseline");
        assert_eq!(Method::Checkpointed { checkpoints: 5 }.label(), "C=5");
        assert_eq!(
            Method::Skipper {
                checkpoints: 5,
                percentile: 52.0
            }
            .label(),
            "C=5 & p=52"
        );
        assert_eq!(Method::Tbptt { window: 25 }.label(), "trW=25");
    }

    #[test]
    fn checkpoint_bounds_enforced() {
        let n = net();
        assert!(Method::Checkpointed { checkpoints: 4 }
            .validate(&n, 24)
            .is_ok());
        assert!(matches!(
            Method::Checkpointed { checkpoints: 0 }.validate(&n, 24),
            Err(MethodError::BadCheckpointCount { .. })
        ));
        // T/C = 24/12 = 2 < L_n = 3.
        assert!(matches!(
            Method::Checkpointed { checkpoints: 12 }.validate(&n, 24),
            Err(MethodError::SegmentShorterThanDepth { .. })
        ));
    }

    #[test]
    fn eq7_limits_skipping() {
        let n = net(); // L_n = 3
                       // T=24, C=2 → segment 12, bound = (1 − 3/12)·100 = 75 %.
        assert!(Method::Skipper {
            checkpoints: 2,
            percentile: 70.0
        }
        .validate(&n, 24)
        .is_ok());
        assert!(matches!(
            Method::Skipper {
                checkpoints: 2,
                percentile: 80.0
            }
            .validate(&n, 24),
            Err(MethodError::TooManySkips { .. })
        ));
    }

    #[test]
    fn tbptt_window_checked() {
        let n = net();
        assert!(Method::Tbptt { window: 8 }.validate(&n, 24).is_ok());
        assert!(Method::Tbptt { window: 25 }.validate(&n, 24).is_err());
        assert!(Method::Tbptt { window: 0 }.validate(&n, 24).is_err());
    }

    #[test]
    fn lbp_taps_checked() {
        let n = net();
        let ok = Method::TbpttLbp {
            window: 8,
            taps: vec![1, 2],
        };
        assert!(ok.validate(&n, 24).is_ok());
        let bad = Method::TbpttLbp {
            window: 8,
            taps: vec![2, 1],
        };
        assert!(matches!(bad.validate(&n, 24), Err(MethodError::BadTaps)));
    }

    #[test]
    fn structural_check_is_a_strict_subset_of_full_validation() {
        let n = net(); // L_n = 3
                       // Structurally sound but Eq. 7-invalid: C = T (every segment is a
                       // single step, shorter than the depth). Full validation rejects,
                       // the structural check lets it run.
        let c_eq_t = Method::Checkpointed { checkpoints: 24 };
        assert!(c_eq_t.validate(&n, 24).is_err());
        assert!(c_eq_t.validate_structure(&n, 24).is_ok());
        // Structurally broken configs fail both.
        let zero = Method::Checkpointed { checkpoints: 0 };
        assert!(zero.validate(&n, 24).is_err());
        assert!(zero.validate_structure(&n, 24).is_err());
        assert!(matches!(
            Method::Skipper {
                checkpoints: 2,
                percentile: 100.0
            }
            .validate_structure(&n, 24),
            Err(MethodError::BadPercentile { .. })
        ));
        assert!(matches!(
            Method::Tbptt { window: 0 }.validate_structure(&n, 24),
            Err(MethodError::BadWindow { .. })
        ));
    }

    #[test]
    fn segment_bounds_cover_horizon() {
        assert_eq!(segment_bounds(20, 2), vec![0, 10, 20]);
        assert_eq!(segment_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(segment_bounds(5, 5), vec![0, 1, 2, 3, 4, 5]);
    }
}
