//! [`SessionBuilder`]: the one-stop construction path for
//! [`TrainSession`].
//!
//! The session used to be assembled through a bare constructor plus seven
//! post-hoc mutators; the builder replaces that with a single fluent
//! surface whose [`build`](SessionBuilder::build) runs the *full*
//! [`Method`] validity checks (segment arithmetic, Eq. 7's
//! `(1 − p/100)·T/C ≥ L_n` bound, window/tap sanity) up front — a bad
//! configuration fails at construction with a typed
//! [`SkipperError::Method`], not at the first batch.
//!
//! ```
//! use skipper_core::{Method, TrainSession};
//! use skipper_snn::{custom_net, Adam, ModelConfig};
//!
//! let net = custom_net(&ModelConfig { input_hw: 8, width_mult: 0.25, ..ModelConfig::default() });
//! let session = TrainSession::builder(net, Method::Skipper { checkpoints: 2, percentile: 25.0 }, 8)
//!     .optimizer(Box::new(Adam::new(1e-3)))
//!     .workers(1)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(session.workers(), 1);
//! ```

use crate::cluster::Coordinator;
use crate::error::SkipperError;
use crate::method::Method;
use crate::runner::{SentinelConfig, TrainSession};
use crate::sam::{SamMetric, SkipPolicy};
use skipper_snn::{Optimizer, SpikingNetwork};

/// Environment variable consulted for the worker count when
/// [`SessionBuilder::workers`] is not called explicitly (used by CI to
/// exercise the sharded engine across the whole test suite).
pub const WORKERS_ENV: &str = "SKIPPER_WORKERS";

/// Fluent configuration for a [`TrainSession`]; obtain one via
/// [`TrainSession::builder`] and finish with
/// [`build`](SessionBuilder::build).
pub struct SessionBuilder {
    net: SpikingNetwork,
    method: Method,
    timesteps: usize,
    optimizer: Option<Box<dyn Optimizer>>,
    aux_optimizer: Option<Box<dyn Optimizer>>,
    sam_metric: SamMetric,
    skip_policy: SkipPolicy,
    sentinels: Option<SentinelConfig>,
    memory_budget: Option<u64>,
    workers: Option<usize>,
    cluster: Option<Coordinator>,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("net", &self.net.name())
            .field("method", &self.method)
            .field("timesteps", &self.timesteps)
            .field("workers", &self.workers)
            .finish()
    }
}

impl SessionBuilder {
    pub(crate) fn new(net: SpikingNetwork, method: Method, timesteps: usize) -> SessionBuilder {
        SessionBuilder {
            net,
            method,
            timesteps,
            optimizer: None,
            aux_optimizer: None,
            sam_metric: SamMetric::default(),
            skip_policy: SkipPolicy::default(),
            sentinels: None,
            memory_budget: None,
            workers: None,
            cluster: None,
        }
    }

    /// The weight optimizer (default: Adam at `1e-3`).
    pub fn optimizer(mut self, optimizer: Box<dyn Optimizer>) -> SessionBuilder {
        self.optimizer = Some(optimizer);
        self
    }

    /// Optimizer for the auxiliary (LBP) classifiers; without it they are
    /// trained with Adam at the main optimizer's learning rate. Ignored by
    /// methods without auxiliary heads.
    pub fn aux_optimizer(mut self, optimizer: Box<dyn Optimizer>) -> SessionBuilder {
        self.aux_optimizer = Some(optimizer);
        self
    }

    /// The activity statistic Skipper thresholds on (default: the paper's
    /// spike sum).
    pub fn sam_metric(mut self, metric: SamMetric) -> SessionBuilder {
        self.sam_metric = metric;
        self
    }

    /// How Skipper selects the skipped timesteps (default: the paper's
    /// SAM/SST policy).
    pub fn skip_policy(mut self, policy: SkipPolicy) -> SessionBuilder {
        self.skip_policy = policy;
        self
    }

    /// Enable the divergence sentinels from the first iteration.
    pub fn sentinels(mut self, cfg: SentinelConfig) -> SessionBuilder {
        self.sentinels = Some(cfg);
        self
    }

    /// Tensor-memory budget the governor enforces (bytes).
    pub fn memory_budget(mut self, bytes: u64) -> SessionBuilder {
        self.memory_budget = Some(bytes);
        self
    }

    /// Data-parallel worker threads. `1` (the default) runs the unsharded
    /// reference path on the session thread; `n ≥ 2` spawns the sharded
    /// engine, whose results are bit-identical for every `n ≥ 2` (see
    /// [`crate::engine`]). When not called, the `SKIPPER_WORKERS`
    /// environment variable is consulted before falling back to `1`.
    pub fn workers(mut self, workers: usize) -> SessionBuilder {
        self.workers = Some(workers);
        self
    }

    /// Run iterations over a distributed [`Coordinator`] instead of the
    /// in-process engine: shards are dispatched to connected
    /// `skipper-worker` processes (or in-process loopback workers) with
    /// results bit-identical to the local paths (see [`crate::cluster`]).
    /// Overrides [`workers`](SessionBuilder::workers).
    pub fn cluster(mut self, coordinator: Coordinator) -> SessionBuilder {
        self.cluster = Some(coordinator);
        self
    }

    /// Validate the configuration and construct the session.
    ///
    /// # Errors
    ///
    /// [`SkipperError::Method`] if the method fails its full validity
    /// checks for this network and horizon (Eq. 7, `T/C ≥ L_n`, window and
    /// tap sanity); [`SkipperError::Config`] for a zero worker count, or
    /// for a cluster session with a method the transport cannot carry
    /// (TBPTT-LBP's auxiliary classifiers).
    pub fn build(self) -> Result<TrainSession, SkipperError> {
        self.method.validate(&self.net, self.timesteps)?;
        self.assemble()
    }

    /// Construct the session **without** the up-front [`Method`] validity
    /// checks: a structurally runnable but paper-invalid configuration
    /// (e.g. one that violates Eq. 7's skip bound) surfaces its complaint
    /// at the first batch instead of at construction.
    ///
    /// This exists for boundary-condition studies — the edge-case suite
    /// deliberately runs configurations the validator rejects to observe
    /// what the mechanism does there. Everything else should call
    /// [`build`](SessionBuilder::build).
    ///
    /// # Errors
    ///
    /// [`SkipperError::Config`] for a zero worker count or an unsupported
    /// cluster/method combination; worker-pool spawn failures.
    pub fn build_unvalidated(self) -> Result<TrainSession, SkipperError> {
        self.assemble()
    }

    fn assemble(mut self) -> Result<TrainSession, SkipperError> {
        if self.cluster.is_some() && matches!(self.method, Method::TbpttLbp { .. }) {
            return Err(SkipperError::Config(
                "TBPTT-LBP auxiliary classifiers are not supported over a cluster transport".into(),
            ));
        }
        if let Some(cluster) = self.cluster.as_mut() {
            cluster.set_horizon(self.timesteps);
        }
        let workers = match self.workers {
            Some(0) => return Err(SkipperError::Config("workers must be at least 1".into())),
            Some(n) => n,
            None => workers_from_env().unwrap_or(1),
        };
        let optimizer = self
            .optimizer
            .unwrap_or_else(|| Box::new(skipper_snn::Adam::new(1e-3)));
        TrainSession::assemble(
            self.net,
            optimizer,
            self.method,
            self.timesteps,
            self.sam_metric,
            self.skip_policy,
            self.aux_optimizer,
            self.sentinels,
            self.memory_budget,
            workers,
            self.cluster,
        )
    }
}

/// The `SKIPPER_WORKERS` override, if set to a positive integer.
fn workers_from_env() -> Option<usize> {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SkipperError;
    use skipper_snn::{custom_net, Adam, ModelConfig};

    fn net() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    }

    #[test]
    fn build_validates_up_front() {
        // C > T is structurally impossible.
        let err = TrainSession::builder(net(), Method::Checkpointed { checkpoints: 20 }, 8)
            .build()
            .unwrap_err();
        assert!(matches!(err, SkipperError::Method(_)), "{err}");
        // Eq. 7: the percentile leaves fewer steps than the network depth.
        let err = TrainSession::builder(
            net(),
            Method::Skipper {
                checkpoints: 4,
                percentile: 99.0,
            },
            8,
        )
        .build()
        .unwrap_err();
        assert!(matches!(err, SkipperError::Method(_)), "{err}");
    }

    #[test]
    fn build_applies_every_knob() {
        let session = TrainSession::builder(
            net(),
            Method::Skipper {
                checkpoints: 2,
                percentile: 25.0,
            },
            8,
        )
        .optimizer(Box::new(Adam::new(5e-4)))
        .sam_metric(SamMetric::NeuronNormalized)
        .skip_policy(SkipPolicy::Random)
        .sentinels(SentinelConfig::default())
        .memory_budget(1 << 30)
        .workers(2)
        .build()
        .expect("valid configuration");
        assert_eq!(session.workers(), 2);
        assert!((session.learning_rate() - 5e-4).abs() < 1e-9);
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let err = TrainSession::builder(net(), Method::Bptt, 8)
            .workers(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SkipperError::Config(_)), "{err}");
    }
}
