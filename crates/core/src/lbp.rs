//! TBPTT with locally supervised blocks — the TBPTT-LBP baseline of Guo et
//! al. \[28\], compared against in the paper's Table II and Fig. 16.
//!
//! The network is cut at `taps` into gradient-isolated blocks. Within each
//! truncation window, every block runs on its **own** tape: spikes cross
//! block boundaries as detached values (that is the "local" part — no
//! global backpropagation across layers), and each non-final block is
//! supervised by an auxiliary classifier (global-average-pool + linear)
//! attached to its output, while the final block uses the network's own
//! readout. Temporal truncation works exactly as in [`crate::tbptt`].
//!
//! Note the memory character the paper points out: the block tapes are
//! smaller than a full-network tape, but the per-timestep boundary spikes
//! of every window must be materialised, and the local classifiers carry
//! their own (small) weights.

use crate::bptt::{combine_loss_groups, StepResult};
use crate::engine::{GradSink, ShardCtx};
use crate::sam::SpikeActivityMonitor;
use skipper_autograd::Graph;
use skipper_memprof::{Category, CategoryGuard};
use skipper_snn::{
    softmax_cross_entropy_scaled, LinearLayer, ParamBinder, ParamStore, SpikingNetwork, StepCtx,
    TapedState,
};
use skipper_tensor::{Tensor, XorShiftRng};

/// An auxiliary classifier head on one block boundary.
#[derive(Debug, Clone)]
struct AuxHead {
    /// Global-average-pool window (spatial extent), if the block output is
    /// spatial.
    pool: Option<usize>,
    /// The local linear classifier.
    linear: LinearLayer,
}

/// The auxiliary classifiers of a TBPTT-LBP configuration. Persist this
/// across iterations (their weights are trained too) and step its
/// parameter store with the same optimizer type as the main network.
#[derive(Debug)]
pub struct LocalClassifiers {
    taps: Vec<usize>,
    store: ParamStore,
    heads: Vec<AuxHead>,
}

impl LocalClassifiers {
    /// Build one head per tap by probing the block output shapes with a
    /// single dummy sample.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty or not strictly ascending inside the
    /// module list.
    pub fn new(net: &SpikingNetwork, taps: &[usize], num_classes: usize, seed: u64) -> Self {
        assert!(!taps.is_empty(), "need at least one tap");
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(seed);
        let mut heads = Vec::new();
        // Probe block output shapes.
        let mut state = net.init_state(1);
        let mut dims = vec![1usize];
        dims.extend_from_slice(net.input_shape());
        let mut x = Tensor::zeros(dims);
        let ctx = StepCtx::eval(0);
        let mut start = 0usize;
        for (i, &tap) in taps.iter().enumerate() {
            let (out, _, _) = net.step_infer_modules(x, &mut state, &ctx, start..tap);
            let shape = out.shape().dims().to_vec();
            let (pool, features) = match shape.len() {
                4 => {
                    assert_eq!(shape[2], shape[3], "square feature maps expected");
                    (Some(shape[2]), shape[1])
                }
                2 => (None, shape[1]),
                // lint:allow(panic): block outputs are rank-2/rank-3 by construction of the method graph
                other => panic!("unexpected block output rank {other}"),
            };
            let linear = LinearLayer::new(
                &mut store,
                &format!("aux{i}"),
                features,
                num_classes,
                true,
                &mut rng,
            );
            heads.push(AuxHead { pool, linear });
            x = out;
            start = tap;
        }
        LocalClassifiers {
            taps: taps.to_vec(),
            store,
            heads,
        }
    }

    /// The taps this configuration was built for.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// The auxiliary parameters (hand to an optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The auxiliary parameters, read-only.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Extra bytes the local classifiers cost (weights + grads).
    pub fn byte_cost(&self) -> u64 {
        self.store.scalar_count() * 4 * 2
    }

    /// Storage-sharing view for a worker thread (weights are Arc clones;
    /// see [`SpikingNetwork::share`]).
    pub fn share(&self) -> LocalClassifiers {
        LocalClassifiers {
            taps: self.taps.clone(),
            store: self.store.share(),
            heads: self.heads.clone(),
        }
    }
}

/// One TBPTT-LBP iteration.
///
/// # Panics
///
/// Panics if `aux` was built for different taps.
pub(crate) fn lbp_step(
    net: &mut SpikingNetwork,
    aux: &mut LocalClassifiers,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    window: usize,
) -> StepResult {
    let batch = inputs[0].shape()[0];
    lbp_core(
        net,
        aux,
        inputs,
        labels,
        iter_seed,
        window,
        ShardCtx::full(batch),
        &mut GradSink::Direct,
        &mut GradSink::Direct,
    )
}

/// Shard-aware TBPTT-LBP over one slice of the batch. Main-network and
/// auxiliary-classifier gradients flow to separate sinks, mirroring their
/// separate optimizers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lbp_core(
    net: &mut SpikingNetwork,
    aux: &mut LocalClassifiers,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    window: usize,
    shard: ShardCtx,
    sink: &mut GradSink<'_>,
    aux_sink: &mut GradSink<'_>,
) -> StepResult {
    let timesteps = inputs.len();
    let batch = inputs[0].shape()[0];
    let taps = aux.taps.clone();
    let n_modules = net.modules().len();
    // Block ranges: [0, taps[0]), [taps[0], taps[1]), …, [last, n).
    let mut blocks = Vec::with_capacity(taps.len() + 1);
    let mut prev = 0usize;
    for &t in &taps {
        blocks.push(prev..t);
        prev = t;
    }
    blocks.push(prev..n_modules);

    let mut carried = net.init_state(batch);
    let mut sam_sums = vec![0.0f64; timesteps];
    let mut loss_groups: Vec<Vec<f64>> = Vec::new();
    let mut total_logits: Option<Tensor> = None;
    let mut start = 0usize;
    while start < timesteps {
        let end = (start + window).min(timesteps);
        let _win = skipper_obs::span!("lbp_window", start = start, end = end);
        // Per-timestep inputs of the current block (detached values).
        let mut block_inputs: Vec<Tensor> = inputs[start..end].to_vec();
        for (bi, range) in blocks.iter().enumerate() {
            let is_final = bi == blocks.len() - 1;
            let mut g = Graph::new();
            let mut binder = ParamBinder::new(net.params());
            let mut aux_binder = ParamBinder::new(&aux.store);
            let mut tstate = TapedState::from_state(&mut g, &carried, false);
            let mut logit_vars = Vec::with_capacity(end - start);
            let mut outputs: Vec<Tensor> = Vec::with_capacity(end - start);
            for (wi, t) in (start..end).enumerate() {
                let ctx = StepCtx::train_shard(iter_seed, t, shard.batch_offset);
                let xv = g.leaf(block_inputs[wi].clone(), false);
                let (out, logits, ssum) = net.step_taped_modules(
                    &mut g,
                    &mut binder,
                    xv,
                    &mut tstate,
                    &ctx,
                    range.clone(),
                );
                sam_sums[t] += ssum;
                if is_final {
                    // lint:allow(panic): method validation guarantees the final block emits the readout logits
                    logit_vars.push(logits.expect("final block holds the readout"));
                } else {
                    let head = &aux.heads[bi];
                    let flat = match head.pool {
                        Some(k) => {
                            let pooled = g.avg_pool2d(out, k);
                            let features = g.value(pooled).numel() / batch;
                            g.reshape(pooled, [batch, features])
                        }
                        None => out,
                    };
                    logit_vars.push(head.linear.forward_taped(
                        &mut g,
                        &mut aux_binder,
                        &aux.store,
                        flat,
                    ));
                    // Detach: the next block consumes values, not vars.
                    let _cat = CategoryGuard::new(Category::Activations);
                    outputs.push(g.value(out).deep_clone());
                }
            }
            let window_len = logit_vars.len() as f32;
            let mut logits = g.value(logit_vars[0]).clone();
            for &v in &logit_vars[1..] {
                logits.add_assign(g.value(v));
            }
            logits.scale_assign(1.0 / window_len); // time-averaged readout
            let loss = softmax_cross_entropy_scaled(&logits, labels, shard.global_batch);
            let per_step_grad = loss.dlogits.scale(1.0 / window_len);
            for &v in &logit_vars {
                g.seed_grad(v, per_step_grad.clone());
            }
            g.backward();
            sink.harvest(&binder, &mut g, net.params_mut());
            aux_sink.harvest(&aux_binder, &mut g, &mut aux.store);
            carried = tstate.to_state(&g);
            if is_final {
                loss_groups.push(loss.per_sample);
                match total_logits.as_mut() {
                    Some(l) => l.add_assign(&logits),
                    None => total_logits = Some(logits),
                }
            } else {
                block_inputs = outputs;
            }
        }
        start = end;
    }
    // lint:allow(panic): T >= 1 is validated at session build, so at least one window ran
    let total = total_logits.expect("at least one window");
    let correct = total
        .argmax_rows()
        .iter()
        .zip(labels)
        .filter(|(p, l)| *p == *l)
        .count();
    let mut sam = SpikeActivityMonitor::new(timesteps);
    for s in sam_sums {
        sam.record(s);
    }
    StepResult {
        loss: combine_loss_groups(&loss_groups, shard.global_batch),
        correct,
        recomputed_steps: timesteps,
        skipped_steps: 0,
        sam,
        loss_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{alexnet, custom_net, ModelConfig};

    fn setup(seed: u64) -> (SpikingNetwork, Vec<Tensor>, Vec<usize>) {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut rng = XorShiftRng::new(seed);
        let inputs: Vec<Tensor> = (0..8)
            .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        (net, inputs, vec![3, 8])
    }

    #[test]
    fn builds_heads_with_probed_shapes() {
        let (net, _, _) = setup(100);
        // custom-net modules: 3 ConvLif + Flatten + Output → tap after 1, 2.
        let aux = LocalClassifiers::new(&net, &[1, 2], net.num_classes(), 1);
        assert_eq!(aux.heads.len(), 2);
        assert!(aux.byte_cost() > 0);
        assert!(aux.heads[0].pool.is_some(), "conv block output is spatial");
    }

    #[test]
    fn trains_with_local_losses() {
        let (mut net, inputs, labels) = setup(101);
        let mut aux = LocalClassifiers::new(&net, &[1, 2], net.num_classes(), 2);
        let r = lbp_step(&mut net, &mut aux, &inputs, &labels, 3, 4);
        assert!(r.loss.is_finite());
        let main_grads: f64 = net
            .params()
            .iter()
            .map(|p| p.grad().map(|x| x * x).sum())
            .sum();
        let aux_grads: f64 = aux
            .store()
            .iter()
            .map(|p| p.grad().map(|x| x * x).sum())
            .sum();
        assert!(main_grads > 0.0, "main network receives local gradients");
        assert!(aux_grads > 0.0, "aux classifiers receive gradients");
    }

    #[test]
    fn gradients_do_not_cross_blocks() {
        // The first block's conv gradient must be produced by the first
        // aux loss only. Verify by zeroing that aux head's contribution:
        // run with a single tap; gradients of block-0 params must differ
        // from a BPTT run (global) — structural smoke check.
        let (mut a, inputs, labels) = setup(102);
        let (mut b, _, _) = setup(102);
        let mut aux = LocalClassifiers::new(&a, &[2], a.num_classes(), 3);
        let _ = lbp_step(&mut a, &mut aux, &inputs, &labels, 4, 8);
        let _ = crate::bptt::bptt_step(&mut b, &inputs, &labels, 4);
        let first_param_diff = a
            .params()
            .iter()
            .zip(b.params().iter())
            .next()
            .map(|(pa, pb)| pa.grad().max_abs_diff(pb.grad()))
            .unwrap();
        assert!(
            first_param_diff > 1e-9,
            "local gradients must differ from global BPTT"
        );
    }

    #[test]
    fn works_on_alexnet_the_paper_configuration() {
        // Paper: local classifiers at layers 4 and 8 of AlexNet.
        let cfg = ModelConfig {
            input_hw: 16,
            width_mult: 0.0625,
            ..ModelConfig::default()
        };
        let mut net = alexnet(&cfg);
        // Module list: 5 ConvLif, Flatten, 2 LinearLif, Output → taps 2, 5.
        let mut aux = LocalClassifiers::new(&net, &[2, 5], net.num_classes(), 4);
        let mut rng = XorShiftRng::new(103);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::rand([2, 3, 16, 16], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        let r = lbp_step(&mut net, &mut aux, &inputs, &[0, 5], 9, 3);
        assert!(r.loss.is_finite());
    }
}
