//! The fault-tolerance error hierarchy of the training layer.
//!
//! [`SkipperError`] is what every fallible training-session operation
//! returns: snapshot save/restore, divergence handling and the
//! memory-budget governor. It wraps the substrate's typed errors
//! ([`SnnError`], raw I/O) so callers can always match on *why* training
//! could not proceed and decide between retrying, resuming from an older
//! snapshot, or giving up.

use crate::method::MethodError;
use skipper_snn::SnnError;
use std::io;

/// Errors raised by the `skipper-core` training layer.
#[derive(Debug)]
pub enum SkipperError {
    /// A substrate operation (parameter container, optimizer state)
    /// failed.
    Snn(SnnError),
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A session snapshot could not be written, read or applied; the
    /// string says which section and why.
    Snapshot(String),
    /// Training diverged (non-finite loss or exploding gradients) and the
    /// sentinels exhausted their retry budget.
    Divergence {
        /// Iteration at which the last failed attempt ran.
        iteration: u64,
        /// What was detected (NaN loss, gradient norm, …).
        detail: String,
    },
    /// The method configuration violates a paper constraint (Eq. 7,
    /// `T/C ≥ L_n`, bad window/taps/percentile).
    Method(MethodError),
    /// The method configuration is invalid for the session.
    Config(String),
    /// A transport-level failure on a coordinator/worker link: framing
    /// (bad magic, CRC mismatch, truncation), a closed connection, or a
    /// deadline expiring with frames outstanding.
    Transport {
        /// The peer the failing link talks to (address or label).
        peer: String,
        /// What went wrong at the wire level.
        detail: String,
    },
    /// An execution worker was lost — a disconnected/poisoned in-process
    /// pool channel, or a cluster worker that missed its heartbeat
    /// deadline — and the work could not be completed without it.
    WorkerLost {
        /// Which worker (pool index or cluster worker id).
        worker: String,
        /// Why it is considered lost.
        detail: String,
    },
}

impl std::fmt::Display for SkipperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipperError::Snn(e) => write!(f, "{e}"),
            SkipperError::Io(e) => write!(f, "i/o error: {e}"),
            SkipperError::Snapshot(detail) => write!(f, "snapshot error: {detail}"),
            SkipperError::Divergence { iteration, detail } => {
                write!(f, "training diverged at iteration {iteration}: {detail}")
            }
            SkipperError::Method(e) => write!(f, "invalid method: {e}"),
            SkipperError::Config(detail) => write!(f, "invalid configuration: {detail}"),
            SkipperError::Transport { peer, detail } => {
                write!(f, "transport error (peer {peer}): {detail}")
            }
            SkipperError::WorkerLost { worker, detail } => {
                write!(f, "worker {worker} lost: {detail}")
            }
        }
    }
}

impl std::error::Error for SkipperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SkipperError::Snn(e) => Some(e),
            SkipperError::Io(e) => Some(e),
            SkipperError::Method(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnnError> for SkipperError {
    fn from(e: SnnError) -> SkipperError {
        SkipperError::Snn(e)
    }
}

impl From<io::Error> for SkipperError {
    fn from(e: io::Error) -> SkipperError {
        SkipperError::Io(e)
    }
}

impl From<MethodError> for SkipperError {
    fn from(e: MethodError) -> SkipperError {
        SkipperError::Method(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_preserves_detail() {
        let e = SkipperError::from(SnnError::Format("record 2: CRC mismatch".into()));
        assert!(e.to_string().contains("CRC mismatch"));
        let d = SkipperError::Divergence {
            iteration: 17,
            detail: "loss is NaN".into(),
        };
        assert!(d.to_string().contains("iteration 17"), "{d}");
    }
}
