//! Durable training-session snapshots.
//!
//! A snapshot is everything needed to continue training **bit-exactly**
//! after a crash or kill: model parameters, complete optimizer state
//! (Adam moments, step counter, learning rate), the iteration counter that
//! seeds every iteration's randomness, and the last Spike Activity Monitor
//! record. Restoring into a freshly constructed same-topology session and
//! continuing produces the identical loss trajectory the uninterrupted run
//! would have produced.
//!
//! # Container format
//!
//! The `.sksn` container extends the `.skw` v2 conventions
//! (see [`skipper_snn::serialize`]): a magic header (`"SKSNP"` +
//! version), a section count, then named sections — each
//! `name_len | name | payload_len | payload | CRC32(payload)` — and a
//! trailing section count. Torn writes are impossible to observe because
//! [`write_snapshot`] writes to a temporary sibling file and renames it
//! over the target only after a successful flush; torn *reads* (bit rot,
//! truncation) are rejected with a description of the offending section.
//!
//! Sections:
//!
//! | name         | payload                                              |
//! |--------------|------------------------------------------------------|
//! | `meta`       | JSON: iteration, timesteps, method, SAM config/history, optimizer scalars |
//! | `params`     | model parameters, `.skw` v2 records                  |
//! | `optim`      | optimizer state tensors, `.skw` v2 records           |
//! | `aux.params` | auxiliary (LBP) classifier parameters, if any        |
//! | `aux.optim`  | auxiliary optimizer state tensors, if any            |

use crate::error::SkipperError;
use crate::method::Method;
use crate::sam::{SamMetric, SkipPolicy};
use serde::{Deserialize, Serialize};
use skipper_snn::serialize::{crc32, read_params, write_records, ParamRecord};
use skipper_snn::OptimizerState;
use std::io::{self, Read, Write};
use std::path::Path;

/// Snapshot file magic: "SKSNP" + version 1.
const MAGIC: &[u8; 6] = b"SKSNP\x01";

/// Complete restorable training state, decoupled from [`TrainSession`] so
/// harnesses can inspect or rewrite it between save and resume.
///
/// [`TrainSession`]: crate::runner::TrainSession
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Iterations completed (seeds each iteration's randomness).
    pub iteration: u64,
    /// The session horizon `T`.
    pub timesteps: usize,
    /// Training method, including checkpoint/percentile knobs as possibly
    /// adjusted by the memory governor.
    pub method: Method,
    /// Which activity statistic SAM thresholds on.
    pub sam_metric: SamMetric,
    /// How Skipper selects skipped timesteps.
    pub skip_policy: SkipPolicy,
    /// Per-timestep SAM sums of the last completed iteration.
    pub sam_sums: Vec<f64>,
    /// Model parameters.
    pub params: Vec<ParamRecord>,
    /// Main optimizer state.
    pub optim: OptimizerState,
    /// Auxiliary (LBP) classifier parameters and optimizer, if the method
    /// uses them.
    pub aux: Option<(Vec<ParamRecord>, OptimizerState)>,
}

/// The JSON `meta` section.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MetaDoc {
    iteration: u64,
    timesteps: usize,
    method: Method,
    sam_metric: SamMetric,
    skip_policy: SkipPolicy,
    sam_sums: Vec<f64>,
    optim_kind: String,
    optim_scalars: Vec<(String, f64)>,
    aux_kind: Option<String>,
    aux_scalars: Option<Vec<(String, f64)>>,
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_section(w: &mut impl Write, name: &str, payload: &[u8]) -> Result<(), SkipperError> {
    write_u32(w, name.len() as u32)?;
    w.write_all(name.as_bytes())?;
    write_u32(w, payload.len() as u32)?;
    w.write_all(payload)?;
    write_u32(w, crc32(payload))?;
    Ok(())
}

fn read_section(r: &mut impl Read) -> Result<(String, Vec<u8>), SkipperError> {
    let name_len = read_u32(r)? as usize;
    if name_len > 256 {
        return Err(SkipperError::Snapshot(format!(
            "section name implausibly long ({name_len} bytes)"
        )));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|e| SkipperError::Snapshot(format!("section name is not UTF-8: {e}")))?;
    let payload_len = read_u32(r)? as usize;
    if payload_len > 1 << 30 {
        return Err(SkipperError::Snapshot(format!(
            "section '{name}' implausibly large ({payload_len} bytes)"
        )));
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    let stored = read_u32(r)?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(SkipperError::Snapshot(format!(
            "section '{name}': CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok((name, payload))
}

fn records_payload<'a>(
    records: impl IntoIterator<Item = (&'a str, &'a skipper_tensor::Tensor)>,
) -> Result<Vec<u8>, SkipperError> {
    let mut buf = Vec::new();
    write_records(records, &mut buf)?;
    Ok(buf)
}

/// Serialize `state` to `writer`.
///
/// # Errors
///
/// Propagates I/O and encoding errors.
pub fn write_snapshot_to(
    state: &SessionState,
    writer: &mut impl Write,
) -> Result<(), SkipperError> {
    let meta = MetaDoc {
        iteration: state.iteration,
        timesteps: state.timesteps,
        method: state.method.clone(),
        sam_metric: state.sam_metric,
        skip_policy: state.skip_policy,
        sam_sums: state.sam_sums.clone(),
        optim_kind: state.optim.kind.clone(),
        optim_scalars: state.optim.scalars.clone(),
        aux_kind: state.aux.as_ref().map(|(_, o)| o.kind.clone()),
        aux_scalars: state.aux.as_ref().map(|(_, o)| o.scalars.clone()),
    };
    let meta_json = serde_json::to_string(&meta)
        .map_err(|e| SkipperError::Snapshot(format!("encoding meta: {e}")))?;

    let mut sections: Vec<(&str, Vec<u8>)> = vec![
        ("meta", meta_json.into_bytes()),
        (
            "params",
            records_payload(state.params.iter().map(|r| (r.name.as_str(), &r.value)))?,
        ),
        (
            "optim",
            records_payload(state.optim.tensors.iter().map(|(n, t)| (n.as_str(), t)))?,
        ),
    ];
    if let Some((aux_params, aux_optim)) = &state.aux {
        sections.push((
            "aux.params",
            records_payload(aux_params.iter().map(|r| (r.name.as_str(), &r.value)))?,
        ));
        sections.push((
            "aux.optim",
            records_payload(aux_optim.tensors.iter().map(|(n, t)| (n.as_str(), t)))?,
        ));
    }

    writer.write_all(MAGIC)?;
    write_u32(writer, sections.len() as u32)?;
    for (name, payload) in &sections {
        write_section(writer, name, payload)?;
    }
    write_u32(writer, sections.len() as u32)?;
    Ok(())
}

/// Atomically write `state` to the file at `path` (temporary sibling
/// file, then rename), so a crash mid-save can never leave a truncated
/// snapshot where a valid one is expected.
///
/// # Errors
///
/// Propagates I/O and encoding errors.
pub fn write_snapshot(state: &SessionState, path: impl AsRef<Path>) -> Result<(), SkipperError> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".into());
    tmp_name.push_str(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
    write_snapshot_to(state, &mut file)?;
    file.flush()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    skipper_obs::instant!(
        skipper_obs::Level::Info,
        "snapshot.saved",
        path = path.display().to_string(),
        iteration = state.iteration,
    );
    Ok(())
}

/// Deserialize a snapshot from `reader`.
///
/// # Errors
///
/// Fails descriptively on bad magic, truncation, per-section CRC
/// mismatches, a wrong trailing section count, or malformed contents.
pub fn read_snapshot_from(reader: &mut impl Read) -> Result<SessionState, SkipperError> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SkipperError::Snapshot(
            "not a skipper session snapshot (bad magic)".into(),
        ));
    }
    let count = read_u32(reader)? as usize;
    if count > 64 {
        return Err(SkipperError::Snapshot(format!(
            "implausible section count ({count})"
        )));
    }
    let mut sections: Vec<(String, Vec<u8>)> = Vec::with_capacity(count);
    for _ in 0..count {
        sections.push(read_section(reader)?);
    }
    let trailer = read_u32(reader)? as usize;
    if trailer != count {
        return Err(SkipperError::Snapshot(format!(
            "trailing section count {trailer} disagrees with header count {count} (truncated?)"
        )));
    }
    let section = |name: &str| {
        sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SkipperError::Snapshot(format!("missing section '{name}'")))
    };

    let meta_text = std::str::from_utf8(section("meta")?)
        .map_err(|e| SkipperError::Snapshot(format!("meta section is not UTF-8: {e}")))?;
    let meta: MetaDoc = serde_json::from_str(meta_text)
        .map_err(|e| SkipperError::Snapshot(format!("decoding meta: {e}")))?;

    let params = read_params(&mut section("params")?)
        .map_err(|e| SkipperError::Snapshot(format!("section 'params': {e}")))?;
    let optim_tensors = read_params(&mut section("optim")?)
        .map_err(|e| SkipperError::Snapshot(format!("section 'optim': {e}")))?;
    let optim = OptimizerState {
        kind: meta.optim_kind.clone(),
        scalars: meta.optim_scalars.clone(),
        tensors: optim_tensors
            .into_iter()
            .map(|r| (r.name, r.value))
            .collect(),
    };
    let aux = match (&meta.aux_kind, &meta.aux_scalars) {
        (Some(kind), Some(scalars)) => {
            let aux_params = read_params(&mut section("aux.params")?)
                .map_err(|e| SkipperError::Snapshot(format!("section 'aux.params': {e}")))?;
            let aux_tensors = read_params(&mut section("aux.optim")?)
                .map_err(|e| SkipperError::Snapshot(format!("section 'aux.optim': {e}")))?;
            Some((
                aux_params,
                OptimizerState {
                    kind: kind.clone(),
                    scalars: scalars.clone(),
                    tensors: aux_tensors.into_iter().map(|r| (r.name, r.value)).collect(),
                },
            ))
        }
        _ => None,
    };

    Ok(SessionState {
        iteration: meta.iteration,
        timesteps: meta.timesteps,
        method: meta.method,
        sam_metric: meta.sam_metric,
        skip_policy: meta.skip_policy,
        sam_sums: meta.sam_sums,
        params,
        optim,
        aux,
    })
}

/// Read a snapshot from the file at `path`.
///
/// # Errors
///
/// See [`read_snapshot_from`].
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<SessionState, SkipperError> {
    let path = path.as_ref();
    let state = read_snapshot_from(&mut io::BufReader::new(std::fs::File::open(path)?))?;
    skipper_obs::instant!(
        skipper_obs::Level::Info,
        "snapshot.loaded",
        path = path.display().to_string(),
        iteration = state.iteration,
    );
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_tensor::Tensor;

    fn tiny_state() -> SessionState {
        SessionState {
            iteration: 42,
            timesteps: 8,
            method: Method::Skipper {
                checkpoints: 2,
                percentile: 25.0,
            },
            sam_metric: SamMetric::default(),
            skip_policy: SkipPolicy::default(),
            sam_sums: vec![1.5, 0.25, 3.0],
            params: vec![ParamRecord {
                name: "w".into(),
                value: Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]),
            }],
            optim: OptimizerState {
                kind: "adam".into(),
                scalars: vec![("lr".into(), 1e-3), ("t".into(), 42.0)],
                tensors: vec![("m0".into(), Tensor::from_vec(vec![0.1, 0.2, 0.3], [3]))],
            },
            aux: None,
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let state = tiny_state();
        let mut buf = Vec::new();
        write_snapshot_to(&state, &mut buf).unwrap();
        let back = read_snapshot_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.iteration, 42);
        assert_eq!(back.timesteps, 8);
        assert_eq!(back.method, state.method);
        assert_eq!(back.sam_sums, state.sam_sums);
        assert_eq!(back.params[0].value.data(), state.params[0].value.data());
        assert_eq!(back.optim.kind, "adam");
        assert_eq!(back.optim.scalar("t"), Some(42.0));
        assert_eq!(back.optim.tensors[0].1.data(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn corrupt_section_is_rejected_with_name() {
        let mut buf = Vec::new();
        write_snapshot_to(&tiny_state(), &mut buf).unwrap();
        // Flip a bit inside the meta JSON payload.
        let at = 30;
        buf[at] ^= 0x01;
        let err = read_snapshot_from(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut buf = Vec::new();
        write_snapshot_to(&tiny_state(), &mut buf).unwrap();
        for cut in [buf.len() - 1, buf.len() - 4, buf.len() / 2, 10] {
            let mut short = buf.clone();
            short.truncate(cut);
            assert!(
                read_snapshot_from(&mut short.as_slice()).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_snapshot_from(&mut &b"NOTSNAPxxxx"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("skipper_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.sksn");
        write_snapshot(&tiny_state(), &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_file_name("session.sksn.tmp").exists());
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.iteration, 42);
        std::fs::remove_file(&path).unwrap();
    }
}
