//! Measurement records: what the paper plots, per batch and per epoch.

use serde::{Deserialize, Serialize};
use skipper_memprof::{LatencyModel, MemorySnapshot, OpLog};
use std::time::Duration;

/// Everything measured during one training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchStats {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Correct predictions (on the full-forward logits).
    pub correct: usize,
    /// Samples in the batch.
    pub batch_size: usize,
    /// Simulation horizon `T`.
    pub timesteps: usize,
    /// Timesteps whose backward pass actually ran (BPTT: `T`; Skipper:
    /// the recomputed subset).
    pub recomputed_steps: usize,
    /// Timesteps skipped by the SAM/SST mechanism.
    pub skipped_steps: usize,
    /// Divergences the sentinels recovered from on the way to this
    /// (successful) iteration — zero unless sentinels are enabled and a
    /// rollback-and-retry happened.
    pub recoveries: u32,
    /// Wall-clock time of the iteration (real CPU execution).
    pub wall: Duration,
    /// Peak per-category tensor memory during the iteration. On a sharded
    /// run this merges the session thread with the per-worker peaks
    /// (elementwise maximum — a per-thread attribution, not a sum of
    /// concurrent residency).
    pub mem: MemorySnapshot,
    /// Per-worker peak snapshots of a sharded iteration, in worker order
    /// (empty on the unsharded path).
    pub worker_mem: Vec<MemorySnapshot>,
    /// Kernel log of the iteration (drives the GPU latency model).
    pub ops: OpLog,
}

impl BatchStats {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.batch_size == 0 {
            return 0.0;
        }
        self.correct as f64 / self.batch_size as f64
    }

    /// Modeled device time of this iteration under `model`.
    pub fn modeled_time_s(&self, model: &LatencyModel) -> f64 {
        model.time_s(&self.ops)
    }

    /// Peak tensor bytes (all categories, coincident peak).
    pub fn peak_bytes(&self) -> u64 {
        self.mem.total_peak()
    }
}

/// Result of evaluating one batch without gradients (see
/// [`TrainSession::eval_batch`](crate::runner::TrainSession::eval_batch)),
/// mirroring the shape of [`BatchStats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Mean cross-entropy loss over the batch.
    pub loss: f64,
    /// Correct predictions on the time-averaged logits.
    pub correct: usize,
    /// Samples evaluated.
    pub total: usize,
}

impl EvalStats {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }
}

/// Aggregate over the batches of one epoch (or any batch sequence).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochStats {
    /// Batches aggregated.
    pub batches: usize,
    /// Samples aggregated.
    pub samples: usize,
    /// Correct predictions.
    pub correct: usize,
    /// Sum of per-batch mean losses.
    loss_sum: f64,
    /// Total wall time.
    pub wall: Duration,
    /// Total modeled device time in seconds (filled by the caller when a
    /// latency model is in play).
    pub modeled_s: f64,
    /// Maximum per-iteration peak tensor bytes.
    pub peak_bytes: u64,
    /// Total timesteps skipped.
    pub skipped_steps: usize,
    /// Total timesteps recomputed.
    pub recomputed_steps: usize,
    /// Total kernel FLOPs.
    pub flops: f64,
}

impl EpochStats {
    /// Fold one batch into the aggregate, including its modeled time under
    /// `model` if one is given.
    pub fn absorb(&mut self, batch: &BatchStats, model: Option<&LatencyModel>) {
        self.batches += 1;
        self.samples += batch.batch_size;
        self.correct += batch.correct;
        self.loss_sum += batch.loss;
        self.wall += batch.wall;
        self.peak_bytes = self.peak_bytes.max(batch.peak_bytes());
        self.skipped_steps += batch.skipped_steps;
        self.recomputed_steps += batch.recomputed_steps;
        self.flops += batch.ops.total_flops();
        if let Some(m) = model {
            self.modeled_s += batch.modeled_time_s(m);
        }
    }

    /// Mean of the per-batch losses.
    pub fn mean_loss(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.loss_sum / self.batches as f64
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.correct as f64 / self.samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_memprof::{snapshot, DeviceModel};

    fn batch(correct: usize, size: usize, loss: f64) -> BatchStats {
        BatchStats {
            loss,
            correct,
            batch_size: size,
            timesteps: 10,
            recomputed_steps: 10,
            skipped_steps: 0,
            recoveries: 0,
            wall: Duration::from_millis(5),
            mem: snapshot(),
            worker_mem: Vec::new(),
            ops: OpLog::new(),
        }
    }

    #[test]
    fn accuracy_arithmetic() {
        assert_eq!(batch(3, 4, 0.1).accuracy(), 0.75);
        assert_eq!(batch(0, 0, 0.0).accuracy(), 0.0);
    }

    #[test]
    fn epoch_aggregation() {
        let mut e = EpochStats::default();
        e.absorb(&batch(2, 4, 1.0), None);
        e.absorb(&batch(4, 4, 0.5), None);
        assert_eq!(e.batches, 2);
        assert_eq!(e.samples, 8);
        assert_eq!(e.accuracy(), 0.75);
        assert!((e.mean_loss() - 0.75).abs() < 1e-12);
        assert_eq!(e.wall, Duration::from_millis(10));
    }

    #[test]
    fn modeled_time_accumulates_with_model() {
        let model = LatencyModel::new(DeviceModel::a100_80gb());
        let mut e = EpochStats::default();
        let mut b = batch(1, 1, 0.0);
        b.ops.push(skipper_memprof::OpRecord {
            kind: skipper_memprof::OpKind::MatMul,
            flops: 1e9,
            bytes: 1e6,
        });
        e.absorb(&b, Some(&model));
        assert!(e.modeled_s > 0.0);
        assert!(e.flops >= 1e9);
    }
}
