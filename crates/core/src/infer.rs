//! [`InferSession`]: the public forward-only inference API.
//!
//! Training goes through [`TrainSession`](crate::TrainSession), which
//! carries an optimizer, autodiff tapes, SAM history, sentinels and a
//! worker pool — none of which a serving path should pay for. An
//! `InferSession` owns nothing but the network: [`predict`] runs the
//! gradient-free [`step_infer`](skipper_snn::SpikingNetwork::step_infer)
//! loop and time-averages the logits, exactly the arithmetic
//! [`TrainSession::eval_batch`](crate::TrainSession::eval_batch) performs
//! (that method is now implemented on top of this one, and a regression
//! test holds the two paths bit-identical).
//!
//! # Inference-time skipping
//!
//! The paper's lever — skip low-activity timesteps under a per-segment
//! Spike-Sum-Threshold (Eq. 5) — transfers from the backward
//! recomputation to the forward serving path: with [`InferSkip`]
//! configured, the session measures the input spike activity `s_t` of
//! each timestep (inputs are spike trains, so the sum is the batch's
//! spike count at `t`), forms the SST as the `p`-th percentile of the
//! batch's record via the same [`percentile`] the trainer uses, and
//! **early-exits** every timestep below it — `step_infer` is never
//! called, the membrane state simply persists. The logits are averaged
//! over the evaluated steps only. This trades a small accuracy delta for
//! latency; the `serve_loopback` bench measures the reduction.
//!
//! ```
//! use skipper_core::InferSession;
//! use skipper_snn::{custom_net, Encoder, ModelConfig, PoissonEncoder};
//! use skipper_tensor::{Tensor, XorShiftRng};
//!
//! let net = custom_net(&ModelConfig {
//!     input_hw: 8,
//!     width_mult: 0.25,
//!     ..ModelConfig::default()
//! });
//! let session = InferSession::new(net);
//! let mut rng = XorShiftRng::new(1);
//! let frames = Tensor::rand([2, 3, 8, 8], &mut rng);
//! let spikes = PoissonEncoder::default().encode(&frames, 8, &mut rng);
//! let prediction = session.predict(&spikes).expect("well-formed batch");
//! assert_eq!(prediction.classes.len(), 2);
//! assert_eq!(prediction.evaluated_steps, 8);
//! ```
//!
//! [`predict`]: InferSession::predict
//! [`percentile`]: crate::sam::percentile

use crate::error::SkipperError;
use crate::sam::percentile;
use crate::stats::EvalStats;
use skipper_snn::{softmax_cross_entropy, SpikingNetwork, StepCtx};
use skipper_tensor::Tensor;

/// Inference-time skipping knobs; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferSkip {
    /// Skip timesteps whose input spike activity falls below this
    /// percentile of the batch's per-timestep record (the SST, Eq. 5).
    /// `0` disables skipping.
    pub percentile: f32,
    /// Never evaluate fewer than this many timesteps (the readout needs
    /// at least one logit contribution). Clamped to ≥ 1.
    pub min_steps: usize,
}

impl Default for InferSkip {
    fn default() -> InferSkip {
        InferSkip {
            percentile: 0.0,
            min_steps: 1,
        }
    }
}

/// The outcome of one [`InferSession::predict`] call.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Time-averaged logits, `[B, classes]`.
    pub logits: Tensor,
    /// Argmax class per sample.
    pub classes: Vec<usize>,
    /// Timesteps that ran through the network.
    pub evaluated_steps: usize,
    /// Timesteps early-exited by the skipping policy.
    pub skipped_steps: usize,
}

/// A forward-only session over one network: no tape, no optimizer state,
/// no worker pool. `Send + Sync`, so a gateway can share one behind an
/// `Arc` across its batcher and reload threads.
#[derive(Debug)]
pub struct InferSession {
    net: SpikingNetwork,
    skip: Option<InferSkip>,
}

impl InferSession {
    /// Wrap `net` for plain inference (no skipping).
    pub fn new(net: SpikingNetwork) -> InferSession {
        InferSession { net, skip: None }
    }

    /// Enable SAM-driven inference-time skipping. A percentile of `0`
    /// (or negative) keeps every step — [`percentile`] yields `-∞` — so
    /// the default config is exactly [`InferSession::new`].
    pub fn with_skip(mut self, skip: InferSkip) -> InferSession {
        self.skip = Some(skip);
        self
    }

    /// The wrapped network.
    pub fn net(&self) -> &SpikingNetwork {
        &self.net
    }

    /// Load `.skw` weights into the wrapped network (hot reload path).
    ///
    /// # Errors
    ///
    /// Propagates I/O, container and name/shape-mismatch errors from
    /// [`load_params`](skipper_snn::load_params).
    pub fn load_weights(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), SkipperError> {
        skipper_snn::load_params(self.net.params_mut(), path)?;
        Ok(())
    }

    /// Which timesteps to evaluate for this batch: `false` = run,
    /// `true` = skip. Pure function of the input record and the config,
    /// so every replica decides identically.
    fn skip_schedule(&self, inputs: &[Tensor]) -> Vec<bool> {
        let Some(cfg) = &self.skip else {
            return vec![false; inputs.len()];
        };
        if cfg.percentile <= 0.0 {
            return vec![false; inputs.len()];
        }
        // s_t: the batch's input spike count at timestep t (inputs are
        // spike trains; this is the SAM statistic available before the
        // forward pass runs).
        let sums: Vec<f64> = inputs.iter().map(Tensor::sum).collect();
        let sst = percentile(&sums, cfg.percentile);
        let mut skip: Vec<bool> = sums.iter().map(|&s| s < sst).collect();
        // Keep the busiest steps when the threshold would starve the
        // readout below min_steps.
        let min_steps = cfg.min_steps.clamp(1, inputs.len());
        let evaluated = skip.iter().filter(|&&s| !s).count();
        if evaluated < min_steps {
            let mut order: Vec<usize> = (0..inputs.len()).collect();
            order.sort_by(|&a, &b| {
                sums[b]
                    .partial_cmp(&sums[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &t in order.iter().take(min_steps) {
                skip[t] = false;
            }
        }
        skip
    }

    /// Run the batch `inputs` (one `[B, C, H, W]` spike tensor per
    /// timestep) and return time-averaged logits plus argmax classes.
    ///
    /// Without skipping configured this is bit-identical to the
    /// arithmetic of [`TrainSession::eval_batch`]: accumulate each
    /// step's logits, then scale by `1/steps`.
    ///
    /// # Errors
    ///
    /// [`SkipperError::Config`] when the batch is empty, a timestep's
    /// shape disagrees with the network's input shape, or timesteps
    /// disagree on the batch size.
    ///
    /// [`TrainSession::eval_batch`]: crate::TrainSession::eval_batch
    pub fn predict(&self, inputs: &[Tensor]) -> Result<Prediction, SkipperError> {
        let Some(first) = inputs.first() else {
            return Err(SkipperError::Config(
                "predict needs at least one timestep".into(),
            ));
        };
        let want = self.net.input_shape();
        for (t, input) in inputs.iter().enumerate() {
            let shape = input.shape().dims();
            if shape.len() != want.len() + 1 || &shape[1..] != want || shape[0] == 0 {
                return Err(SkipperError::Config(format!(
                    "timestep {t} has shape {shape:?}; expected [B>0, {want:?}]"
                )));
            }
            if shape[0] != first.shape()[0] {
                return Err(SkipperError::Config(format!(
                    "timestep {t} has batch {} but timestep 0 has {}",
                    shape[0],
                    first.shape()[0]
                )));
            }
        }
        let batch = first.shape()[0];
        let schedule = self.skip_schedule(inputs);
        let mut state = self.net.init_state(batch);
        let mut logits: Option<Tensor> = None;
        let mut evaluated = 0usize;
        for (t, input) in inputs.iter().enumerate() {
            if schedule[t] {
                // Early exit: the membrane state persists unchanged, as
                // in the training-path skip (Section VI).
                continue;
            }
            evaluated += 1;
            let out = self.net.step_infer(input, &mut state, &StepCtx::eval(t));
            match logits.as_mut() {
                Some(l) => l.add_assign(&out.logits),
                None => logits = Some(out.logits),
            }
        }
        // lint:allow(panic): skip_schedule keeps ≥ 1 step, so the loop set logits
        let mut logits = logits.expect("at least one evaluated step");
        logits.scale_assign(1.0 / evaluated as f32); // time-averaged readout
        let classes = argmax_rows(&logits);
        Ok(Prediction {
            logits,
            classes,
            evaluated_steps: evaluated,
            skipped_steps: inputs.len() - evaluated,
        })
    }

    /// Predict and score against `labels`: the forward-only path behind
    /// [`TrainSession::eval_batch`].
    ///
    /// # Errors
    ///
    /// Everything [`predict`](InferSession::predict) rejects, plus a
    /// label-count mismatch.
    ///
    /// [`TrainSession::eval_batch`]: crate::TrainSession::eval_batch
    pub fn eval(&self, inputs: &[Tensor], labels: &[usize]) -> Result<EvalStats, SkipperError> {
        let prediction = self.predict(inputs)?;
        if prediction.classes.len() != labels.len() {
            return Err(SkipperError::Config(format!(
                "batch has {} samples but {} labels",
                prediction.classes.len(),
                labels.len()
            )));
        }
        let loss = softmax_cross_entropy(&prediction.logits, labels);
        Ok(EvalStats {
            loss: loss.loss,
            correct: loss.correct,
            total: labels.len(),
        })
    }
}

/// Argmax per row of a `[B, classes]` tensor (first maximum wins,
/// matching the loss layer's correctness count).
fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let classes = logits.shape()[1];
    logits
        .data()
        .chunks_exact(classes)
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, Encoder, ModelConfig, PoissonEncoder};
    use skipper_tensor::XorShiftRng;

    fn net() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    }

    fn spikes(seed: u64, timesteps: usize) -> Vec<Tensor> {
        let mut rng = XorShiftRng::new(seed);
        let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
        PoissonEncoder::default().encode(&frames, timesteps, &mut rng)
    }

    #[test]
    fn predict_returns_classes_and_full_horizon() {
        let session = InferSession::new(net());
        let p = session.predict(&spikes(1, 8)).unwrap();
        assert_eq!(p.logits.shape().dims(), &[4, 10]);
        assert_eq!(p.classes.len(), 4);
        assert!(p.classes.iter().all(|&c| c < 10));
        assert_eq!(p.evaluated_steps, 8);
        assert_eq!(p.skipped_steps, 0);
        // classes really are the argmax of the logits
        for (row, &class) in p.logits.data().chunks_exact(10).zip(&p.classes) {
            assert!(row.iter().all(|&v| v <= row[class]));
        }
    }

    #[test]
    fn malformed_batches_are_typed_errors() {
        let session = InferSession::new(net());
        assert!(matches!(session.predict(&[]), Err(SkipperError::Config(_))));
        // Wrong spatial shape.
        let bad = vec![Tensor::zeros([4, 3, 4, 4])];
        assert!(matches!(
            session.predict(&bad),
            Err(SkipperError::Config(_))
        ));
        // Batch-size disagreement across timesteps.
        let ragged = vec![Tensor::zeros([4, 3, 8, 8]), Tensor::zeros([2, 3, 8, 8])];
        assert!(matches!(
            session.predict(&ragged),
            Err(SkipperError::Config(_))
        ));
        // Mismatched label count.
        assert!(matches!(
            session.eval(&spikes(2, 4), &[0, 1]),
            Err(SkipperError::Config(_))
        ));
    }

    #[test]
    fn skipping_early_exits_low_activity_steps() {
        let inputs = spikes(3, 16);
        let plain = InferSession::new(net());
        let skipping = InferSession::new(net()).with_skip(InferSkip {
            percentile: 50.0,
            min_steps: 1,
        });
        let full = plain.predict(&inputs).unwrap();
        let fast = skipping.predict(&inputs).unwrap();
        assert_eq!(full.evaluated_steps, 16);
        assert!(fast.skipped_steps > 0, "p50 must drop steps");
        assert_eq!(fast.evaluated_steps + fast.skipped_steps, 16);
        // The skipped path still produces a usable readout.
        assert!(fast.logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn min_steps_floor_holds_even_at_p100() {
        let session = InferSession::new(net()).with_skip(InferSkip {
            percentile: 100.0,
            min_steps: 3,
        });
        let p = session.predict(&spikes(4, 8)).unwrap();
        assert!(p.evaluated_steps >= 3, "kept {}", p.evaluated_steps);
    }

    #[test]
    fn zero_percentile_is_bit_identical_to_plain() {
        let inputs = spikes(5, 8);
        let plain = InferSession::new(net()).predict(&inputs).unwrap();
        let zero = InferSession::new(net())
            .with_skip(InferSkip::default())
            .predict(&inputs)
            .unwrap();
        for (a, b) in plain.logits.data().iter().zip(zero.logits.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weights_hot_load_changes_the_readout() {
        let dir = std::env::temp_dir().join(format!("skipper-infer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hot.skw");

        // Train a few steps so saved weights differ from fresh ones.
        let mut trained = crate::TrainSession::builder(net(), crate::Method::Bptt, 4)
            .optimizer(Box::new(skipper_snn::Sgd::new(0.5)))
            .workers(1)
            .build()
            .unwrap();
        let inputs = spikes(6, 4);
        for _ in 0..3 {
            trained.train_batch(&inputs, &[0, 1, 2, 3]);
        }
        skipper_snn::save_params(trained.net().params(), &path).unwrap();

        let mut session = InferSession::new(net());
        let before = session.predict(&inputs).unwrap();
        session.load_weights(&path).unwrap();
        let after = session.predict(&inputs).unwrap();
        assert_ne!(
            before.logits.data(),
            after.logits.data(),
            "loaded weights must change the logits"
        );
        // And they now match the trained network exactly.
        let reference = InferSession::new(trained.net().share())
            .predict(&inputs)
            .unwrap();
        for (a, b) in after.logits.data().iter().zip(reference.logits.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
