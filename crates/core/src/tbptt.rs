//! Truncated BPTT (paper Section III-C), the classic memory-reduction
//! baseline the paper compares against (Fig. 10/12, Table I).
//!
//! The horizon is cut into windows of `trW` timesteps. Each window builds
//! its own tape from the carried neuron state inserted as **detached**
//! leaves (no gradient crosses a window boundary — that is the truncation),
//! computes a loss on the window-accumulated readout, backpropagates, and
//! accumulates weight gradients; the optimizer then applies the summed
//! gradient, as in the paper's description ("the weight gradients
//! calculated at time (t′, 2t′, …, T) are summed").

use crate::bptt::{combine_loss_groups, StepResult};
use crate::engine::{GradSink, ShardCtx};
use crate::sam::SpikeActivityMonitor;
use skipper_autograd::Graph;
use skipper_snn::{softmax_cross_entropy_scaled, ParamBinder, SpikingNetwork, StepCtx, TapedState};
use skipper_tensor::Tensor;

/// One TBPTT iteration with truncation window `window`.
///
/// # Panics
///
/// Panics if `window` is zero.
pub(crate) fn tbptt_step(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    window: usize,
) -> StepResult {
    let batch = inputs[0].shape()[0];
    tbptt_core(
        net,
        inputs,
        labels,
        iter_seed,
        window,
        ShardCtx::full(batch),
        &mut GradSink::Direct,
    )
}

/// Shard-aware TBPTT over one slice of the batch.
pub(crate) fn tbptt_core(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    window: usize,
    shard: ShardCtx,
    sink: &mut GradSink<'_>,
) -> StepResult {
    assert!(window > 0, "truncation window must be positive");
    let timesteps = inputs.len();
    let batch = inputs[0].shape()[0];
    let mut carried = net.init_state(batch);
    let mut sam = SpikeActivityMonitor::new(timesteps);
    let mut total_logits: Option<Tensor> = None;
    let mut loss_groups: Vec<Vec<f64>> = Vec::new();
    let mut start = 0usize;
    while start < timesteps {
        let end = (start + window).min(timesteps);
        let _win = skipper_obs::span!("tbptt_window", start = start, end = end);
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(net.params());
        // Detached boundary: requires_grad = false is the truncation.
        let mut tstate = TapedState::from_state(&mut g, &carried, false);
        let mut logit_vars = Vec::with_capacity(end - start);
        for (t, input) in inputs.iter().enumerate().take(end).skip(start) {
            let ctx = StepCtx::train_shard(iter_seed, t, shard.batch_offset);
            let out = net.step_taped(&mut g, &mut binder, input, &mut tstate, &ctx);
            sam.record(out.spike_sum);
            logit_vars.push(out.logits);
        }
        // Time-averaged readout within the window (matching the other
        // methods' scale-invariance in the horizon).
        let window_len = (end - start) as f32;
        let mut window_logits = g.value(logit_vars[0]).clone();
        for &v in &logit_vars[1..] {
            window_logits.add_assign(g.value(v));
        }
        window_logits.scale_assign(1.0 / window_len);
        let loss = softmax_cross_entropy_scaled(&window_logits, labels, shard.global_batch);
        loss_groups.push(loss.per_sample);
        let per_step_grad = loss.dlogits.scale(1.0 / window_len);
        for &v in &logit_vars {
            g.seed_grad(v, per_step_grad.clone());
        }
        g.backward();
        sink.harvest(&binder, &mut g, net.params_mut());
        carried = tstate.to_state(&g);
        match total_logits.as_mut() {
            Some(l) => l.add_assign(&window_logits),
            None => total_logits = Some(window_logits),
        }
        start = end;
        // Tape dropped here: "the computation graph is discarded and the
        // corresponding memory is released".
    }
    // Accuracy on the full accumulated readout, comparable to the other
    // methods.
    // lint:allow(panic): T >= 1 is validated at session build, so at least one window ran
    let total = total_logits.expect("at least one window");
    let preds = total.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| *p == *l).count();
    StepResult {
        loss: combine_loss_groups(&loss_groups, shard.global_batch),
        correct,
        recomputed_steps: timesteps,
        skipped_steps: 0,
        sam,
        loss_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptt::bptt_step;
    use skipper_snn::{custom_net, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn setup(seed: u64) -> (SpikingNetwork, Vec<Tensor>, Vec<usize>) {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut rng = XorShiftRng::new(seed);
        let inputs: Vec<Tensor> = (0..12)
            .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        (net, inputs, vec![4, 9])
    }

    #[test]
    fn full_window_tbptt_equals_bptt() {
        let (mut a, inputs, labels) = setup(90);
        let (mut b, _, _) = setup(90);
        let ra = bptt_step(&mut a, &inputs, &labels, 7);
        let rb = tbptt_step(&mut b, &inputs, &labels, 7, 12);
        assert!((ra.loss - rb.loss).abs() < 1e-9);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert!(pa.grad().max_abs_diff(pb.grad()) < 1e-5);
        }
    }

    #[test]
    fn truncated_gradients_differ_from_bptt() {
        let (mut a, inputs, labels) = setup(91);
        let (mut b, _, _) = setup(91);
        let _ = bptt_step(&mut a, &inputs, &labels, 7);
        let _ = tbptt_step(&mut b, &inputs, &labels, 7, 3);
        let diff: f64 = a
            .params()
            .iter()
            .zip(b.params().iter())
            .map(|(pa, pb)| pa.grad().max_abs_diff(pb.grad()) as f64)
            .sum();
        assert!(diff > 1e-7, "truncation must change gradients");
    }

    #[test]
    fn window_peak_memory_below_bptt() {
        use skipper_memprof as mp;
        let (mut net, inputs, labels) = setup(92);
        mp::reset_peaks();
        let _ = bptt_step(&mut net, &inputs, &labels, 1);
        let base = mp::snapshot().peak(mp::Category::Activations);
        mp::reset_peaks();
        let _ = tbptt_step(&mut net, &inputs, &labels, 1, 3);
        let trunc = mp::snapshot().peak(mp::Category::Activations);
        assert!((trunc as f64) < 0.6 * base as f64);
    }

    #[test]
    fn ragged_final_window_is_handled() {
        let (mut net, inputs, labels) = setup(93);
        let r = tbptt_step(&mut net, &inputs, &labels, 1, 5); // 5+5+2
        assert!(r.loss.is_finite());
        assert_eq!(r.sam.sums().len(), 12);
    }
}
