//! Memory-budget governor: adaptive checkpoint/skip configuration under a
//! byte budget.
//!
//! The paper picks `C = √T` offline (Eq. 3) and a skip percentile subject
//! to the Eq. 7 bound. On a device with a hard memory ceiling, a static
//! choice can still blow the budget (larger batch, wider layers, other
//! tenants). The governor closes the loop: after every iteration it
//! compares the measured peak tensor bytes against the user's budget and,
//! on pressure, moves the method one step toward the cheaper end of the
//! paper's own knobs —
//!
//! 1. plain BPTT is converted to temporal checkpointing;
//! 2. the checkpoint count `C` is stepped toward the `√T` optimum
//!    (bounded by the Section V-A `C ≤ T/L_n` rule);
//! 3. once `C` is optimal, a Skipper method's percentile is raised in
//!    5-point steps toward the Eq. 7 maximum.
//!
//! Every adjustment is logged as a [`GovernorAction`] so harnesses can
//! audit what the governor did and when.

use crate::method::Method;
use crate::sam::{max_checkpoints, max_skippable_percentile};

/// One adjustment the governor made.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorAction {
    /// Iteration whose measurement triggered the adjustment.
    pub iteration: u64,
    /// Peak tensor bytes measured in that iteration.
    pub peak_bytes: u64,
    /// The budget that was exceeded.
    pub budget_bytes: u64,
    /// Method before the adjustment.
    pub from: Method,
    /// Method after the adjustment (in effect from the next iteration).
    pub to: Method,
}

impl GovernorAction {
    /// Publish this adjustment to the observability layer: an Info-level
    /// `governor.action` event plus the `governor.actions` counter. The
    /// terminal sees it under the `SKIPPER_OBS` knob (the old ad-hoc
    /// stderr logging is gone). No-op while tracing is disabled.
    pub fn emit(&self) {
        skipper_obs::counter_add("governor.actions", 1.0);
        skipper_obs::instant!(
            skipper_obs::Level::Info,
            "governor.action",
            iteration = self.iteration,
            peak_bytes = self.peak_bytes,
            budget_bytes = self.budget_bytes,
            from = self.from.to_string(),
            to = self.to.to_string(),
        );
    }
}

impl std::fmt::Display for GovernorAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "iter {}: peak {} B > budget {} B, {} -> {}",
            self.iteration, self.peak_bytes, self.budget_bytes, self.from, self.to
        )
    }
}

/// The `√T` checkpoint optimum, clamped to the admissible range.
fn sqrt_optimal_checkpoints(timesteps: usize, layers: usize) -> usize {
    let sqrt = (timesteps as f64).sqrt().round().max(1.0) as usize;
    sqrt.clamp(1, max_checkpoints(timesteps, layers))
}

/// One step of `c` toward `target` (which is already admissible).
fn step_toward(c: usize, target: usize) -> usize {
    match c.cmp(&target) {
        std::cmp::Ordering::Less => c + 1,
        std::cmp::Ordering::Greater => c - 1,
        std::cmp::Ordering::Equal => c,
    }
}

/// Propose the next-cheaper method configuration under memory pressure,
/// or `None` if every knob is exhausted (or the method has none).
pub(crate) fn relieve_pressure(method: &Method, timesteps: usize, layers: usize) -> Option<Method> {
    let target = sqrt_optimal_checkpoints(timesteps, layers);
    match method {
        Method::Bptt => Some(Method::Checkpointed {
            checkpoints: target,
        }),
        Method::Checkpointed { checkpoints } => {
            let next = step_toward(*checkpoints, target);
            (next != *checkpoints).then_some(Method::Checkpointed { checkpoints: next })
        }
        Method::Skipper {
            checkpoints,
            percentile,
        } => {
            let next = step_toward(*checkpoints, target);
            if next != *checkpoints {
                return Some(Method::Skipper {
                    checkpoints: next,
                    percentile: *percentile,
                });
            }
            let cap = max_skippable_percentile(timesteps, *checkpoints, layers);
            let raised = (percentile + 5.0).min(cap);
            (raised > *percentile).then_some(Method::Skipper {
                checkpoints: *checkpoints,
                percentile: raised,
            })
        }
        // Window shrinking changes the training dynamics far more than the
        // paper's knobs do; leave truncated methods alone.
        Method::Tbptt { .. } | Method::TbpttLbp { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bptt_converts_to_sqrt_checkpointing() {
        let next = relieve_pressure(&Method::Bptt, 16, 2).unwrap();
        assert_eq!(next, Method::Checkpointed { checkpoints: 4 });
    }

    #[test]
    fn checkpoints_step_toward_sqrt_from_both_sides() {
        let low = relieve_pressure(&Method::Checkpointed { checkpoints: 1 }, 16, 2).unwrap();
        assert_eq!(low, Method::Checkpointed { checkpoints: 2 });
        let high = relieve_pressure(&Method::Checkpointed { checkpoints: 7 }, 16, 2).unwrap();
        assert_eq!(high, Method::Checkpointed { checkpoints: 6 });
        // At the optimum there is nothing left to do.
        assert!(relieve_pressure(&Method::Checkpointed { checkpoints: 4 }, 16, 2).is_none());
    }

    #[test]
    fn skipper_raises_percentile_once_c_is_optimal() {
        let m = Method::Skipper {
            checkpoints: 4,
            percentile: 25.0,
        };
        let next = relieve_pressure(&m, 16, 2).unwrap();
        assert_eq!(
            next,
            Method::Skipper {
                checkpoints: 4,
                percentile: 30.0
            }
        );
    }

    #[test]
    fn percentile_is_capped_by_eq7() {
        let cap = max_skippable_percentile(16, 4, 2);
        let m = Method::Skipper {
            checkpoints: 4,
            percentile: cap,
        };
        assert!(relieve_pressure(&m, 16, 2).is_none());
    }

    #[test]
    fn truncated_methods_are_left_alone() {
        assert!(relieve_pressure(&Method::Tbptt { window: 4 }, 16, 2).is_none());
    }

    #[test]
    fn sqrt_target_respects_layer_bound() {
        // T = 16, 8 spiking layers: C ≤ T/L = 2 even though √T = 4.
        assert_eq!(sqrt_optimal_checkpoints(16, 8), 2);
    }
}
