//! Data-parallel sharded execution of one training iteration.
//!
//! The paper's testbed parallelizes across the batch dimension (Fig. 3's
//! throughput numbers assume it); this module is the reproduction's
//! execution engine for that axis. A persistent [`WorkerPool`] of named
//! threads receives per-shard jobs; each shard runs the method's
//! shard-aware core (`bptt_core`, `checkpoint_forward`/`checkpoint_backward`,
//! `tbptt_core`, `lbp_core`) over a contiguous slice of the batch rows and
//! hands back plain-`Vec` gradients, per-sample losses and SAM sums. The
//! session thread then combines them deterministically.
//!
//! # Determinism
//!
//! The engine's results depend only on the seed and the batch — **not** on
//! the worker count — because every nondeterminism source is pinned:
//!
//! * the shard plan is canonical: `S = min(B, 8)` contiguous row ranges,
//!   independent of how many workers execute them ([`shard_plan`]);
//! * dropout streams are per *global* row (`StepCtx::train_shard` carries
//!   the shard's row offset), so a row draws the same mask in any shard;
//! * per-shard gradients are combined by a fixed-order pairwise tree
//!   ([`tree_reduce`]) over the shard index, never by arrival order;
//! * per-sample losses are concatenated in global row order and folded
//!   exactly like the unsharded accumulation
//!   ([`combine_loss_groups`](crate::bptt::combine_loss_groups));
//! * SAM spike sums are exact integers in `f64`, so the cross-shard sum is
//!   grouping-invariant and the SST percentile — formed on the session
//!   thread from the *aggregated* record, before phase B — is bit-identical
//!   to the unsharded monitor (paper semantics: skip decisions are global).
//!
//! Versus the truly unsharded single-graph reference, the loss, SAM sums,
//! SST thresholds and skip decisions are bit-identical; weight gradients
//! agree to float tolerance only, because kernel backward passes fold over
//! batch rows in one group where the sharded run folds per shard first.
//!
//! # Memory accounting
//!
//! The memory tracker and the op log are thread-local, so every worker
//! tensor is created *and dropped* on its worker thread: networks cross as
//! storage-sharing handles ([`SpikingNetwork::share`], no new bytes), input
//! shards are sliced locally under [`Category::Input`], and gradients leave
//! as untracked raw vectors. Each worker's peak snapshot and op log are
//! returned for per-worker attribution ([`EngineOutcome::worker_mem`]).

use crate::bptt::{bptt_core, combine_loss_groups, StepResult};
use crate::checkpoint::{checkpoint_backward, checkpoint_forward, PhaseAOut};
use crate::error::SkipperError;
use crate::lbp::{lbp_core, LocalClassifiers};
use crate::method::{segment_bounds, Method};
use crate::sam::{decide_skips, SamMetric, SkipDecisions, SkipPolicy, SpikeActivityMonitor};
use crate::tbptt::tbptt_core;
use skipper_autograd::Graph;
use skipper_memprof::{self as mp, Category, CategoryGuard, MemorySnapshot, OpLog};
use skipper_snn::{ParamBinder, ParamStore, ShardGrads, SpikingNetwork};
use skipper_tensor::Tensor;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;

/// Upper bound on shards per iteration. Fixed (not worker-derived) so the
/// computation — and therefore every gradient bit — is identical whether 2
/// or 8 workers execute the plan.
pub(crate) const DEFAULT_MAX_SHARDS: usize = 8;

/// Where one batch shard sits inside the global batch. The cores use it to
/// scale the loss by the *global* batch size and to offset the per-row
/// dropout streams.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardCtx {
    /// Rows in the whole iteration's batch (loss denominator).
    pub global_batch: usize,
    /// Index of this shard's first row in the global batch.
    pub batch_offset: usize,
}

impl ShardCtx {
    /// The whole batch as one shard (the unsharded reference path).
    pub fn full(batch: usize) -> ShardCtx {
        ShardCtx {
            global_batch: batch,
            batch_offset: 0,
        }
    }
}

/// Where a core's harvested gradients go: straight into the shared
/// parameter store (unsharded path) or into a per-shard buffer that the
/// engine reduces later.
pub(crate) enum GradSink<'a> {
    /// Accumulate into the store's gradient tensors.
    Direct,
    /// Accumulate into a per-shard buffer.
    Shard(&'a mut ShardGrads),
}

impl GradSink<'_> {
    /// Move every bound leaf's gradient out of `g`. `store` is only
    /// touched by the direct sink.
    pub fn harvest(&mut self, binder: &ParamBinder, g: &mut Graph, store: &mut ParamStore) {
        match self {
            GradSink::Direct => binder.harvest(g, store),
            GradSink::Shard(buf) => binder.harvest_into(g, buf),
        }
    }
}

/// The canonical shard plan: `min(batch, max_shards)` contiguous row
/// ranges with boundaries at `k·B/S` (every shard within one row of
/// `B/S`). Depends only on the batch size, never on the worker count.
pub(crate) fn shard_plan(batch: usize, max_shards: usize) -> Vec<Range<usize>> {
    assert!(batch > 0, "cannot shard an empty batch");
    assert!(max_shards > 0, "need at least one shard");
    let shards = batch.min(max_shards);
    (0..shards)
        .map(|k| (k * batch / shards)..((k + 1) * batch / shards))
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One queued unit of work: the closure plus the span context captured on
/// the submitting thread, so the worker's spans nest under the dispatching
/// `iteration` span in the trace.
struct Task {
    ctx: skipper_obs::SpanContext,
    run: Job,
}

/// A persistent pool of named worker threads fed over per-worker channels.
/// Shard `i` always runs on worker `i % n`, so a shard's phase-A tensors
/// are consumed by phase B on the thread that created them (the memory
/// tracker and span stack are thread-local).
///
/// Telemetry (all gated on [`skipper_obs::enabled`]): every task runs
/// inside a `worker_task` span adopted into the submitter's span context;
/// `engine.queue_depth` gauges (total and per worker) track pending tasks,
/// and `engine.worker_utilization` / `engine.worker_idle_us` /
/// `engine.worker_busy_us` expose each thread's lifetime busy fraction.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Task>>,
    depths: Vec<Arc<AtomicUsize>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads named `skipper-worker-{i}`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when a worker thread cannot be spawned
    /// (thread exhaustion / memory pressure at construction time).
    pub fn new(workers: usize) -> Result<WorkerPool, SkipperError> {
        assert!(workers > 0, "a worker pool needs at least one thread");
        let mut senders = Vec::with_capacity(workers);
        let mut depths = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Task>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let handle = thread::Builder::new()
                .name(format!("skipper-worker-{i}"))
                .spawn(move || {
                    // Join the profiler's thread census up front, so
                    // sampled profiles show idle workers as idle rather
                    // than invisible.
                    skipper_obs::profile::touch_thread();
                    let mut idle_us = 0u64;
                    let mut busy_us = 0u64;
                    // lint:allow(determinism): wall-clock feeds worker busy/idle telemetry gauges only, never training math
                    let mut last_done = std::time::Instant::now();
                    while let Ok(task) = rx.recv() {
                        // lint:allow(determinism): wall-clock feeds worker busy/idle telemetry gauges only, never training math
                        let started = std::time::Instant::now();
                        idle_us += started.duration_since(last_done).as_micros() as u64;
                        let pending = worker_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                        {
                            let _ctx = task.ctx.adopt();
                            let _span = skipper_obs::span!(
                                "worker_task",
                                worker = i as u64,
                                pending = pending as u64
                            );
                            (task.run)();
                        }
                        // lint:allow(determinism): wall-clock feeds worker busy/idle telemetry gauges only, never training math
                        last_done = std::time::Instant::now();
                        busy_us += last_done.duration_since(started).as_micros() as u64;
                        if skipper_obs::enabled() {
                            let lifetime = (busy_us + idle_us).max(1);
                            skipper_obs::gauge_set(
                                &skipper_obs::labeled("engine.worker_utilization", "worker", i),
                                busy_us as f64 / lifetime as f64,
                            );
                            skipper_obs::gauge_set(
                                &skipper_obs::labeled("engine.worker_idle_us", "worker", i),
                                idle_us as f64,
                            );
                            skipper_obs::gauge_set(
                                &skipper_obs::labeled("engine.worker_busy_us", "worker", i),
                                busy_us as f64,
                            );
                        }
                    }
                })
                .map_err(SkipperError::Io)?;
            senders.push(tx);
            depths.push(depth);
            handles.push(handle);
        }
        Ok(WorkerPool {
            senders,
            depths,
            handles,
        })
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Queue `job` on worker `worker`. Jobs on one worker run in
    /// submission order.
    ///
    /// # Errors
    ///
    /// [`SkipperError::WorkerLost`] when the worker's channel is
    /// disconnected — its thread panicked or was torn down — so the job
    /// could not be queued.
    pub fn submit(&self, worker: usize, job: Job) -> Result<(), SkipperError> {
        let depth = self.depths[worker].fetch_add(1, Ordering::Relaxed) + 1;
        if skipper_obs::enabled() {
            skipper_obs::gauge_set(
                &skipper_obs::labeled("engine.queue_depth", "worker", worker),
                depth as f64,
            );
            let total: usize = self.depths.iter().map(|d| d.load(Ordering::Relaxed)).sum();
            skipper_obs::gauge_set("engine.queue_depth", total as f64);
        }
        self.senders[worker]
            .send(Task {
                ctx: skipper_obs::SpanContext::capture(),
                run: job,
            })
            .map_err(|_| SkipperError::WorkerLost {
                worker: format!("pool-{worker}"),
                detail: "job channel disconnected (worker thread panicked or exited)".into(),
            })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Fixed-order pairwise tree reduction of per-shard raw gradients, indexed
/// by shard: `((s0+s1)+(s2+s3))+…`. The tree shape depends only on the
/// shard count, so the summed bits are identical for any worker count.
pub(crate) fn tree_reduce(mut layers: Vec<Vec<Option<Vec<f32>>>>) -> Vec<Option<Vec<f32>>> {
    assert!(!layers.is_empty(), "reduce of zero shards");
    let _span = skipper_obs::span!("tree_reduce", shards = layers.len() as u64);
    while layers.len() > 1 {
        let mut next = Vec::with_capacity(layers.len().div_ceil(2));
        let mut it = layers.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (slot, add) in a.iter_mut().zip(b) {
                    match (slot.as_mut(), add) {
                        (Some(acc), Some(v)) => {
                            for (x, y) in acc.iter_mut().zip(&v) {
                                *x += *y;
                            }
                        }
                        (None, Some(v)) => *slot = Some(v),
                        _ => {}
                    }
                }
            }
            next.push(a);
        }
        layers = next;
    }
    // lint:allow(panic): tree_reduce is only called with at least one shard layer
    layers.pop().expect("non-empty by construction")
}

/// Add reduced raw gradients into the store's accumulators in place. The
/// grad tensors are uniquely owned again by now (workers dropped their
/// shares when their jobs ended), so no copy-on-write clone happens.
pub(crate) fn apply_grads(store: &mut ParamStore, reduced: Vec<Option<Vec<f32>>>) {
    for (p, g) in store.iter_mut().zip(reduced) {
        if let Some(v) = g {
            for (x, y) in p.grad_mut().data_mut().iter_mut().zip(&v) {
                *x += *y;
            }
        }
    }
}

/// Slice rows `range` out of every timestep tensor, booking the copies
/// under [`Category::Input`] on the calling (worker) thread.
pub(crate) fn slice_rows(inputs: &[Tensor], range: &Range<usize>) -> Vec<Tensor> {
    let _cat = CategoryGuard::new(Category::Input);
    inputs
        .iter()
        .map(|t| {
            let batch = t.shape()[0];
            let stride = t.numel() / batch;
            let mut dims = t.shape().dims().to_vec();
            dims[0] = range.len();
            Tensor::from_vec(
                t.data()[range.start * stride..range.end * stride].to_vec(),
                dims,
            )
        })
        .collect()
}

/// What one shard hands back to the session thread: plain data only, no
/// tensors (worker tensors die on their worker thread).
pub(crate) struct ShardOut {
    pub index: usize,
    pub loss_groups: Vec<Vec<f64>>,
    pub correct: usize,
    pub sam_sums: Vec<f64>,
    pub recomputed: usize,
    pub skipped: usize,
    pub wall_us: u64,
    pub grads: Vec<Option<Vec<f32>>>,
    pub aux_grads: Option<Vec<Option<Vec<f32>>>>,
}

/// Phase-A carry parked between the two dispatches of a checkpointed
/// iteration: the shard's network handle, sliced inputs and phase-A output
/// stay on the worker that made them (shard `i` maps to worker `i % n` in
/// both phases).
struct Carry {
    net: SpikingNetwork,
    inputs: Vec<Tensor>,
    a: PhaseAOut,
}

/// Everything the session needs from one engine iteration.
pub(crate) struct EngineOutcome {
    /// The combined step result (gradients already applied to the store).
    pub step: StepResult,
    /// Per-worker peak-memory snapshots, in worker order.
    pub worker_mem: Vec<MemorySnapshot>,
    /// Merged kernel log of all workers.
    pub ops: OpLog,
}

/// The data-parallel engine: a worker pool plus the canonical shard plan.
pub(crate) struct Engine {
    pool: WorkerPool,
    max_shards: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.pool.len())
            .field("max_shards", &self.max_shards)
            .finish()
    }
}

impl Engine {
    /// An engine with `workers` persistent threads.
    ///
    /// # Errors
    ///
    /// Propagates a worker-thread spawn failure.
    pub fn new(workers: usize) -> Result<Engine, SkipperError> {
        Ok(Engine {
            pool: WorkerPool::new(workers)?,
            max_shards: DEFAULT_MAX_SHARDS,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    /// Run one training iteration of `method` across the pool. Gradients
    /// are left accumulated in `net` (and `aux`), exactly like the
    /// unsharded step functions.
    ///
    /// # Errors
    ///
    /// [`SkipperError::WorkerLost`] when a pool worker's job channel is
    /// disconnected, so the iteration could not be dispatched.
    #[allow(clippy::too_many_arguments)]
    pub fn run_iteration(
        &self,
        net: &mut SpikingNetwork,
        aux: Option<&mut LocalClassifiers>,
        method: &Method,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
        metric: SamMetric,
        policy: SkipPolicy,
    ) -> Result<EngineOutcome, SkipperError> {
        match method {
            Method::Checkpointed { checkpoints } => self.run_two_phase(
                net,
                inputs,
                labels,
                iter_seed,
                *checkpoints,
                0.0,
                metric,
                policy,
            ),
            Method::Skipper {
                checkpoints,
                percentile,
            } => self.run_two_phase(
                net,
                inputs,
                labels,
                iter_seed,
                *checkpoints,
                *percentile,
                metric,
                policy,
            ),
            _ => self.run_single_phase(net, aux, method, inputs, labels, iter_seed),
        }
    }

    /// One-dispatch methods: BPTT, TBPTT, TBPTT-LBP.
    fn run_single_phase(
        &self,
        net: &mut SpikingNetwork,
        aux: Option<&mut LocalClassifiers>,
        method: &Method,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
    ) -> Result<EngineOutcome, SkipperError> {
        let batch = inputs[0].shape()[0];
        let timesteps = inputs.len();
        let plan = shard_plan(batch, self.max_shards);
        let workers = self.pool.len();
        type Payload = (Vec<ShardOut>, MemorySnapshot, OpLog);
        let (tx, rx) = channel::<(usize, thread::Result<Payload>)>();
        let mut active = 0usize;
        for w in 0..workers {
            let mine: Vec<(usize, Range<usize>)> = plan
                .iter()
                .cloned()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .collect();
            if mine.is_empty() {
                continue;
            }
            active += 1;
            let tx = tx.clone();
            let net = net.share();
            let aux = aux.as_deref().map(LocalClassifiers::share);
            let inputs = inputs.to_vec();
            let labels = labels.to_vec();
            let method = method.clone();
            self.pool.submit(
                w,
                Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        mp::reset_peaks();
                        let _ = mp::take_op_log();
                        let mut net = net;
                        let mut aux = aux;
                        let mut outs = Vec::with_capacity(mine.len());
                        for (index, range) in mine {
                            // lint:allow(determinism): wall-clock feeds the shard_wall_us telemetry histogram only, never training math
                            let shard_started = std::time::Instant::now();
                            let _span = shard_span("shard", index, &range);
                            let shard_inputs = slice_rows(&inputs, &range);
                            let shard_labels = labels[range.clone()].to_vec();
                            let shard = ShardCtx {
                                global_batch: batch,
                                batch_offset: range.start,
                            };
                            let mut grads = ShardGrads::for_store(net.params());
                            let mut aux_grads =
                                aux.as_ref().map(|a| ShardGrads::for_store(a.store()));
                            let step = match &method {
                                Method::Bptt => bptt_core(
                                    &mut net,
                                    &shard_inputs,
                                    &shard_labels,
                                    iter_seed,
                                    shard,
                                    &mut GradSink::Shard(&mut grads),
                                ),
                                Method::Tbptt { window } => tbptt_core(
                                    &mut net,
                                    &shard_inputs,
                                    &shard_labels,
                                    iter_seed,
                                    *window,
                                    shard,
                                    &mut GradSink::Shard(&mut grads),
                                ),
                                Method::TbpttLbp { window, .. } => {
                                    let aux =
                                        // lint:allow(panic): LBP sessions construct aux classifiers up front (method validation)
                                        aux.as_mut().expect("LBP sessions build aux classifiers");
                                    let ag = aux_grads
                                        .as_mut()
                                        // lint:allow(panic): aux grad buffers are allocated together with the aux classifiers
                                        .expect("aux grads buffer exists with aux");
                                    lbp_core(
                                        &mut net,
                                        aux,
                                        &shard_inputs,
                                        &shard_labels,
                                        iter_seed,
                                        *window,
                                        shard,
                                        &mut GradSink::Shard(&mut grads),
                                        &mut GradSink::Shard(ag),
                                    )
                                }
                                two_phase => {
                                    unreachable!("{two_phase} dispatches through run_two_phase")
                                }
                            };
                            outs.push(ShardOut {
                                index,
                                loss_groups: step.loss_groups,
                                correct: step.correct,
                                sam_sums: step.sam.sums().to_vec(),
                                recomputed: step.recomputed_steps,
                                skipped: step.skipped_steps,
                                wall_us: shard_started.elapsed().as_micros() as u64,
                                grads: grads.into_raw(),
                                aux_grads: aux_grads.map(ShardGrads::into_raw),
                            });
                        }
                        (outs, mp::snapshot(), mp::take_op_log())
                    }));
                    let _ = tx.send((w, out));
                }),
            )?;
        }
        drop(tx);
        let (shard_outs, worker_mem, ops) = collect_worker_results(&rx, active);
        let walls: Vec<u64> = shard_outs.iter().map(|s| s.wall_us).collect();
        record_shard_walls("train", &walls);
        let aux_store = aux.map(LocalClassifiers::store_mut);
        let step = combine_shards(net.params_mut(), aux_store, shard_outs, batch, timesteps);
        Ok(EngineOutcome {
            step,
            worker_mem,
            ops,
        })
    }

    /// Checkpointed / Skipper: phase A on every shard, a cross-shard SAM
    /// aggregation + global SST decision on the session thread, then phase
    /// B on every shard under the shared skip schedule.
    #[allow(clippy::too_many_arguments)]
    fn run_two_phase(
        &self,
        net: &mut SpikingNetwork,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
        checkpoints: usize,
        percentile: f32,
        metric: SamMetric,
        policy: SkipPolicy,
    ) -> Result<EngineOutcome, SkipperError> {
        let batch = inputs[0].shape()[0];
        let timesteps = inputs.len();
        let bounds = Arc::new(segment_bounds(timesteps, checkpoints));
        let plan = shard_plan(batch, self.max_shards);
        let workers = self.pool.len();
        let carries: Arc<Vec<parking_lot::Mutex<Option<Carry>>>> = Arc::new(
            (0..plan.len())
                .map(|_| parking_lot::Mutex::new(None))
                .collect(),
        );

        // Phase A: gradient-free forward with checkpoints, per shard.
        struct AReport {
            index: usize,
            sam_sums: Vec<f64>,
            per_sample: Vec<f64>,
            correct: usize,
            wall_us: u64,
        }
        let (tx, rx) = channel::<(usize, thread::Result<Vec<AReport>>)>();
        let assignment = |w: usize| -> Vec<(usize, Range<usize>)> {
            plan.iter()
                .cloned()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .collect()
        };
        let mut active = 0usize;
        for w in 0..workers {
            let mine = assignment(w);
            if mine.is_empty() {
                continue;
            }
            active += 1;
            let tx = tx.clone();
            let net = net.share();
            let inputs = inputs.to_vec();
            let labels = labels.to_vec();
            let bounds = Arc::clone(&bounds);
            let carries = Arc::clone(&carries);
            self.pool.submit(
                w,
                Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        mp::reset_peaks();
                        let _ = mp::take_op_log();
                        let mut reports = Vec::with_capacity(mine.len());
                        for (index, range) in mine {
                            // lint:allow(determinism): wall-clock feeds the shard_wall_us telemetry histogram only, never training math
                            let shard_started = std::time::Instant::now();
                            let _span = shard_span("shard_forward", index, &range);
                            let shard_net = net.share();
                            let shard_inputs = slice_rows(&inputs, &range);
                            let shard_labels = labels[range.clone()].to_vec();
                            let shard = ShardCtx {
                                global_batch: batch,
                                batch_offset: range.start,
                            };
                            let a = checkpoint_forward(
                                &shard_net,
                                &shard_inputs,
                                &shard_labels,
                                iter_seed,
                                &bounds,
                                metric,
                                shard,
                            );
                            reports.push(AReport {
                                index,
                                sam_sums: a.sam.sums().to_vec(),
                                per_sample: a.per_sample_loss.clone(),
                                correct: a.correct,
                                wall_us: shard_started.elapsed().as_micros() as u64,
                            });
                            *carries[index].lock() = Some(Carry {
                                net: shard_net,
                                inputs: shard_inputs,
                                a,
                            });
                        }
                        reports
                    }));
                    let _ = tx.send((w, out));
                }),
            )?;
        }
        drop(tx);
        let mut a_reports: Vec<AReport> = Vec::with_capacity(plan.len());
        for _ in 0..active {
            // lint:allow(panic): recv fails only if a worker died without reporting, i.e. after a propagated panic
            let (_, res) = rx.recv().expect("phase-A worker reports back");
            match res {
                Ok(reports) => a_reports.extend(reports),
                Err(payload) => resume_unwind(payload),
            }
        }
        a_reports.sort_by_key(|r| r.index);
        let forward_walls: Vec<u64> = a_reports.iter().map(|r| r.wall_us).collect();
        record_shard_walls("forward", &forward_walls);

        // Cross-shard SAM aggregation *before* the SST percentile is formed
        // (paper semantics: the skip decision is network-wide, Section VI).
        let mut sums = vec![0.0f64; timesteps];
        for r in &a_reports {
            for (acc, v) in sums.iter_mut().zip(&r.sam_sums) {
                *acc += *v;
            }
        }
        let sam = SpikeActivityMonitor::from_sums(sums);
        let decisions = decide_skips(&sam, &bounds, percentile, policy, iter_seed);
        emit_skip_trace(&bounds, &sam, &decisions);

        // Phase B: segment-wise backward per shard under the global
        // schedule. Each shard reports (index, wall µs, raw gradients).
        type ShardGradOut = (usize, u64, Vec<Option<Vec<f32>>>);
        type BPayload = (Vec<ShardGradOut>, MemorySnapshot, OpLog);
        let (tx, rx) = channel::<(usize, thread::Result<BPayload>)>();
        let mut active = 0usize;
        for w in 0..workers {
            let mine = assignment(w);
            if mine.is_empty() {
                continue;
            }
            active += 1;
            let tx = tx.clone();
            let bounds = Arc::clone(&bounds);
            let carries = Arc::clone(&carries);
            let decisions = decisions.clone();
            self.pool.submit(
                w,
                Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let mut outs = Vec::with_capacity(mine.len());
                        for (index, range) in mine {
                            // lint:allow(determinism): wall-clock feeds the shard_wall_us telemetry histogram only, never training math
                            let shard_started = std::time::Instant::now();
                            let _span = shard_span("shard_backward", index, &range);
                            let Carry { mut net, inputs, a } = carries[index]
                                .lock()
                                .take()
                                // lint:allow(panic): phase A runs every shard to completion before phase B starts, so the carry exists
                                .expect("phase A parked a carry for this shard");
                            let shard = ShardCtx {
                                global_batch: batch,
                                batch_offset: range.start,
                            };
                            let mut grads = ShardGrads::for_store(net.params());
                            checkpoint_backward(
                                &mut net,
                                &inputs,
                                iter_seed,
                                &bounds,
                                &a.ckpts,
                                &a.per_step_grad,
                                &a.sam,
                                &decisions,
                                shard,
                                &mut GradSink::Shard(&mut grads),
                                false,
                            );
                            outs.push((
                                index,
                                shard_started.elapsed().as_micros() as u64,
                                grads.into_raw(),
                            ));
                        }
                        (outs, mp::snapshot(), mp::take_op_log())
                    }));
                    let _ = tx.send((w, out));
                }),
            )?;
        }
        drop(tx);
        let mut by_worker: Vec<(usize, Vec<ShardGradOut>, MemorySnapshot, OpLog)> =
            Vec::with_capacity(active);
        for _ in 0..active {
            // lint:allow(panic): recv fails only if a worker died without reporting, i.e. after a propagated panic
            let (w, res) = rx.recv().expect("phase-B worker reports back");
            match res {
                Ok((outs, mem, ops)) => by_worker.push((w, outs, mem, ops)),
                Err(payload) => resume_unwind(payload),
            }
        }
        by_worker.sort_by_key(|(w, ..)| *w);
        let mut worker_mem = Vec::with_capacity(by_worker.len());
        let mut ops = OpLog::new();
        let mut grad_sets: Vec<ShardGradOut> = Vec::with_capacity(plan.len());
        for (_, outs, mem, worker_ops) in by_worker {
            worker_mem.push(mem);
            ops.extend(worker_ops);
            grad_sets.extend(outs);
        }
        grad_sets.sort_by_key(|(i, ..)| *i);
        let backward_walls: Vec<u64> = grad_sets.iter().map(|(_, w, _)| *w).collect();
        record_shard_walls("backward", &backward_walls);
        apply_grads(
            net.params_mut(),
            tree_reduce(grad_sets.into_iter().map(|(.., g)| g).collect()),
        );

        let groups = vec![a_reports
            .iter()
            .flat_map(|r| r.per_sample.iter().copied())
            .collect::<Vec<f64>>()];
        let correct = a_reports.iter().map(|r| r.correct).sum();
        let (skipped, recomputed) = (decisions.skipped(), decisions.recomputed());
        skipper_obs::counter_add("skipper.steps_skipped", skipped as f64);
        skipper_obs::counter_add("skipper.steps_recomputed", recomputed as f64);
        Ok(EngineOutcome {
            step: StepResult {
                loss: combine_loss_groups(&groups, batch),
                correct,
                recomputed_steps: recomputed,
                skipped_steps: skipped,
                sam,
                loss_groups: groups,
            },
            worker_mem,
            ops,
        })
    }
}

/// Open a per-shard span. The enclosing `worker_task` span (itself adopted
/// into the dispatching thread's context) supplies the parent, so the
/// shard nests under the session's `iteration` span in the trace.
fn shard_span(name: &'static str, index: usize, range: &Range<usize>) -> skipper_obs::SpanGuard {
    if !skipper_obs::enabled() {
        return skipper_obs::SpanGuard::disabled();
    }
    let fields: skipper_obs::Fields = vec![
        ("shard", skipper_obs::FieldValue::from(index as u64)),
        ("start", skipper_obs::FieldValue::from(range.start as u64)),
        ("rows", skipper_obs::FieldValue::from(range.len() as u64)),
    ];
    skipper_obs::SpanGuard::enter(name, fields)
}

/// Publish per-shard wall times for one dispatch phase: every shard's wall
/// into the `engine.shard_wall_us{phase=…}` histogram, plus an
/// `engine.shard_imbalance{phase=…}` gauge of `(max-min)/max` — 0 means a
/// perfectly balanced plan, values near 1 mean one straggler shard
/// dominated the iteration's critical path.
fn record_shard_walls(phase: &str, walls: &[u64]) {
    if walls.is_empty() || !skipper_obs::enabled() {
        return;
    }
    let hist_key = skipper_obs::labeled("engine.shard_wall_us", "phase", phase);
    for &w in walls {
        skipper_obs::observe(&hist_key, w as f64);
    }
    // lint:allow(panic): walls has one entry per shard and the shard plan is never empty
    let max = *walls.iter().max().expect("non-empty");
    // lint:allow(panic): walls has one entry per shard and the shard plan is never empty
    let min = *walls.iter().min().expect("non-empty");
    let imbalance = if max == 0 {
        0.0
    } else {
        (max - min) as f64 / max as f64
    };
    skipper_obs::gauge_set(
        &skipper_obs::labeled("engine.shard_imbalance", "phase", phase),
        imbalance,
    );
}

/// Re-emit the unsharded path's skip-decision trace (SST gauge + per-step
/// events) on the session thread, segment-reversed like
/// [`checkpoint_backward`] with `trace = true`.
pub(crate) fn emit_skip_trace(
    bounds: &[usize],
    sam: &SpikeActivityMonitor,
    decisions: &SkipDecisions,
) {
    let checkpoints = bounds.len() - 1;
    for c in (0..checkpoints).rev() {
        if !decisions.sst(c).is_nan() {
            skipper_obs::gauge_set("skipper.sst_threshold", decisions.sst(c));
        }
        for t in bounds[c]..bounds[c + 1] {
            crate::sam::trace_skip_decision(c, t, sam.at(t), decisions.sst(c), decisions.skip(t));
        }
    }
}

/// Drain `active` single-phase worker payloads, re-raising worker panics,
/// and return shard outputs (shard order), worker snapshots (worker order)
/// and the merged op log.
#[allow(clippy::type_complexity)]
fn collect_worker_results(
    rx: &std::sync::mpsc::Receiver<(
        usize,
        thread::Result<(Vec<ShardOut>, MemorySnapshot, OpLog)>,
    )>,
    active: usize,
) -> (Vec<ShardOut>, Vec<MemorySnapshot>, OpLog) {
    let mut by_worker = Vec::with_capacity(active);
    for _ in 0..active {
        // lint:allow(panic): recv fails only if a worker died without reporting, i.e. after a propagated panic
        let (w, res) = rx.recv().expect("worker reports back");
        match res {
            Ok(payload) => by_worker.push((w, payload)),
            Err(payload) => resume_unwind(payload),
        }
    }
    by_worker.sort_by_key(|(w, _)| *w);
    let mut shard_outs = Vec::new();
    let mut worker_mem = Vec::with_capacity(by_worker.len());
    let mut ops = OpLog::new();
    for (_, (outs, mem, worker_ops)) in by_worker {
        shard_outs.extend(outs);
        worker_mem.push(mem);
        ops.extend(worker_ops);
    }
    shard_outs.sort_by_key(|s| s.index);
    (shard_outs, worker_mem, ops)
}

/// Combine sorted single-phase shard outputs: tree-reduce gradients into
/// the stores, concatenate loss groups in global row order, sum SAM
/// records, and rebuild the [`StepResult`].
pub(crate) fn combine_shards(
    store: &mut ParamStore,
    aux_store: Option<&mut ParamStore>,
    mut shard_outs: Vec<ShardOut>,
    batch: usize,
    timesteps: usize,
) -> StepResult {
    assert!(!shard_outs.is_empty(), "at least one shard ran");
    let grad_sets: Vec<_> = shard_outs
        .iter_mut()
        .map(|s| std::mem::take(&mut s.grads))
        .collect();
    apply_grads(store, tree_reduce(grad_sets));
    if let Some(aux_store) = aux_store {
        let aux_sets: Vec<_> = shard_outs
            .iter_mut()
            .filter_map(|s| s.aux_grads.take())
            .collect();
        if !aux_sets.is_empty() {
            apply_grads(aux_store, tree_reduce(aux_sets));
        }
    }
    let group_count = shard_outs[0].loss_groups.len();
    let mut groups: Vec<Vec<f64>> = vec![Vec::with_capacity(batch); group_count];
    let mut sums = vec![0.0f64; timesteps];
    let mut correct = 0usize;
    for s in &shard_outs {
        for (gi, grp) in s.loss_groups.iter().enumerate() {
            groups[gi].extend_from_slice(grp);
        }
        for (acc, v) in sums.iter_mut().zip(&s.sam_sums) {
            *acc += *v;
        }
        correct += s.correct;
    }
    StepResult {
        loss: combine_loss_groups(&groups, batch),
        correct,
        recomputed_steps: shard_outs[0].recomputed,
        skipped_steps: shard_outs[0].skipped,
        sam: SpikeActivityMonitor::from_sums(sums),
        loss_groups: groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptt::bptt_step;
    use crate::checkpoint::checkpointed_step;
    use skipper_snn::{custom_net, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn setup(seed: u64, batch: usize) -> (SpikingNetwork, Vec<Tensor>, Vec<usize>) {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut rng = XorShiftRng::new(seed);
        let inputs: Vec<Tensor> = (0..8)
            .map(|_| Tensor::rand([batch, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        let labels = (0..batch).map(|i| i % 10).collect();
        (net, inputs, labels)
    }

    #[test]
    fn shard_plan_is_canonical_and_covers_the_batch() {
        for batch in [1usize, 2, 5, 8, 9, 64, 127] {
            let plan = shard_plan(batch, DEFAULT_MAX_SHARDS);
            assert_eq!(plan.len(), batch.min(DEFAULT_MAX_SHARDS));
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, batch);
            for pair in plan.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous at B={batch}");
                assert!(!pair[1].is_empty());
            }
            let sizes: Vec<usize> = plan.iter().map(Range::len).collect();
            let (lo, hi) = (
                *sizes.iter().min().unwrap() as i64,
                *sizes.iter().max().unwrap() as i64,
            );
            assert!(hi - lo <= 1, "balanced within one row at B={batch}");
        }
    }

    #[test]
    fn worker_pool_runs_jobs_in_submission_order() {
        let pool = WorkerPool::new(2).unwrap();
        let (tx, rx) = channel();
        for i in 0..6u32 {
            let tx = tx.clone();
            pool.submit(
                (i % 2) as usize,
                Box::new(move || {
                    let _ = tx.send(i);
                }),
            )
            .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn tree_reduce_shape_depends_only_on_shard_order() {
        let shards: Vec<Vec<Option<Vec<f32>>>> = (0..5)
            .map(|i| vec![Some(vec![i as f32 * 0.1 + 1.0; 3]), None])
            .collect();
        let a = tree_reduce(shards.clone());
        let b = tree_reduce(shards);
        assert_eq!(a, b);
        assert!(a[1].is_none());
        let expected = ((1.0f32 + 1.1) + (1.2 + 1.3)) + 1.4;
        assert_eq!(a[0].as_ref().unwrap()[0], expected);
    }

    #[test]
    fn engine_bptt_matches_unsharded_loss_sam_and_gradients() {
        let (mut reference, inputs, labels) = setup(11, 6);
        let r = bptt_step(&mut reference, &inputs, &labels, 3);
        let engine = Engine::new(2).unwrap();
        let (mut sharded, _, _) = setup(11, 6);
        let e = engine
            .run_iteration(
                &mut sharded,
                None,
                &Method::Bptt,
                &inputs,
                &labels,
                3,
                SamMetric::SpikeSum,
                SkipPolicy::SpikeActivity,
            )
            .unwrap();
        assert_eq!(r.loss.to_bits(), e.step.loss.to_bits(), "loss is bitwise");
        assert_eq!(r.sam.sums(), e.step.sam.sums(), "SAM sums are bitwise");
        assert_eq!(r.correct, e.step.correct);
        for (pr, ps) in reference.params().iter().zip(sharded.params().iter()) {
            let diff = pr.grad().max_abs_diff(ps.grad());
            assert!(diff < 1e-4, "grad {} off by {diff}", pr.name());
        }
        assert!(!e.worker_mem.is_empty());
        assert!(!e.ops.is_empty());
    }

    #[test]
    fn engine_gradients_are_bit_identical_across_worker_counts() {
        let (_, inputs, labels) = setup(12, 6);
        let mut grads: Vec<Vec<Vec<f32>>> = Vec::new();
        let mut losses = Vec::new();
        for workers in [2usize, 3, 4] {
            let engine = Engine::new(workers).unwrap();
            let (mut net, _, _) = setup(12, 6);
            let e = engine
                .run_iteration(
                    &mut net,
                    None,
                    &Method::Skipper {
                        checkpoints: 2,
                        percentile: 30.0,
                    },
                    &inputs,
                    &labels,
                    5,
                    SamMetric::SpikeSum,
                    SkipPolicy::SpikeActivity,
                )
                .unwrap();
            losses.push(e.step.loss.to_bits());
            grads.push(
                net.params()
                    .iter()
                    .map(|p| p.grad().data().to_vec())
                    .collect(),
            );
        }
        assert!(losses.windows(2).all(|w| w[0] == w[1]));
        assert!(grads.windows(2).all(|w| w[0] == w[1]), "grad bits differ");
    }

    #[test]
    fn engine_skipper_matches_unsharded_skip_schedule() {
        let (mut reference, inputs, labels) = setup(13, 5);
        let r = checkpointed_step(&mut reference, &inputs, &labels, 9, 2, 40.0);
        let engine = Engine::new(3).unwrap();
        let (mut sharded, _, _) = setup(13, 5);
        let e = engine
            .run_iteration(
                &mut sharded,
                None,
                &Method::Skipper {
                    checkpoints: 2,
                    percentile: 40.0,
                },
                &inputs,
                &labels,
                9,
                SamMetric::SpikeSum,
                SkipPolicy::SpikeActivity,
            )
            .unwrap();
        assert_eq!(r.skipped_steps, e.step.skipped_steps);
        assert_eq!(r.recomputed_steps, e.step.recomputed_steps);
        assert_eq!(r.loss.to_bits(), e.step.loss.to_bits());
        assert_eq!(r.sam.sums(), e.step.sam.sums());
    }
}
