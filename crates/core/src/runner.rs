//! [`TrainSession`]: one façade over all training methods, with the
//! measurement harness wrapped around every iteration.

use crate::bptt::bptt_step;
use crate::checkpoint::{checkpointed_step, checkpointed_step_with};
use crate::lbp::{lbp_step, LocalClassifiers};
use crate::method::Method;
use crate::sam::{SamMetric, SkipPolicy};
use crate::stats::BatchStats;
use crate::tbptt::tbptt_step;
use skipper_memprof::{reset_peaks, snapshot, take_op_log};
use skipper_snn::{
    softmax_cross_entropy, Optimizer, SpikingNetwork, StepCtx,
};
use skipper_tensor::Tensor;
use std::time::Instant;

/// A network + optimizer + training method, instrumented like the paper's
/// testbed: every [`train_batch`] resets the peak counters, drains the
/// kernel log, runs the method-specific step and the optimizer update, and
/// returns a [`BatchStats`] carrying loss/accuracy, wall time, peak
/// per-category memory and the kernel log for the GPU latency model.
///
/// [`train_batch`]: TrainSession::train_batch
pub struct TrainSession {
    net: SpikingNetwork,
    optimizer: Box<dyn Optimizer>,
    aux_optimizer: Option<Box<dyn Optimizer>>,
    aux: Option<LocalClassifiers>,
    method: Method,
    timesteps: usize,
    iteration: u64,
    sam_metric: SamMetric,
    skip_policy: SkipPolicy,
}

impl std::fmt::Debug for TrainSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainSession")
            .field("net", &self.net.name())
            .field("method", &self.method)
            .field("timesteps", &self.timesteps)
            .field("iteration", &self.iteration)
            .field("lr", &self.optimizer.learning_rate())
            .finish()
    }
}

impl TrainSession {
    /// Create a session. For [`Method::TbpttLbp`] the auxiliary
    /// classifiers are built immediately (and trained with SGD at the main
    /// optimizer's learning rate unless [`set_aux_optimizer`] is called).
    ///
    /// [`set_aux_optimizer`]: TrainSession::set_aux_optimizer
    pub fn new(
        net: SpikingNetwork,
        optimizer: Box<dyn Optimizer>,
        method: Method,
        timesteps: usize,
    ) -> TrainSession {
        let aux = match &method {
            Method::TbpttLbp { taps, .. } => Some(LocalClassifiers::new(
                &net,
                taps,
                net.num_classes(),
                0xA0A0,
            )),
            _ => None,
        };
        let aux_optimizer: Option<Box<dyn Optimizer>> = aux
            .as_ref()
            .map(|_| Box::new(skipper_snn::Adam::new(optimizer.learning_rate())) as Box<dyn Optimizer>);
        TrainSession {
            net,
            optimizer,
            aux_optimizer,
            aux,
            method,
            timesteps,
            iteration: 0,
            sam_metric: SamMetric::default(),
            skip_policy: SkipPolicy::default(),
        }
    }

    /// Choose the activity statistic Skipper thresholds on (default: the
    /// paper's spike sum; see [`SamMetric`]).
    pub fn set_sam_metric(&mut self, metric: SamMetric) {
        self.sam_metric = metric;
    }

    /// Choose how Skipper selects the skipped timesteps (default: the
    /// paper's SAM/SST policy; [`SkipPolicy::Random`] is the temporal-
    /// dropout ablation).
    pub fn set_skip_policy(&mut self, policy: SkipPolicy) {
        self.skip_policy = policy;
    }

    /// The wrapped network.
    pub fn net(&self) -> &SpikingNetwork {
        &self.net
    }

    /// Mutable network access (e.g. for schedules or surgery).
    pub fn net_mut(&mut self) -> &mut SpikingNetwork {
        &mut self.net
    }

    /// Dismantle the session, returning the trained network.
    pub fn into_net(self) -> SpikingNetwork {
        self.net
    }

    /// The training method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// Switch the method between iterations (used by sweep harnesses).
    pub fn set_method(&mut self, method: Method) {
        if let Method::TbpttLbp { taps, .. } = &method {
            let rebuild = self
                .aux
                .as_ref()
                .map_or(true, |aux| aux.taps() != taps.as_slice());
            if rebuild {
                self.aux = Some(LocalClassifiers::new(
                    &self.net,
                    taps,
                    self.net.num_classes(),
                    0xA0A0,
                ));
                self.aux_optimizer = Some(Box::new(skipper_snn::Adam::new(
                    self.optimizer.learning_rate(),
                )));
            }
        }
        self.method = method;
    }

    /// The simulation horizon `T`.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Replace the optimizer of the auxiliary (LBP) classifiers.
    pub fn set_aux_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.aux_optimizer = Some(optimizer);
    }

    /// Iterations run so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Train on one batch: `inputs` is the spike sequence (length `T`,
    /// elements `[B,C,H,W]`), `labels` one class per sample.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the session's `timesteps`, or
    /// if the method configuration is structurally impossible (e.g.
    /// `C > T`).
    pub fn train_batch(&mut self, inputs: &[Tensor], labels: &[usize]) -> BatchStats {
        assert_eq!(inputs.len(), self.timesteps, "input horizon vs session T");
        let batch_size = inputs[0].shape()[0];
        self.iteration += 1;
        let iter_seed = self.iteration;
        reset_peaks();
        take_op_log(); // drop kernels logged outside the iteration
        let start = Instant::now();
        let result = match self.method.clone() {
            Method::Bptt => bptt_step(&mut self.net, inputs, labels, iter_seed),
            Method::Checkpointed { checkpoints } => {
                checkpointed_step(&mut self.net, inputs, labels, iter_seed, checkpoints, 0.0)
            }
            Method::Skipper {
                checkpoints,
                percentile,
            } => checkpointed_step_with(
                &mut self.net,
                inputs,
                labels,
                iter_seed,
                checkpoints,
                percentile,
                self.sam_metric,
                self.skip_policy,
            ),
            Method::Tbptt { window } => {
                tbptt_step(&mut self.net, inputs, labels, iter_seed, window)
            }
            Method::TbpttLbp { window, .. } => {
                let aux = self.aux.as_mut().expect("aux classifiers built in new()");
                lbp_step(&mut self.net, aux, inputs, labels, iter_seed, window)
            }
        };
        self.optimizer.step(self.net.params_mut());
        self.net.params_mut().zero_grads();
        if let (Some(aux), Some(opt)) = (self.aux.as_mut(), self.aux_optimizer.as_mut()) {
            opt.step(aux.store_mut());
            aux.store_mut().zero_grads();
        }
        let wall = start.elapsed();
        BatchStats {
            loss: result.loss,
            correct: result.correct,
            batch_size,
            timesteps: self.timesteps,
            recomputed_steps: result.recomputed_steps,
            skipped_steps: result.skipped_steps,
            wall,
            mem: snapshot(),
            ops: take_op_log(),
        }
    }

    /// Evaluate one batch (plain forward, no dropout, no gradients).
    /// Returns `(mean loss, correct)`.
    pub fn eval_batch(&self, inputs: &[Tensor], labels: &[usize]) -> (f64, usize) {
        let batch = inputs[0].shape()[0];
        let mut state = self.net.init_state(batch);
        let mut logits: Option<Tensor> = None;
        for (t, input) in inputs.iter().enumerate() {
            let out = self.net.step_infer(input, &mut state, &StepCtx::eval(t));
            match logits.as_mut() {
                Some(l) => l.add_assign(&out.logits),
                None => logits = Some(out.logits),
            }
        }
        let mut logits = logits.expect("T ≥ 1");
        logits.scale_assign(1.0 / inputs.len() as f32); // time-averaged readout
        let loss = softmax_cross_entropy(&logits, labels);
        (loss.loss, loss.correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, Adam, Encoder, ModelConfig, PoissonEncoder};
    use skipper_tensor::XorShiftRng;

    fn session(method: Method) -> TrainSession {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        TrainSession::new(net, Box::new(Adam::new(1e-3)), method, 8)
    }

    fn batch(seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
        let spikes = PoissonEncoder::default().encode(&frames, 8, &mut rng);
        (spikes, vec![0, 1, 2, 3])
    }

    #[test]
    fn every_method_trains_a_batch() {
        let methods = [
            Method::Bptt,
            Method::Checkpointed { checkpoints: 2 },
            Method::Skipper {
                checkpoints: 2,
                percentile: 25.0,
            },
            Method::Tbptt { window: 4 },
            Method::TbpttLbp {
                window: 4,
                taps: vec![1, 2],
            },
        ];
        for method in methods {
            let mut s = session(method.clone());
            let (inputs, labels) = batch(1);
            let stats = s.train_batch(&inputs, &labels);
            assert!(stats.loss.is_finite(), "{method} loss");
            assert!(!stats.ops.is_empty(), "{method} must log kernels");
            assert!(stats.peak_bytes() > 0);
            assert_eq!(stats.batch_size, 4);
        }
    }

    #[test]
    fn optimizer_changes_weights() {
        let mut s = session(Method::Bptt);
        let before: Vec<f32> = s.net().params().iter().next().unwrap().value().data().to_vec();
        let (inputs, labels) = batch(2);
        s.train_batch(&inputs, &labels);
        let after = s.net().params().iter().next().unwrap().value();
        assert_ne!(before.as_slice(), after.data());
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_batch() {
        let mut s = session(Method::Skipper {
            checkpoints: 2,
            percentile: 25.0,
        });
        let (inputs, labels) = batch(3);
        let first = s.train_batch(&inputs, &labels).loss;
        for _ in 0..14 {
            s.train_batch(&inputs, &labels);
        }
        let last = s.train_batch(&inputs, &labels).loss;
        assert!(
            last < first,
            "loss should fall on a memorisable batch: {first} → {last}"
        );
    }

    #[test]
    fn eval_batch_runs_without_gradients() {
        let s = session(Method::Bptt);
        let (inputs, labels) = batch(4);
        let (loss, correct) = s.eval_batch(&inputs, &labels);
        assert!(loss.is_finite());
        assert!(correct <= labels.len());
    }

    #[test]
    fn skipper_stats_report_skips() {
        let mut s = session(Method::Skipper {
            checkpoints: 2,
            percentile: 50.0,
        });
        let (inputs, labels) = batch(5);
        let stats = s.train_batch(&inputs, &labels);
        assert!(stats.skipped_steps > 0);
        assert_eq!(stats.skipped_steps + stats.recomputed_steps, 8);
    }
}
