//! [`TrainSession`]: one façade over all training methods, with the
//! measurement harness wrapped around every iteration.

use crate::bptt::bptt_step;
use crate::builder::SessionBuilder;
use crate::checkpoint::{checkpointed_step, checkpointed_step_with};
use crate::cluster::Coordinator;
use crate::engine::Engine;
use crate::error::SkipperError;
use crate::governor::{relieve_pressure, GovernorAction};
use crate::lbp::{lbp_step, LocalClassifiers};
use crate::method::Method;
use crate::resume::SessionState;
use crate::sam::{SamMetric, SkipPolicy};
use crate::stats::{BatchStats, EvalStats};
use crate::tbptt::tbptt_step;
use skipper_memprof::{reset_peaks, snapshot, take_op_log, MemorySnapshot, OpLog};
use skipper_snn::serialize::{apply_records, ParamRecord};
use skipper_snn::{Optimizer, OptimizerState, SpikingNetwork};
use skipper_tensor::Tensor;
use std::path::Path;
use std::time::Instant;

/// Divergence-sentinel policy: what counts as a fault and how hard to try
/// to recover before giving up.
///
/// With sentinels enabled (see [`TrainSession::enable_sentinels`]) every
/// iteration's loss and gradient norm are checked *before* the optimizer
/// applies the update. A faulty iteration is rolled back to the last known
/// good state, the learning rate is multiplied by `lr_backoff`, and the
/// batch is retried under a fresh iteration seed — at most `max_retries`
/// times, after which [`SkipperError::Divergence`] is returned.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Gradient L2-norm above which an iteration is declared divergent.
    pub max_grad_norm: f64,
    /// Retries per batch before surfacing [`SkipperError::Divergence`].
    pub max_retries: u32,
    /// Learning-rate multiplier applied on every recovery (compounds).
    pub lr_backoff: f32,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            max_grad_norm: 1e6,
            max_retries: 2,
            lr_backoff: 0.5,
        }
    }
}

/// Raw (untracked) copy of optimizer state for in-memory rollback. Holding
/// plain `Vec<f32>` instead of `Tensor`s keeps the rollback buffer out of
/// the memory profiler, so sentinels do not perturb the measurements the
/// harness exists to take.
struct RawOptim {
    kind: String,
    scalars: Vec<(String, f64)>,
    tensors: Vec<(String, Vec<usize>, Vec<f32>)>,
}

impl RawOptim {
    fn capture(state: OptimizerState) -> RawOptim {
        RawOptim {
            kind: state.kind,
            scalars: state.scalars,
            tensors: state
                .tensors
                .into_iter()
                .map(|(name, t)| (name, t.shape().dims().to_vec(), t.data().to_vec()))
                .collect(),
        }
    }

    fn to_state(&self) -> OptimizerState {
        OptimizerState {
            kind: self.kind.clone(),
            scalars: self.scalars.clone(),
            tensors: self
                .tensors
                .iter()
                .map(|(name, dims, data)| {
                    (
                        name.clone(),
                        Tensor::from_vec(data.clone(), dims.as_slice()),
                    )
                })
                .collect(),
        }
    }
}

/// The last known good training state, captured after each successful
/// iteration while sentinels are enabled.
struct RollbackState {
    params: Vec<Vec<f32>>,
    optim: RawOptim,
    aux_params: Option<Vec<Vec<f32>>>,
    aux_optim: Option<RawOptim>,
    sam_sums: Vec<f64>,
}

/// A network + optimizer + training method, instrumented like the paper's
/// testbed: every [`train_batch`] resets the peak counters, drains the
/// kernel log, runs the method-specific step and the optimizer update, and
/// returns a [`BatchStats`] carrying loss/accuracy, wall time, peak
/// per-category memory and the kernel log for the GPU latency model.
///
/// [`train_batch`]: TrainSession::train_batch
pub struct TrainSession {
    net: SpikingNetwork,
    optimizer: Box<dyn Optimizer>,
    aux_optimizer: Option<Box<dyn Optimizer>>,
    aux: Option<LocalClassifiers>,
    method: Method,
    timesteps: usize,
    iteration: u64,
    sam_metric: SamMetric,
    skip_policy: SkipPolicy,
    /// Per-timestep SAM sums of the last completed iteration (snapshotted
    /// so a resumed session knows the activity history).
    last_sam_sums: Vec<f64>,
    sentinel: Option<SentinelConfig>,
    last_good: Option<RollbackState>,
    /// Fault injection: force the loss to NaN at this iteration.
    poison_loss_at: Option<u64>,
    mem_budget: Option<u64>,
    governor_log: Vec<GovernorAction>,
    /// The data-parallel engine, present when the session was built with
    /// two or more workers.
    engine: Option<Engine>,
    /// The distributed coordinator, present when the session was built
    /// with [`SessionBuilder::cluster`]. Takes precedence over `engine`.
    cluster: Option<Coordinator>,
}

impl std::fmt::Debug for TrainSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainSession")
            .field("net", &self.net.name())
            .field("method", &self.method)
            .field("timesteps", &self.timesteps)
            .field("iteration", &self.iteration)
            .field("lr", &self.optimizer.learning_rate())
            .finish()
    }
}

impl TrainSession {
    /// Start a [`SessionBuilder`] — the construction path that validates
    /// the method up front and exposes every knob (optimizer, SAM metric,
    /// skip policy, sentinels, memory budget, workers) in one place.
    pub fn builder(net: SpikingNetwork, method: Method, timesteps: usize) -> SessionBuilder {
        SessionBuilder::new(net, method, timesteps)
    }

    /// The real constructor behind [`SessionBuilder::build`]. For [`Method::TbpttLbp`]
    /// the auxiliary classifiers are built immediately and trained with
    /// Adam at the main optimizer's learning rate unless `aux_optimizer`
    /// is given.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        net: SpikingNetwork,
        optimizer: Box<dyn Optimizer>,
        method: Method,
        timesteps: usize,
        sam_metric: SamMetric,
        skip_policy: SkipPolicy,
        aux_optimizer: Option<Box<dyn Optimizer>>,
        sentinel: Option<SentinelConfig>,
        mem_budget: Option<u64>,
        workers: usize,
        cluster: Option<Coordinator>,
    ) -> Result<TrainSession, SkipperError> {
        let aux = match &method {
            Method::TbpttLbp { taps, .. } => {
                Some(LocalClassifiers::new(&net, taps, net.num_classes(), 0xA0A0))
            }
            _ => None,
        };
        let aux_optimizer: Option<Box<dyn Optimizer>> = aux.as_ref().map(|_| {
            aux_optimizer.unwrap_or_else(|| {
                Box::new(skipper_snn::Adam::new(optimizer.learning_rate())) as Box<dyn Optimizer>
            })
        });
        let engine = if workers >= 2 && cluster.is_none() {
            Some(Engine::new(workers)?)
        } else {
            None
        };
        Ok(TrainSession {
            net,
            optimizer,
            aux_optimizer,
            aux,
            method,
            timesteps,
            iteration: 0,
            sam_metric,
            skip_policy,
            last_sam_sums: Vec::new(),
            sentinel,
            last_good: None,
            poison_loss_at: None,
            mem_budget,
            governor_log: Vec::new(),
            engine,
            cluster,
        })
    }

    /// The distributed coordinator, when this session runs over one.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.cluster.as_ref()
    }

    /// Data-parallel worker threads this session runs on (`1` means the
    /// unsharded reference path).
    pub fn workers(&self) -> usize {
        self.engine.as_ref().map_or(1, Engine::workers)
    }

    /// Choose the activity statistic Skipper thresholds on (default: the
    /// paper's spike sum; see [`SamMetric`]).
    pub fn set_sam_metric(&mut self, metric: SamMetric) {
        self.sam_metric = metric;
    }

    /// Choose how Skipper selects the skipped timesteps (default: the
    /// paper's SAM/SST policy; [`SkipPolicy::Random`] is the temporal-
    /// dropout ablation).
    pub fn set_skip_policy(&mut self, policy: SkipPolicy) {
        self.skip_policy = policy;
    }

    /// The wrapped network.
    pub fn net(&self) -> &SpikingNetwork {
        &self.net
    }

    /// Mutable network access (e.g. for schedules or surgery).
    pub fn net_mut(&mut self) -> &mut SpikingNetwork {
        &mut self.net
    }

    /// Dismantle the session, returning the trained network.
    pub fn into_net(self) -> SpikingNetwork {
        self.net
    }

    /// The training method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// Switch the method between iterations (used by sweep harnesses).
    pub fn set_method(&mut self, method: Method) {
        if let Method::TbpttLbp { taps, .. } = &method {
            let rebuild = self
                .aux
                .as_ref()
                .is_none_or(|aux| aux.taps() != taps.as_slice());
            if rebuild {
                self.aux = Some(LocalClassifiers::new(
                    &self.net,
                    taps,
                    self.net.num_classes(),
                    0xA0A0,
                ));
                self.aux_optimizer = Some(Box::new(skipper_snn::Adam::new(
                    self.optimizer.learning_rate(),
                )));
            }
        }
        self.method = method;
    }

    /// The simulation horizon `T`.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Replace the optimizer of the auxiliary (LBP) classifiers.
    pub fn set_aux_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.aux_optimizer = Some(optimizer);
    }

    /// Iterations run so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Train on one batch: `inputs` is the spike sequence (length `T`,
    /// elements `[B,C,H,W]`), `labels` one class per sample.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the session's `timesteps`, or
    /// on any [`SkipperError`] from [`try_train_batch`] — a structurally
    /// impossible method configuration (e.g. `C > T`) or divergence beyond
    /// the sentinels' retry budget. Sessions from
    /// [`builder`](TrainSession::builder) have already rejected invalid
    /// methods at [`build`](crate::builder::SessionBuilder::build).
    ///
    /// [`try_train_batch`]: TrainSession::try_train_batch
    pub fn train_batch(&mut self, inputs: &[Tensor], labels: &[usize]) -> BatchStats {
        self.try_train_batch(inputs, labels)
            // lint:allow(panic): documented contract: train_batch panics where try_train_batch returns Err
            .unwrap_or_else(|e| panic!("unrecoverable training fault: {e}"))
    }

    /// Like [`train_batch`], but surfaces unrecoverable faults as
    /// [`SkipperError`] instead of panicking.
    ///
    /// A structurally impossible method configuration (zero or
    /// over-horizon checkpoints, a percentile outside `[0, 100)`, a bad
    /// window or tap list) is reported as a typed
    /// [`SkipperError::Method`] before any compute runs.
    ///
    /// With sentinels enabled (see [`enable_sentinels`]) a divergent
    /// iteration — non-finite loss or a gradient L2-norm above the
    /// configured limit — is detected **before** the optimizer applies the
    /// update. The session rolls back to the last known good state, backs
    /// the learning rate off, and retries the batch under a fresh
    /// iteration seed. Recoveries that happened on the way to a successful
    /// iteration are reported in [`BatchStats::recoveries`]; once the
    /// retry budget is exhausted [`SkipperError::Divergence`] is returned
    /// with the session left at the last good state (gradients zeroed).
    ///
    /// [`train_batch`]: TrainSession::train_batch
    /// [`enable_sentinels`]: TrainSession::enable_sentinels
    pub fn try_train_batch(
        &mut self,
        inputs: &[Tensor],
        labels: &[usize],
    ) -> Result<BatchStats, SkipperError> {
        assert_eq!(inputs.len(), self.timesteps, "input horizon vs session T");
        self.method.validate_structure(&self.net, self.timesteps)?;
        let batch_size = inputs[0].shape()[0];
        let mut recoveries: u32 = 0;
        loop {
            self.iteration += 1;
            let iter_seed = self.iteration;
            let _iter = skipper_obs::span!(
                "iteration",
                iter = self.iteration,
                method = self.method.to_string()
            );
            reset_peaks();
            take_op_log(); // drop kernels logged outside the iteration
            let start = Instant::now();
            let mut worker_mem: Vec<MemorySnapshot> = Vec::new();
            let mut engine_ops = OpLog::new();
            let mut result = if let Some(cluster) = self.cluster.as_mut() {
                cluster.run_iteration(
                    &mut self.net,
                    &self.method,
                    inputs,
                    labels,
                    iter_seed,
                    self.sam_metric,
                    self.skip_policy,
                )?
            } else if let Some(engine) = &self.engine {
                let outcome = engine.run_iteration(
                    &mut self.net,
                    self.aux.as_mut(),
                    &self.method,
                    inputs,
                    labels,
                    iter_seed,
                    self.sam_metric,
                    self.skip_policy,
                )?;
                worker_mem = outcome.worker_mem;
                engine_ops = outcome.ops;
                outcome.step
            } else {
                match self.method.clone() {
                    Method::Bptt => bptt_step(&mut self.net, inputs, labels, iter_seed),
                    Method::Checkpointed { checkpoints } => checkpointed_step(
                        &mut self.net,
                        inputs,
                        labels,
                        iter_seed,
                        checkpoints,
                        0.0,
                    ),
                    Method::Skipper {
                        checkpoints,
                        percentile,
                    } => checkpointed_step_with(
                        &mut self.net,
                        inputs,
                        labels,
                        iter_seed,
                        checkpoints,
                        percentile,
                        self.sam_metric,
                        self.skip_policy,
                    ),
                    Method::Tbptt { window } => {
                        tbptt_step(&mut self.net, inputs, labels, iter_seed, window)
                    }
                    Method::TbpttLbp { window, .. } => {
                        let aux = self
                            .aux
                            .as_mut()
                            // lint:allow(panic): aux classifiers are built at construction for TbpttLbp (method validation)
                            .expect("aux classifiers built at construction");
                        lbp_step(&mut self.net, aux, inputs, labels, iter_seed, window)
                    }
                }
            };
            if self.poison_loss_at == Some(self.iteration) {
                result.loss = f64::NAN;
            }
            if let Some(cfg) = self.sentinel.clone() {
                if let Some(detail) = self.detect_fault(result.loss, cfg.max_grad_norm) {
                    // Discard the faulty attempt's gradients; the update
                    // was never applied, so the weights are untouched.
                    self.net.params_mut().zero_grads();
                    if let Some(aux) = self.aux.as_mut() {
                        aux.store_mut().zero_grads();
                    }
                    if recoveries >= cfg.max_retries {
                        self.apply_rollback();
                        skipper_obs::instant!(
                            skipper_obs::Level::Warn,
                            "sentinel.divergence",
                            iteration = self.iteration,
                            detail = detail.as_str(),
                            retries = recoveries,
                        );
                        return Err(SkipperError::Divergence {
                            iteration: self.iteration,
                            detail,
                        });
                    }
                    recoveries += 1;
                    // Compound the backoff across retries: read the rate
                    // before the rollback restores the captured one.
                    let lr = self.optimizer.learning_rate() * cfg.lr_backoff;
                    let aux_lr = self
                        .aux_optimizer
                        .as_ref()
                        .map(|o| o.learning_rate() * cfg.lr_backoff);
                    self.apply_rollback();
                    self.optimizer.set_learning_rate(lr);
                    if let (Some(opt), Some(lr)) = (self.aux_optimizer.as_mut(), aux_lr) {
                        opt.set_learning_rate(lr);
                    }
                    skipper_obs::counter_add("sentinel.recoveries", 1.0);
                    skipper_obs::instant!(
                        skipper_obs::Level::Warn,
                        "sentinel.recovery",
                        iteration = self.iteration,
                        detail = detail.as_str(),
                        lr = lr,
                    );
                    continue;
                }
            }
            self.last_sam_sums = result.sam.sums().to_vec();
            {
                let _opt = skipper_obs::span!("optimizer_step");
                self.optimizer.step(self.net.params_mut());
                self.net.params_mut().zero_grads();
                if let (Some(aux), Some(opt)) = (self.aux.as_mut(), self.aux_optimizer.as_mut()) {
                    opt.step(aux.store_mut());
                    aux.store_mut().zero_grads();
                }
            }
            let wall = start.elapsed();
            let mut mem = snapshot();
            for wm in &worker_mem {
                mem = mem.merge_max(wm);
            }
            let mut ops = take_op_log();
            ops.extend(engine_ops);
            let stats = BatchStats {
                loss: result.loss,
                correct: result.correct,
                batch_size,
                timesteps: self.timesteps,
                recomputed_steps: result.recomputed_steps,
                skipped_steps: result.skipped_steps,
                recoveries,
                wall,
                mem,
                worker_mem,
                ops,
            };
            skipper_memprof::publish_peaks(&stats.mem);
            skipper_obs::observe("iteration.wall_us", wall.as_micros() as f64);
            if let Some(budget) = self.mem_budget {
                if stats.peak_bytes() > budget {
                    let layers = self.net.spiking_layer_count();
                    if let Some(to) = relieve_pressure(&self.method, self.timesteps, layers) {
                        let action = GovernorAction {
                            iteration: self.iteration,
                            peak_bytes: stats.peak_bytes(),
                            budget_bytes: budget,
                            from: self.method.clone(),
                            to: to.clone(),
                        };
                        action.emit();
                        self.governor_log.push(action);
                        self.set_method(to);
                    }
                }
            }
            if self.sentinel.is_some() {
                self.last_good = Some(self.capture_rollback());
            }
            return Ok(stats);
        }
    }

    /// Returns a fault description if the just-computed iteration is
    /// divergent: non-finite loss, or gradient L2-norm above `max_norm`.
    fn detect_fault(&self, loss: f64, max_norm: f64) -> Option<String> {
        if !loss.is_finite() {
            return Some(format!("non-finite loss ({loss})"));
        }
        let norm = self.grad_norm();
        if !norm.is_finite() || norm > max_norm {
            return Some(format!(
                "gradient norm {norm:.3e} exceeds limit {max_norm:.3e}"
            ));
        }
        None
    }

    /// L2-norm over all model-parameter gradients.
    fn grad_norm(&self) -> f64 {
        let mut sum = 0.0f64;
        for p in self.net.params().iter() {
            for &g in p.grad().data() {
                sum += f64::from(g) * f64::from(g);
            }
        }
        sum.sqrt()
    }

    /// Capture the current weights + optimizer state as raw (untracked)
    /// buffers for in-memory rollback.
    fn capture_rollback(&self) -> RollbackState {
        RollbackState {
            params: self
                .net
                .params()
                .iter()
                .map(|p| p.value().data().to_vec())
                .collect(),
            optim: RawOptim::capture(self.optimizer.export_state()),
            aux_params: self.aux.as_ref().map(|aux| {
                aux.store()
                    .iter()
                    .map(|p| p.value().data().to_vec())
                    .collect()
            }),
            aux_optim: self
                .aux_optimizer
                .as_ref()
                .map(|o| RawOptim::capture(o.export_state())),
            sam_sums: self.last_sam_sums.clone(),
        }
    }

    /// Restore the last known good state, if one was captured. Without one
    /// (fault on the very first iteration) this is a no-op — the weights
    /// were never touched by the faulty attempt anyway.
    fn apply_rollback(&mut self) {
        let Some(good) = &self.last_good else { return };
        for (p, data) in self.net.params_mut().iter_mut().zip(&good.params) {
            p.value_mut().data_mut().copy_from_slice(data);
        }
        self.optimizer
            .import_state(&good.optim.to_state())
            // lint:allow(panic): rollback state was captured from this same optimizer earlier in the run
            .expect("rollback state was captured from this optimizer");
        if let (Some(aux), Some(saved)) = (self.aux.as_mut(), good.aux_params.as_ref()) {
            for (p, data) in aux.store_mut().iter_mut().zip(saved) {
                p.value_mut().data_mut().copy_from_slice(data);
            }
        }
        if let (Some(opt), Some(saved)) = (self.aux_optimizer.as_mut(), good.aux_optim.as_ref()) {
            opt.import_state(&saved.to_state())
                // lint:allow(panic): rollback state was captured from this same optimizer earlier in the run
                .expect("rollback state was captured from this optimizer");
        }
        self.last_sam_sums = good.sam_sums.clone();
    }

    /// Turn the divergence sentinels on (see [`SentinelConfig`]).
    pub fn enable_sentinels(&mut self, cfg: SentinelConfig) {
        self.sentinel = Some(cfg);
    }

    /// Turn the divergence sentinels off and drop the rollback buffer.
    pub fn disable_sentinels(&mut self) {
        self.sentinel = None;
        self.last_good = None;
    }

    /// Fault injection for tests and resilience drills: the loss of the
    /// given (1-based) iteration is forced to NaN after the step runs.
    pub fn inject_loss_poison(&mut self, iteration: u64) {
        self.poison_loss_at = Some(iteration);
    }

    /// Set (or clear) the tensor-memory budget the governor enforces.
    /// When an iteration's peak tensor bytes exceed the budget, the method
    /// is stepped toward the cheaper end of the paper's knobs (see
    /// [`crate::governor`]) starting with the next iteration.
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.mem_budget = bytes;
    }

    /// Every adjustment the memory governor has made, oldest first.
    pub fn governor_log(&self) -> &[GovernorAction] {
        &self.governor_log
    }

    /// The main optimizer's current learning rate (reflects sentinel
    /// backoffs).
    pub fn learning_rate(&self) -> f32 {
        self.optimizer.learning_rate()
    }

    /// Per-timestep SAM sums of the last completed iteration.
    pub fn last_sam_sums(&self) -> &[f64] {
        &self.last_sam_sums
    }

    /// Capture everything needed to continue this session bit-exactly:
    /// weights, complete optimizer state, iteration counter (the seed of
    /// every iteration's randomness), method knobs and SAM history.
    pub fn capture_state(&self) -> SessionState {
        let records = |store: &skipper_snn::ParamStore| -> Vec<ParamRecord> {
            store
                .iter()
                .map(|p| ParamRecord {
                    name: p.name().to_string(),
                    value: p.value().clone(),
                })
                .collect()
        };
        SessionState {
            iteration: self.iteration,
            timesteps: self.timesteps,
            method: self.method.clone(),
            sam_metric: self.sam_metric,
            skip_policy: self.skip_policy,
            sam_sums: self.last_sam_sums.clone(),
            params: records(self.net.params()),
            optim: self.optimizer.export_state(),
            aux: match (self.aux.as_ref(), self.aux_optimizer.as_ref()) {
                (Some(aux), Some(opt)) => Some((records(aux.store()), opt.export_state())),
                _ => None,
            },
        }
    }

    /// Atomically write a durable snapshot of this session to `path`
    /// (see [`crate::resume`] for the container format).
    ///
    /// # Errors
    ///
    /// Propagates I/O and encoding errors.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SkipperError> {
        crate::resume::write_snapshot(&self.capture_state(), path)
    }

    /// Restore `state` into this session. The session must have been built
    /// with the same network topology, horizon `T` and optimizer kind;
    /// continuing afterwards reproduces the uninterrupted run bit-exactly.
    ///
    /// # Errors
    ///
    /// Fails on a horizon mismatch, unknown parameters or shape
    /// mismatches, or an optimizer-kind mismatch — without a partial
    /// restore having been applied to the optimizer (parameter writes may
    /// have happened; do not keep training a session whose restore
    /// failed).
    pub fn restore_state(&mut self, state: &SessionState) -> Result<(), SkipperError> {
        if state.timesteps != self.timesteps {
            return Err(SkipperError::Config(format!(
                "snapshot horizon T={} but session was built with T={}",
                state.timesteps, self.timesteps
            )));
        }
        self.set_method(state.method.clone());
        self.sam_metric = state.sam_metric;
        self.skip_policy = state.skip_policy;
        apply_records(self.net.params_mut(), state.params.clone())?;
        self.optimizer.import_state(&state.optim)?;
        match (&state.aux, self.aux.as_mut()) {
            (Some((aux_params, aux_optim)), Some(aux)) => {
                apply_records(aux.store_mut(), aux_params.clone())?;
                self.aux_optimizer
                    .as_mut()
                    // lint:allow(panic): aux optimizer is constructed whenever aux classifiers exist
                    .expect("aux optimizer exists whenever aux classifiers do")
                    .import_state(aux_optim)?;
            }
            (Some(_), None) => {
                return Err(SkipperError::Config(
                    "snapshot carries auxiliary classifier state but the session method has none"
                        .into(),
                ))
            }
            _ => {}
        }
        self.iteration = state.iteration;
        self.last_sam_sums = state.sam_sums.clone();
        self.last_good = None;
        Ok(())
    }

    /// Resume from a snapshot file written by [`save_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails descriptively on missing/corrupt/truncated files and on any
    /// mismatch with this session (see [`restore_state`]).
    ///
    /// [`save_snapshot`]: TrainSession::save_snapshot
    /// [`restore_state`]: TrainSession::restore_state
    pub fn resume_from(&mut self, path: impl AsRef<Path>) -> Result<(), SkipperError> {
        let state = crate::resume::read_snapshot(path)?;
        self.restore_state(&state)
    }

    /// Evaluate one batch (plain forward, no dropout, no gradients).
    ///
    /// Implemented on the public forward-only path: a skipping-free
    /// [`InferSession`](crate::InferSession) over a storage-sharing view
    /// of the network. The logits are bit-identical to running the
    /// `InferSession` directly (a regression test holds this).
    pub fn eval_batch(&self, inputs: &[Tensor], labels: &[usize]) -> EvalStats {
        crate::InferSession::new(self.net.share())
            .eval(inputs, labels)
            // lint:allow(panic): T ≥ 1 and the input shapes are validated at session build / by the caller's training batches
            .expect("eval batch is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, Adam, Encoder, ModelConfig, PoissonEncoder};
    use skipper_tensor::XorShiftRng;

    fn session(method: Method) -> TrainSession {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        TrainSession::builder(net, method, 8)
            .optimizer(Box::new(Adam::new(1e-3)))
            .workers(1)
            .build()
            .expect("valid method")
    }

    fn batch(seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
        let spikes = PoissonEncoder::default().encode(&frames, 8, &mut rng);
        (spikes, vec![0, 1, 2, 3])
    }

    #[test]
    fn every_method_trains_a_batch() {
        let methods = [
            Method::Bptt,
            Method::Checkpointed { checkpoints: 2 },
            Method::Skipper {
                checkpoints: 2,
                percentile: 25.0,
            },
            Method::Tbptt { window: 4 },
            Method::TbpttLbp {
                window: 4,
                taps: vec![1, 2],
            },
        ];
        for method in methods {
            let mut s = session(method.clone());
            let (inputs, labels) = batch(1);
            let stats = s.train_batch(&inputs, &labels);
            assert!(stats.loss.is_finite(), "{method} loss");
            assert!(!stats.ops.is_empty(), "{method} must log kernels");
            assert!(stats.peak_bytes() > 0);
            assert_eq!(stats.batch_size, 4);
        }
    }

    #[test]
    fn optimizer_changes_weights() {
        let mut s = session(Method::Bptt);
        let before: Vec<f32> = s
            .net()
            .params()
            .iter()
            .next()
            .unwrap()
            .value()
            .data()
            .to_vec();
        let (inputs, labels) = batch(2);
        s.train_batch(&inputs, &labels);
        let after = s.net().params().iter().next().unwrap().value();
        assert_ne!(before.as_slice(), after.data());
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_batch() {
        let mut s = session(Method::Skipper {
            checkpoints: 2,
            percentile: 25.0,
        });
        let (inputs, labels) = batch(3);
        let first = s.train_batch(&inputs, &labels).loss;
        for _ in 0..14 {
            s.train_batch(&inputs, &labels);
        }
        let last = s.train_batch(&inputs, &labels).loss;
        assert!(
            last < first,
            "loss should fall on a memorisable batch: {first} → {last}"
        );
    }

    #[test]
    fn eval_batch_runs_without_gradients() {
        let s = session(Method::Bptt);
        let (inputs, labels) = batch(4);
        let eval = s.eval_batch(&inputs, &labels);
        assert!(eval.loss.is_finite());
        assert!(eval.correct <= eval.total);
        assert_eq!(eval.total, labels.len());
        assert!((0.0..=1.0).contains(&eval.accuracy()));
    }

    #[test]
    fn unvalidated_build_defers_method_checks_to_the_first_batch() {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut s = TrainSession::builder(net, Method::Bptt, 8)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build_unvalidated()
            .expect("structurally sound config");
        assert_eq!(s.workers(), 1);
        let (inputs, labels) = batch(6);
        assert!(s.train_batch(&inputs, &labels).loss.is_finite());
    }

    #[test]
    fn eval_batch_is_bit_identical_to_infer_session() {
        // `eval_batch` is reimplemented on the forward-only path; the
        // two APIs must agree on every logit bit.
        let s = session(Method::Bptt);
        let (inputs, labels) = batch(9);
        let eval = s.eval_batch(&inputs, &labels);
        let infer = crate::InferSession::new(s.net().share());
        let direct = infer.eval(&inputs, &labels).unwrap();
        assert_eq!(eval.loss.to_bits(), direct.loss.to_bits());
        assert_eq!(eval.correct, direct.correct);
        let p = infer.predict(&inputs).unwrap();
        // And the prediction path reproduces the same logits as another
        // independent forward pass (stateless API, no hidden carryover).
        let q = infer.predict(&inputs).unwrap();
        for (a, b) in p.logits.data().iter().zip(q.logits.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sharded_session_reproduces_the_unsharded_loss_and_skips() {
        let mk = |workers: usize| {
            let net = custom_net(&ModelConfig {
                input_hw: 8,
                width_mult: 0.25,
                ..ModelConfig::default()
            });
            TrainSession::builder(
                net,
                Method::Skipper {
                    checkpoints: 2,
                    percentile: 25.0,
                },
                8,
            )
            .optimizer(Box::new(Adam::new(1e-3)))
            .workers(workers)
            .build()
            .expect("valid method")
        };
        let (inputs, labels) = batch(7);
        let mut reference = mk(1);
        let mut sharded = mk(4);
        assert_eq!(sharded.workers(), 4);
        // Iteration 1 starts from identical weights: the forward pass (and
        // with it loss, SAM and the skip schedule) is bitwise identical.
        let r = reference.train_batch(&inputs, &labels);
        let s = sharded.train_batch(&inputs, &labels);
        assert_eq!(r.loss.to_bits(), s.loss.to_bits(), "loss is bitwise");
        assert_eq!(r.skipped_steps, s.skipped_steps);
        assert_eq!(r.correct, s.correct);
        assert!(!s.worker_mem.is_empty());
        assert!(r.worker_mem.is_empty());
        // After one optimizer step the weights differ only by the f32
        // grouping of the gradient reduction; training stays on track.
        let r = reference.train_batch(&inputs, &labels);
        let s = sharded.train_batch(&inputs, &labels);
        assert!((r.loss - s.loss).abs() < 1e-3, "{} vs {}", r.loss, s.loss);
    }

    #[test]
    fn structurally_invalid_method_is_a_typed_error() {
        let mut s = session(Method::Bptt);
        s.set_method(Method::Checkpointed { checkpoints: 99 });
        let (inputs, labels) = batch(8);
        let err = s.try_train_batch(&inputs, &labels).unwrap_err();
        assert!(matches!(err, SkipperError::Method(_)), "{err}");
    }

    #[test]
    fn skipper_stats_report_skips() {
        // T = 16 leaves headroom under Eq. 7 (max p = 62.5 here), so the
        // 50th-percentile SST genuinely drops steps.
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut s = TrainSession::builder(
            net,
            Method::Skipper {
                checkpoints: 2,
                percentile: 50.0,
            },
            16,
        )
        .optimizer(Box::new(Adam::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method");
        let mut rng = XorShiftRng::new(5);
        let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
        let inputs = PoissonEncoder::default().encode(&frames, 16, &mut rng);
        let stats = s.train_batch(&inputs, &[0, 1, 2, 3]);
        assert!(stats.skipped_steps > 0);
        assert_eq!(stats.skipped_steps + stats.recomputed_steps, 16);
    }
}
