//! The Skipper paper's contribution: memory-efficient SNN-BPTT training.
//!
//! This crate implements, on top of the `skipper-snn` substrate, every
//! training regime the paper evaluates (Sections V–VII):
//!
//! * [`bptt`] — **baseline SNN-BPTT**: one autodiff graph spans all `T`
//!   timesteps; activation memory grows as `O(T)`.
//! * [`checkpoint`] — **temporal activation checkpointing** (Section V):
//!   a gradient-free first forward pass saves the neuron state at `C`
//!   boundaries; the backward pass re-executes one `T/C` segment at a time
//!   on a short-lived tape, handing `∂L/∂U` across boundaries. Memory is
//!   `O(T/C) + O(C)`, minimised at `C = √T` (Eq. 3), at the price of one
//!   extra forward pass (~33 %).
//! * also in [`checkpoint`] — **Skipper** (Section VI): the Spike Activity
//!   Monitor ([`sam`]) records `s_t = Σ_l sum(o_t^l)` during the first
//!   pass; before re-executing a segment, the Spike-Sum-Threshold
//!   `SST_c = percentile({s_t}_c, p)` is formed and every timestep with
//!   `s_t < SST_c` is skipped outright — a shallower recomputed graph that
//!   removes the checkpointing overhead *and* shrinks memory further
//!   (Eq. 6), with the `(1 − p/100)·T/C ≥ L_n` bound of Eq. 7.
//! * [`tbptt`] — **truncated BPTT** (Section III-C): per-window graphs with
//!   detached boundaries, the classic comparison point.
//! * [`lbp`] — **TBPTT-LBP** (Guo et al. \[28\]): temporal truncation plus
//!   locally supervised blocks with auxiliary classifiers, the related-work
//!   baseline of Table II / Fig. 16.
//!
//! [`runner::TrainSession`] wraps any of these behind one API and measures
//! what the paper measures: per-category peak tensor bytes, allocator
//! events, kernel logs (for the GPU latency model) and wall time.
//! [`analytic`] projects the same memory quantities from shapes alone, for
//! the configurations the paper itself extrapolates (Figs. 4 and 14).
//!
//! # Quickstart
//!
//! ```
//! use skipper_core::{Method, TrainSession};
//! use skipper_snn::{custom_net, Adam, ModelConfig, PoissonEncoder, Encoder};
//! use skipper_tensor::{Tensor, XorShiftRng};
//!
//! let net = custom_net(&ModelConfig {
//!     input_hw: 8,
//!     width_mult: 0.25,
//!     ..ModelConfig::default()
//! });
//! let mut session = TrainSession::builder(
//!     net,
//!     Method::Skipper { checkpoints: 2, percentile: 50.0 },
//!     16, // timesteps
//! )
//! .optimizer(Box::new(Adam::new(1e-3)))
//! .build()
//! .expect("the method is valid for this network and horizon");
//! let mut rng = XorShiftRng::new(1);
//! let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
//! let spikes = PoissonEncoder::default().encode(&frames, 16, &mut rng);
//! let stats = session.train_batch(&spikes, &[0, 1, 2, 3]);
//! assert!(stats.loss.is_finite());
//! assert!(stats.skipped_steps > 0);
//! ```

pub mod analytic;
pub mod bptt;
pub mod builder;
pub mod checkpoint;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod governor;
pub mod infer;
pub mod lbp;
pub mod method;
pub mod planner;
pub mod resume;
pub mod runner;
pub mod sam;
pub mod stats;
pub mod tbptt;
pub mod transport;

pub use analytic::{AnalyticBreakdown, AnalyticModel};
pub use builder::{SessionBuilder, WORKERS_ENV};
pub use cluster::{
    cluster_addr_from_env, run_worker, BackoffConfig, ClusterConfig, Coordinator, WorkerOptions,
    WorkerReport, CLUSTER_ADDR_ENV,
};
pub use error::SkipperError;
pub use governor::GovernorAction;
pub use infer::{InferSession, InferSkip, Prediction};
pub use lbp::LocalClassifiers;
pub use method::{Method, MethodError};
pub use planner::Planner;
pub use resume::{read_snapshot, write_snapshot, SessionState};
pub use runner::{SentinelConfig, TrainSession};
pub use sam::{
    decide_skips, max_checkpoints, max_skippable_percentile, percentile, SamMetric, SkipDecisions,
    SkipPolicy, SpikeActivityMonitor,
};
pub use stats::{BatchStats, EpochStats, EvalStats};
pub use transport::{ChannelConnector, ChaosConfig, InProcConnector, TcpConnector};
