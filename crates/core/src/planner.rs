//! Capacity planning: what fits on a device?
//!
//! The paper's capacity results — "an order of magnitude higher timesteps
//! at constant memory" (Fig. 14), "B=64 instead of B=8 on the Jetson"
//! (Fig. 15), "more simultaneous trainings for hyper-parameter search"
//! (Section IV) — are all instances of one question: given a device and a
//! training method, how far does the memory budget stretch? This module
//! answers it on top of the validated [`AnalyticModel`].

use crate::analytic::AnalyticModel;
use crate::method::Method;
use skipper_memprof::DeviceModel;

/// Capacity planner for one network on one device.
#[derive(Debug, Clone, Copy)]
pub struct Planner<'a> {
    model: AnalyticModel<'a>,
    device: &'a DeviceModel,
}

impl<'a> Planner<'a> {
    /// Plan for `model`'s network on `device`.
    pub fn new(model: AnalyticModel<'a>, device: &'a DeviceModel) -> Planner<'a> {
        Planner { model, device }
    }

    /// Whether one training instance fits.
    pub fn fits(&self, method: &Method, timesteps: usize, batch: usize) -> bool {
        self.device
            .fits(self.model.breakdown(method, timesteps, batch).total())
    }

    /// Largest batch size that fits at horizon `timesteps`
    /// (0 if even B=1 does not fit). Searched up to `limit`.
    pub fn max_batch(&self, method: &Method, timesteps: usize, limit: usize) -> usize {
        // Memory is monotone in B: binary search.
        let (mut lo, mut hi) = (0usize, limit.max(1));
        if self.fits(method, timesteps, hi) {
            self.trace_answer("planner.max_batch", method, hi);
            return hi;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.fits(method, timesteps, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.trace_answer("planner.max_batch", method, lo);
        lo
    }

    /// Largest horizon that fits at batch `batch` (0 if T=1 does not fit).
    /// Searched up to `limit`.
    pub fn max_timesteps(&self, method: &Method, batch: usize, limit: usize) -> usize {
        let (mut lo, mut hi) = (0usize, limit.max(1));
        if self.fits(method, hi, batch) {
            self.trace_answer("planner.max_timesteps", method, hi);
            return hi;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.fits(method, mid, batch) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.trace_answer("planner.max_timesteps", method, lo);
        lo
    }

    /// One Debug-level event per answered capacity query, so traces show
    /// what the planner decided (and for which method) alongside training.
    fn trace_answer(&self, name: &'static str, method: &Method, answer: usize) {
        if !skipper_obs::enabled() {
            return;
        }
        skipper_obs::instant(
            name,
            skipper_obs::Level::Debug,
            vec![
                ("method", method.to_string().into()),
                ("answer", answer.into()),
            ],
        );
    }

    /// How many independent training instances of this configuration fit
    /// side by side (hyper-parameter search; each instance pays its own
    /// tensors, the context is paid once).
    pub fn concurrent_instances(&self, method: &Method, timesteps: usize, batch: usize) -> usize {
        let per = self
            .model
            .breakdown(method, timesteps, batch)
            .total()
            .max(1);
        (self.device.usable_bytes() / per) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{vgg5, ModelConfig, SpikingNetwork};

    fn net() -> SpikingNetwork {
        vgg5(&ModelConfig::default()) // full width, 32x32
    }

    fn nano_plan(net: &SpikingNetwork) -> (Planner<'_>, &'static DeviceModel) {
        // Leak a device for the test lifetime (cheap, test-only).
        let device: &'static DeviceModel = Box::leak(Box::new(DeviceModel::jetson_nano()));
        (Planner::new(AnalyticModel::new(net), device), device)
    }

    #[test]
    fn max_batch_is_the_fit_boundary() {
        let net = net();
        let (p, _) = nano_plan(&net);
        let b = p.max_batch(&Method::Bptt, 100, 512);
        assert!(b > 0, "something must fit");
        assert!(p.fits(&Method::Bptt, 100, b));
        assert!(!p.fits(&Method::Bptt, 100, b + 1));
    }

    #[test]
    fn methods_order_capacity_as_the_paper_says() {
        let net = net();
        let (p, _) = nano_plan(&net);
        let base = p.max_batch(&Method::Bptt, 100, 1024);
        let ck = p.max_batch(&Method::Checkpointed { checkpoints: 4 }, 100, 1024);
        let sk = p.max_batch(
            &Method::Skipper {
                checkpoints: 4,
                percentile: 70.0,
            },
            100,
            1024,
        );
        assert!(base < ck && ck < sk, "B_max: {base} < {ck} < {sk}");
        let t_base = p.max_timesteps(&Method::Bptt, 32, 100_000);
        let t_sk = p.max_timesteps(
            &Method::Skipper {
                checkpoints: 4,
                percentile: 70.0,
            },
            32,
            100_000,
        );
        assert!(t_sk > 4 * t_base, "T_max: {t_base} vs {t_sk}");
    }

    #[test]
    fn concurrency_scales_inversely_with_instance_size() {
        let net = net();
        let (p, _) = nano_plan(&net);
        let big = p.concurrent_instances(&Method::Bptt, 100, 8);
        let small = p.concurrent_instances(
            &Method::Skipper {
                checkpoints: 4,
                percentile: 70.0,
            },
            100,
            8,
        );
        assert!(small > big);
    }

    #[test]
    fn zero_when_nothing_fits() {
        let net = net();
        let tiny: &'static DeviceModel = Box::leak(Box::new(DeviceModel {
            capacity_bytes: 1 << 20,
            context_bytes: 1 << 19,
            ..DeviceModel::a100_80gb()
        }));
        let p = Planner::new(AnalyticModel::new(&net), tiny);
        assert_eq!(p.max_batch(&Method::Bptt, 100, 512), 0);
        assert_eq!(p.concurrent_instances(&Method::Bptt, 100, 8), 0);
    }
}
