//! Spike Activity Monitoring (SAM) and the Spike-Sum-Threshold (SST).
//!
//! During the first forward pass, Skipper records the network-wide spike
//! count `s_t = Σ_l sum(o_t^l)` per timestep (Eq. 4). Before a segment is
//! recomputed, the segment's `p`-th percentile of those counts becomes the
//! Spike-Sum-Threshold `SST_c` (Eq. 5); timesteps with `s_t < SST_c` are
//! skipped. This module also provides the boundary conditions of
//! Section VI-B (Eq. 7 and the `C ≤ T/L_n` bound of Section V-A).

use serde::{Deserialize, Serialize};
use skipper_snn::NetworkState;

/// Which per-timestep activity statistic the monitor records.
///
/// The paper uses the plain spike sum (Eq. 4) and names two refinements as
/// future work (Section VI-A: "the sum of spike counts weighted by the
/// neuron count in each layer, the ℓ2-norm of neuron trace per timestep");
/// all three are implemented here and compared by the
/// `ablation_sam_policy` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SamMetric {
    /// `s_t = Σ_l sum(o_t^l)` — the paper's Eq. 4.
    #[default]
    SpikeSum,
    /// Per-layer spike *rates* summed: `Σ_l sum(o_t^l)/N_l`, so small deep
    /// layers count as much as wide early ones.
    NeuronNormalized,
    /// `Σ_l ‖U_t^l‖₂` — membrane-trace energy.
    MembraneL2,
}

impl SamMetric {
    /// Evaluate the statistic on the post-step neuron state.
    pub fn measure(&self, state: &NetworkState) -> f64 {
        match self {
            SamMetric::SpikeSum => state.spikes.iter().map(|s| s.sum()).sum(),
            SamMetric::NeuronNormalized => state
                .spikes
                .iter()
                .map(|s| s.sum() / s.numel().max(1) as f64)
                .sum(),
            SamMetric::MembraneL2 => state
                .mems
                .iter()
                .map(|u| {
                    u.data()
                        .iter()
                        .map(|&x| (x as f64) * (x as f64))
                        // lint:allow(float-order): shard-local sequential fold in a fixed unit order; cross-shard combining goes through the aggregated SAM record
                        .sum::<f64>()
                        .sqrt()
                })
                .sum(),
        }
    }
}

impl std::fmt::Display for SamMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SamMetric::SpikeSum => "spike-sum",
            SamMetric::NeuronNormalized => "neuron-normalized",
            SamMetric::MembraneL2 => "membrane-l2",
        })
    }
}

/// How Skipper decides which timesteps to skip.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SkipPolicy {
    /// The paper's mechanism: skip steps whose activity falls below the
    /// segment's `p`-th percentile of the chosen [`SamMetric`].
    #[default]
    SpikeActivity,
    /// Ablation baseline: skip a uniformly random `p` % of each segment's
    /// steps (pure "temporal dropout", no activity information).
    Random,
}

impl std::fmt::Display for SkipPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SkipPolicy::SpikeActivity => "spike-activity",
            SkipPolicy::Random => "random",
        })
    }
}

/// Recorder of the per-timestep spike sums of one training iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpikeActivityMonitor {
    sums: Vec<f64>,
}

impl SpikeActivityMonitor {
    /// Monitor with capacity for `timesteps` entries.
    pub fn new(timesteps: usize) -> SpikeActivityMonitor {
        SpikeActivityMonitor {
            sums: Vec::with_capacity(timesteps),
        }
    }

    /// Record `s_t` for the next timestep.
    pub fn record(&mut self, spike_sum: f64) {
        self.sums.push(spike_sum);
    }

    /// All recorded sums, in time order.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// `s_t` of a single timestep.
    pub fn at(&self, t: usize) -> f64 {
        self.sums[t]
    }

    /// The SST for the segment `[start, end)`: the `p`-th percentile of its
    /// spike sums. `p ≤ 0` yields `-∞` (skip nothing).
    pub fn threshold(&self, start: usize, end: usize, p: f32) -> f64 {
        percentile(&self.sums[start..end], p)
    }

    /// Whether timestep `t` should be recomputed given segment threshold
    /// `sst` (recompute iff `s_t ≥ SST`, skip otherwise).
    pub fn recompute(&self, t: usize, sst: f64) -> bool {
        self.sums[t] >= sst
    }

    /// Monitor wrapping an already-recorded sum sequence.
    pub fn from_sums(sums: Vec<f64>) -> SpikeActivityMonitor {
        SpikeActivityMonitor { sums }
    }

    /// Add another record elementwise (Eq. 4 across batch shards).
    ///
    /// `s_t` is a sum over the batch, so the network-wide statistic of a
    /// sharded iteration is the shard-order sum of the per-shard records.
    /// For [`SamMetric::SpikeSum`] (integer counts held in `f64`) and
    /// [`SamMetric::NeuronNormalized`] the aggregate is exactly the
    /// unsharded value; [`SamMetric::MembraneL2`] sums per-layer norms, so
    /// its sharded aggregate sums *per-shard* norms instead — the same
    /// additive form, but not bitwise equal to the unsharded measurement.
    ///
    /// # Panics
    ///
    /// Panics if the records have different lengths.
    pub fn absorb(&mut self, other: &SpikeActivityMonitor) {
        assert_eq!(
            self.sums.len(),
            other.sums.len(),
            "SAM records cover the same horizon"
        );
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
    }
}

/// The skip schedule of one iteration: a verdict per timestep plus the
/// per-segment thresholds that produced it.
///
/// Computed once from the network-wide SAM record (after cross-shard
/// aggregation) so every shard recomputes exactly the same timesteps —
/// the paper's skip decision (Eq. 5) is global, not per-shard.
#[derive(Debug, Clone, PartialEq)]
pub struct SkipDecisions {
    skip: Vec<bool>,
    ssts: Vec<f64>,
}

impl SkipDecisions {
    /// Whether timestep `t` is skipped in the backward recomputation.
    pub fn skip(&self, t: usize) -> bool {
        self.skip[t]
    }

    /// The SST of segment `c` (NaN when the policy does not threshold on
    /// activity).
    pub fn sst(&self, c: usize) -> f64 {
        self.ssts[c]
    }

    /// Total skipped timesteps.
    pub fn skipped(&self) -> usize {
        self.skip.iter().filter(|&&s| s).count()
    }

    /// Total recomputed timesteps.
    pub fn recomputed(&self) -> usize {
        self.skip.len() - self.skipped()
    }
}

/// Form the iteration's skip schedule from a (globally aggregated) SAM
/// record. A pure function of its arguments: sharded and unsharded runs
/// that agree on the record agree on every decision.
///
/// # Panics
///
/// Panics if the record is shorter than the last segment bound.
pub fn decide_skips(
    sam: &SpikeActivityMonitor,
    bounds: &[usize],
    percentile: f32,
    policy: SkipPolicy,
    iter_seed: u64,
) -> SkipDecisions {
    // lint:allow(panic): segment_bounds always returns at least one bound for validated T
    let timesteps = *bounds.last().expect("at least one bound");
    let checkpoints = bounds.len() - 1;
    let mut skip = vec![false; timesteps];
    let mut ssts = vec![f64::NAN; checkpoints];
    for c in 0..checkpoints {
        let (start, end) = (bounds[c], bounds[c + 1]);
        match policy {
            SkipPolicy::SpikeActivity => {
                let sst = sam.threshold(start, end, percentile);
                ssts[c] = sst;
                for (t, s) in skip.iter_mut().enumerate().take(end).skip(start) {
                    *s = !sam.recompute(t, sst);
                }
            }
            SkipPolicy::Random => {
                // Uniformly drop ~p% of the segment, deterministic per
                // (iteration, segment) and independent of the record.
                let len = end - start;
                let want = ((percentile as f64 / 100.0) * len as f64).floor() as usize;
                let mut rng = skipper_tensor::XorShiftRng::new(
                    iter_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c as u64 + 1),
                );
                let mut order: Vec<usize> = (start..end).collect();
                for i in (1..len).rev() {
                    let j = rng.next_below(i + 1);
                    order.swap(i, j);
                }
                for &t in order.iter().take(want) {
                    skip[t] = true;
                }
            }
        }
    }
    SkipDecisions { skip, ssts }
}

/// Emit the per-timestep `skip_decision` trace event: segment `c`,
/// timestep `t`, its activity statistic `s_t`, the segment's threshold
/// `SST_c` (NaN when the policy does not threshold on activity, e.g.
/// [`SkipPolicy::Random`] — serialised as `null`), and the verdict.
///
/// This is the event granularity the paper plots (Fig. 3's skip traces);
/// the `trace_training` bench bin and the obs integration tests assert the
/// emitted counts against [`BatchStats`](crate::BatchStats). No-op while
/// tracing is disabled.
pub fn trace_skip_decision(c: usize, t: usize, s_t: f64, sst: f64, skip: bool) {
    skipper_obs::instant!(
        skipper_obs::Level::Trace,
        "skip_decision",
        c = c,
        t = t,
        s_t = s_t,
        sst = sst,
        skip = skip,
    );
}

/// Nearest-rank percentile of `values`. `p ≤ 0` → `-∞`; `p ≥ 100` → the
/// maximum.
///
/// # Panics
///
/// Panics if `values` is empty and `p > 0`.
pub fn percentile(values: &[f64], p: f32) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let rank = ((p as f64 / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Section V-A: the largest admissible `C` is `T / L_n`.
pub fn max_checkpoints(timesteps: usize, layers: usize) -> usize {
    (timesteps / layers.max(1)).max(1)
}

/// Eq. 7: the largest skippable fraction (as a percentile) for a given
/// `T`, `C` and `L_n`: `p/100 ≤ 1 − C/(T/L_n)`.
pub fn max_skippable_percentile(timesteps: usize, checkpoints: usize, layers: usize) -> f32 {
    let seg = timesteps as f32 / checkpoints.max(1) as f32;
    (100.0 * (1.0 - layers as f32 / seg)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 70.0), 7.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&v, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 60.0), 3.0);
    }

    #[test]
    fn skipping_fraction_approximates_p() {
        // With distinct sums, skipping s_t < SST drops ~p% of steps.
        let sums: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut sam = SpikeActivityMonitor::new(100);
        for &s in &sums {
            sam.record(s);
        }
        let sst = sam.threshold(0, 100, 70.0);
        let skipped = (0..100).filter(|&t| !sam.recompute(t, sst)).count();
        assert!((skipped as i64 - 70).abs() <= 1, "skipped {skipped}");
    }

    #[test]
    fn p_zero_skips_nothing() {
        let mut sam = SpikeActivityMonitor::new(4);
        for s in [3.0, 1.0, 2.0, 0.0] {
            sam.record(s);
        }
        let sst = sam.threshold(0, 4, 0.0);
        assert!((0..4).all(|t| sam.recompute(t, sst)));
    }

    #[test]
    fn thresholds_are_per_segment() {
        let mut sam = SpikeActivityMonitor::new(8);
        for s in [1.0, 2.0, 3.0, 4.0, 100.0, 200.0, 300.0, 400.0] {
            sam.record(s);
        }
        let sst0 = sam.threshold(0, 4, 50.0);
        let sst1 = sam.threshold(4, 8, 50.0);
        assert!(sst1 > sst0 * 10.0);
        // A step busy for segment 0 would be skipped under segment 1's SST.
        assert!(sam.recompute(3, sst0));
        assert!(!sam.recompute(3, sst1));
    }

    #[test]
    fn eq7_bound_matches_paper_shape() {
        // Larger T/L_n or smaller C → more skippable.
        assert!(max_skippable_percentile(100, 4, 6) > max_skippable_percentile(100, 10, 6));
        assert!(max_skippable_percentile(200, 4, 6) > max_skippable_percentile(100, 4, 6));
        assert_eq!(max_skippable_percentile(10, 10, 5), 0.0);
        // VGG5-style: T=100, C=4, L_n=5 → (1 − 5/25)·100 = 80 %.
        assert!((max_skippable_percentile(100, 4, 5) - 80.0).abs() < 1e-4);
    }

    #[test]
    fn max_checkpoints_bound() {
        assert_eq!(max_checkpoints(100, 5), 20);
        assert_eq!(max_checkpoints(10, 20), 1);
    }

    #[test]
    fn sam_metrics_measure_sensible_quantities() {
        use skipper_tensor::Tensor;
        let state = NetworkState {
            mems: vec![
                Tensor::from_vec(vec![3.0, 4.0], [1, 2]), // ‖·‖₂ = 5
                Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], [1, 4]),
            ],
            spikes: vec![
                Tensor::from_vec(vec![1.0, 1.0], [1, 2]), // 2 spikes / 2 neurons
                Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], [1, 4]), // 1 / 4
            ],
        };
        assert_eq!(SamMetric::SpikeSum.measure(&state), 3.0);
        assert!((SamMetric::NeuronNormalized.measure(&state) - 1.25).abs() < 1e-9);
        assert!((SamMetric::MembraneL2.measure(&state) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn neuron_normalization_rebalances_layer_influence() {
        use skipper_tensor::Tensor;
        // A wide noisy layer vs a narrow active one: the raw sum is
        // dominated by the wide layer, the normalized metric is not.
        let wide_only = NetworkState {
            mems: vec![Tensor::zeros([1, 100]), Tensor::zeros([1, 4])],
            spikes: vec![Tensor::full([1, 100], 0.2), Tensor::zeros([1, 4])],
        };
        let narrow_only = NetworkState {
            mems: vec![Tensor::zeros([1, 100]), Tensor::zeros([1, 4])],
            spikes: vec![Tensor::zeros([1, 100]), Tensor::ones([1, 4])],
        };
        assert!(
            SamMetric::SpikeSum.measure(&wide_only) > SamMetric::SpikeSum.measure(&narrow_only)
        );
        assert!(
            SamMetric::NeuronNormalized.measure(&narrow_only)
                > SamMetric::NeuronNormalized.measure(&wide_only)
        );
    }

    #[test]
    fn decide_skips_matches_per_segment_thresholding() {
        let sums: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 100.0, 200.0, 300.0, 400.0];
        let sam = SpikeActivityMonitor::from_sums(sums);
        let bounds = [0usize, 4, 8];
        let d = decide_skips(&sam, &bounds, 50.0, SkipPolicy::SpikeActivity, 1);
        for c in 0..2 {
            let sst = sam.threshold(bounds[c], bounds[c + 1], 50.0);
            assert_eq!(d.sst(c), sst);
            for t in bounds[c]..bounds[c + 1] {
                assert_eq!(d.skip(t), !sam.recompute(t, sst), "t={t}");
            }
        }
        assert_eq!(d.skipped() + d.recomputed(), 8);
    }

    #[test]
    fn decide_skips_random_is_deterministic_and_record_independent() {
        let a = SpikeActivityMonitor::from_sums(vec![0.0; 8]);
        let b = SpikeActivityMonitor::from_sums((0..8).map(|i| i as f64).collect());
        let bounds = [0usize, 4, 8];
        let da = decide_skips(&a, &bounds, 50.0, SkipPolicy::Random, 7);
        let db = decide_skips(&b, &bounds, 50.0, SkipPolicy::Random, 7);
        // Compare schedules, not the structs: the ssts are NaN here, and
        // NaN != NaN under PartialEq.
        let same = |x: &SkipDecisions, y: &SkipDecisions| (0..8).all(|t| x.skip(t) == y.skip(t));
        assert!(same(&da, &db), "random policy ignores the record");
        assert_eq!(da.skipped(), 4, "floor(0.5·4) per segment");
        assert!(da.sst(0).is_nan() && da.sst(1).is_nan());
        let dc = decide_skips(&a, &bounds, 50.0, SkipPolicy::Random, 8);
        assert!(!same(&da, &dc), "different iteration, different draw");
    }

    #[test]
    fn shard_records_aggregate_to_the_unsharded_sums() {
        // Spike counts are integers: summing per-shard counts reproduces
        // the full-batch count exactly, so the SST (a selected element of
        // the record) is bitwise identical.
        let mut global = SpikeActivityMonitor::from_sums(vec![0.0; 4]);
        let shard_a = SpikeActivityMonitor::from_sums(vec![3.0, 7.0, 1.0, 9.0]);
        let shard_b = SpikeActivityMonitor::from_sums(vec![2.0, 5.0, 8.0, 0.0]);
        global.absorb(&shard_a);
        global.absorb(&shard_b);
        assert_eq!(global.sums(), &[5.0, 12.0, 9.0, 9.0]);
        let unsharded = SpikeActivityMonitor::from_sums(vec![5.0, 12.0, 9.0, 9.0]);
        assert_eq!(
            global.threshold(0, 4, 60.0).to_bits(),
            unsharded.threshold(0, 4, 60.0).to_bits()
        );
    }

    #[test]
    fn metric_and_policy_display() {
        assert_eq!(SamMetric::SpikeSum.to_string(), "spike-sum");
        assert_eq!(SamMetric::MembraneL2.to_string(), "membrane-l2");
        assert_eq!(SkipPolicy::Random.to_string(), "random");
        assert_eq!(SamMetric::default(), SamMetric::SpikeSum);
        assert_eq!(SkipPolicy::default(), SkipPolicy::SpikeActivity);
    }
}
