//! Baseline SNN-BPTT: one tape across all `T` timesteps (paper
//! Section III-B, Fig. 2).
//!
//! Every timestep of every layer appends its activations to a single
//! [`Graph`], which therefore holds `O(T)` state until the backward sweep —
//! the memory behaviour the paper sets out to fix. The loss is computed on
//! the time-accumulated readout logits and its analytic gradient is seeded
//! into every timestep's logit contribution.
//!
//! [`bptt_core`] is shard-aware: the data-parallel engine calls it once per
//! batch shard with a [`ShardCtx`] carrying the global batch size (loss
//! scaling) and the shard's sample offset (dropout streams), harvesting
//! into a per-shard [`GradSink`]. The unsharded [`bptt_step`] is the same
//! code with a full-batch context and the direct sink.

use crate::engine::{GradSink, ShardCtx};
use crate::sam::SpikeActivityMonitor;
use skipper_autograd::Graph;
use skipper_snn::{softmax_cross_entropy_scaled, ParamBinder, SpikingNetwork, StepCtx, TapedState};
use skipper_tensor::Tensor;

/// Outcome of one method-specific training step (gradients are left
/// accumulated in the network's parameter store — or the shard sink).
#[derive(Debug)]
pub(crate) struct StepResult {
    /// Mean cross-entropy loss of the iteration (over the global batch;
    /// a shard's value is its partial contribution).
    pub loss: f64,
    /// Correct predictions on the full-forward logits.
    pub correct: usize,
    /// Timesteps whose backward graph was built.
    pub recomputed_steps: usize,
    /// Timesteps skipped by SAM/SST.
    pub skipped_steps: usize,
    /// The iteration's spike-activity record.
    #[allow(dead_code)] // exposed for diagnostics and tests
    pub sam: SpikeActivityMonitor,
    /// Per-sample negative log-likelihoods of each loss evaluation, in
    /// batch order — one group for the single-loss methods, one per
    /// window for the truncated ones. The engine folds each group across
    /// shards in global sample order, reproducing the unsharded loss
    /// bit-for-bit (see [`combine_loss_groups`]).
    #[allow(dead_code)] // consumed by the engine
    pub loss_groups: Vec<Vec<f64>>,
}

/// The scalar loss of an iteration from its per-sample loss groups: each
/// group is left-folded in sample order and divided by the global batch,
/// the group values are left-folded in order and divided by the group
/// count. This is exactly the accumulation order of the unsharded
/// methods, so sharded runs that concatenate their groups in global
/// sample order reproduce the reference loss bit-for-bit.
pub(crate) fn combine_loss_groups(groups: &[Vec<f64>], global_batch: usize) -> f64 {
    let sum: f64 = groups
        .iter()
        // lint:allow(float-order): this sequential per-group fold IS the canonical reference order the tree reduction reproduces
        .map(|g| g.iter().sum::<f64>() / global_batch as f64)
        .sum();
    sum / groups.len() as f64
}

/// One baseline-BPTT iteration over `inputs` (length `T`, each `[B,C,H,W]`).
pub(crate) fn bptt_step(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
) -> StepResult {
    let batch = inputs[0].shape()[0];
    bptt_core(
        net,
        inputs,
        labels,
        iter_seed,
        ShardCtx::full(batch),
        &mut GradSink::Direct,
    )
}

/// Shard-aware BPTT over one slice of the batch.
pub(crate) fn bptt_core(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    shard: ShardCtx,
    sink: &mut GradSink<'_>,
) -> StepResult {
    let timesteps = inputs.len();
    let batch = inputs[0].shape()[0];
    let mut g = Graph::new();
    let mut binder = ParamBinder::new(net.params());
    let init = net.init_state(batch);
    let mut state = TapedState::from_state(&mut g, &init, false);
    let mut sam = SpikeActivityMonitor::new(timesteps);
    let mut logit_vars = Vec::with_capacity(timesteps);
    {
        let _fwd = skipper_obs::span!("forward_pass", timesteps = timesteps);
        for (t, input) in inputs.iter().enumerate() {
            let ctx = StepCtx::train_shard(iter_seed, t, shard.batch_offset);
            let out = net.step_taped(&mut g, &mut binder, input, &mut state, &ctx);
            sam.record(out.spike_sum);
            logit_vars.push(out.logits);
        }
    }
    // Time-averaged readout: logits = (1/T)·Σ_t logits_t. The average
    // keeps the softmax scale independent of the horizon, so accuracy and
    // learning-rate behaviour are comparable across T (cf. Fig. 9).
    let mut logits = g.value(logit_vars[0]).clone();
    for &v in &logit_vars[1..] {
        logits.add_assign(g.value(v));
    }
    logits.scale_assign(1.0 / timesteps as f32);
    let loss = softmax_cross_entropy_scaled(&logits, labels, shard.global_batch);
    let per_step_grad = loss.dlogits.scale(1.0 / timesteps as f32);
    let bwd = skipper_obs::span!("backward_pass", timesteps = timesteps);
    for &v in &logit_vars {
        g.seed_grad(v, per_step_grad.clone());
    }
    g.backward();
    sink.harvest(&binder, &mut g, net.params_mut());
    drop(bwd);
    let groups = vec![loss.per_sample];
    StepResult {
        loss: combine_loss_groups(&groups, shard.global_batch),
        correct: loss.correct,
        recomputed_steps: timesteps,
        skipped_steps: 0,
        sam,
        loss_groups: groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::{custom_net, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn setup() -> (SpikingNetwork, Vec<Tensor>, Vec<usize>) {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut rng = XorShiftRng::new(70);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        (net, inputs, vec![1, 3])
    }

    #[test]
    fn produces_finite_loss_and_gradients() {
        let (mut net, inputs, labels) = setup();
        let r = bptt_step(&mut net, &inputs, &labels, 1);
        assert!(r.loss.is_finite() && r.loss > 0.0);
        assert_eq!(r.recomputed_steps, 6);
        assert_eq!(r.skipped_steps, 0);
        assert_eq!(r.loss_groups.len(), 1);
        assert_eq!(r.loss_groups[0].len(), 2);
        let grad_norm: f64 = net
            .params()
            .iter()
            .map(|p| p.grad().map(|x| x * x).sum())
            .sum();
        assert!(grad_norm > 0.0, "some gradient must flow");
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, inputs, labels) = setup();
        let (mut b, _, _) = setup();
        let ra = bptt_step(&mut a, &inputs, &labels, 5);
        let rb = bptt_step(&mut b, &inputs, &labels, 5);
        assert_eq!(ra.loss, rb.loss);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.grad().data(), pb.grad().data());
        }
    }

    #[test]
    fn records_sam_for_every_timestep() {
        let (mut net, inputs, labels) = setup();
        let r = bptt_step(&mut net, &inputs, &labels, 2);
        assert_eq!(r.sam.sums().len(), 6);
    }
}
