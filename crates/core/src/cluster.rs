//! Distributed data-parallel training: a coordinator driving TCP (or
//! in-process loopback) workers through the canonical shard plan.
//!
//! The [`Coordinator`] generalizes [`crate::engine`]'s thread pool across
//! process boundaries: each iteration it serializes the current
//! parameters (`.skw` v2 records), slices the batch by the same
//! `S = min(B, 8)` plan, and dispatches shards to connected workers over
//! [`crate::transport`] frames. Workers ([`run_worker`], usually the
//! `skipper-worker` bin) rebuild the model from the wire spec, run the
//! very same shard cores, and return raw gradients.
//!
//! # Determinism contract
//!
//! Results are bit-identical to the in-process engine (and therefore
//! independent of the worker count), by construction:
//!
//! * the shard plan, per-row dropout streams and loss folding are the
//!   engine's own (`shard_plan`, `ShardCtx`, `combine_shards`);
//! * gradients cross the wire as exact little-endian `f32` and are
//!   reduced by the same fixed-order [`tree_reduce`] in shard order;
//! * SAM sums are aggregated across shards in shard order *before* the
//!   SST percentile is formed; phase B ships only those global sums and
//!   each worker re-derives the identical schedule with the pure
//!   [`decide_skips`].
//!
//! # Recovery model
//!
//! Nothing is applied to the parameter store until a full, consistent
//! set of shard results for one `(iteration, attempt)` has been
//! collected, so every failure is recovered by *retrying the attempt*:
//! the attempt counter is bumped, shards are reassigned over the
//! surviving workers, and stale results from older attempts are
//! discarded first-wins — a reconnecting worker can never cause a
//! duplicate gradient application. Since the parameters have not
//! changed, the retried attempt is bit-identical to an unfailed run.
//! Dead workers are detected by closed/poisoned connections, missed
//! heartbeat deadlines, and the per-attempt work deadline; reconnects
//! (with bounded exponential backoff + jitter on the worker side) are
//! re-admitted at the next handshake. If the cluster drops below
//! `min_workers` for longer than `connect_timeout`, the iteration fails
//! with a typed [`SkipperError::WorkerLost`] — the driver can then
//! replay the epoch from its last `.sksn` snapshot.

use crate::bptt::{combine_loss_groups, StepResult};
use crate::checkpoint::{checkpoint_backward, checkpoint_forward, PhaseAOut};
use crate::engine::{
    apply_grads, combine_shards, emit_skip_trace, shard_plan, slice_rows, tree_reduce, GradSink,
    ShardCtx, ShardOut, DEFAULT_MAX_SHARDS,
};
use crate::error::SkipperError;
use crate::method::{segment_bounds, Method};
use crate::sam::{decide_skips, SamMetric, SkipPolicy, SpikeActivityMonitor};
use crate::tbptt::tbptt_core;
use crate::transport::{
    in_proc_net, Channel, ChannelConnector, ChannelListener, ChannelStats, ChaosConfig, HistDelta,
    InProcConnector, Message, MetricsDelta, ResultPayload, TcpListenerLink, TraceCtx,
    TransportError, WireGrads, WireReader, WorkCtx,
};
use skipper_autograd::Surrogate;
use skipper_snn::serialize::{apply_records, read_params, write_records};
use skipper_snn::{custom_net, ModelConfig, ParamStore, ShardGrads, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment knob naming the coordinator address (`host:port`) that
/// `skipper-worker` dials and the loopback demos bind.
pub const CLUSTER_ADDR_ENV: &str = "SKIPPER_CLUSTER_ADDR";

/// The `SKIPPER_CLUSTER_ADDR` knob, if set and non-empty.
pub fn cluster_addr_from_env() -> Option<String> {
    std::env::var(CLUSTER_ADDR_ENV)
        .ok()
        .filter(|s| !s.trim().is_empty())
}

/// Environment knob overriding where crash flight-recorder dumps land
/// (default: the workspace `results/` directory).
pub const BLACKBOX_DIR_ENV: &str = "SKIPPER_BLACKBOX_DIR";

/// Directory flight-recorder dumps are written to.
fn blackbox_dir() -> std::path::PathBuf {
    match std::env::var(BLACKBOX_DIR_ENV) {
        Ok(d) if !d.trim().is_empty() => std::path::PathBuf::from(d),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

// ---------------------------------------------------------------------------
// Cluster-wide observability plumbing
// ---------------------------------------------------------------------------

/// Process-stable trace id stamped into every dispatched [`TraceCtx`]: one
/// id groups all spans of one coordinator process's run, and the pid half
/// keeps concurrent runs on one host apart.
fn trace_id() -> u64 {
    static TRACE: OnceLock<u64> = OnceLock::new();
    // Observability-only identity; never feeds training math, so wall-clock
    // salt does not violate the determinism contract.
    *TRACE
        .get_or_init(|| ((std::process::id() as u64) << 32) | (skipper_obs::now_us() & 0xFFFF_FFFF))
}

/// The trace context a work dispatch should carry: the coordinator's trace
/// id plus the innermost open span on this thread (the `iteration` span
/// opened by the training runner). `None` while tracing is disabled — the
/// frame then stays byte-identical to the pre-trace wire format.
fn current_trace_ctx() -> Option<TraceCtx> {
    skipper_obs::current_span().map(|parent| TraceCtx {
        trace: trace_id(),
        parent,
    })
}

/// Rewrite a metric key to carry a `worker=<id>` label: inserted into an
/// existing `{...}` label set, appended as a fresh one otherwise.
fn with_worker_label(name: &str, worker: u64) -> String {
    match name.strip_suffix('}') {
        Some(head) => format!("{head},worker={worker}}}"),
        None => format!("{name}{{worker={worker}}}"),
    }
}

/// Fold a worker's heartbeat metric delta into the coordinator's registry
/// under `worker="<id>"` labels, making `/metrics` cluster-wide. Keys that
/// already carry a worker label are skipped: they are themselves federated
/// series (possible when coordinator and workers share one registry in
/// threaded loopback runs) and re-merging them would loop.
fn merge_worker_metrics(worker: u64, delta: &MetricsDelta) {
    if !skipper_obs::enabled() || delta.is_empty() {
        return;
    }
    for (name, v) in &delta.counters {
        if name.contains("worker=") {
            continue;
        }
        skipper_obs::counter_add(&with_worker_label(name, worker), *v);
    }
    for (name, v) in &delta.gauges {
        if name.contains("worker=") {
            continue;
        }
        skipper_obs::gauge_set(&with_worker_label(name, worker), *v);
    }
    for (name, h) in &delta.histograms {
        if name.contains("worker=") {
            continue;
        }
        let Ok(hist) = skipper_obs::Histogram::from_parts(
            h.bounds.clone(),
            h.counts.clone(),
            h.sum,
            h.count,
            h.min,
            h.max,
        ) else {
            continue; // mis-encoded delta; drop rather than poison
        };
        let _ = skipper_obs::registry().merge_histogram(&with_worker_label(name, worker), &hist);
    }
    skipper_obs::counter_add("cluster.metric_merges", 1.0);
}

/// Worker-side delta tracker for metric federation: remembers the last
/// registry values shipped so each heartbeat carries only the increments
/// since the previous one. A delta is committed when computed; a heartbeat
/// lost to a dead connection therefore loses its delta — acceptable for
/// telemetry, and it can never double-count.
#[derive(Default)]
struct MetricShadow {
    counters: HashMap<String, f64>,
    hist_counts: HashMap<String, Vec<u64>>,
}

impl MetricShadow {
    /// The registry's movement since the last call, or `None` when tracing
    /// is disabled or nothing changed. Series already carrying a worker
    /// label are never shipped (they are someone else's federated data).
    fn delta(&mut self) -> Option<MetricsDelta> {
        if !skipper_obs::enabled() {
            return None;
        }
        let snap = skipper_obs::registry().snapshot();
        let mut out = MetricsDelta::default();
        for (name, total) in snap.counters {
            if name.contains("worker=") {
                continue;
            }
            let last = self.counters.insert(name.clone(), total).unwrap_or(0.0);
            if total != last {
                out.counters.push((name, total - last));
            }
        }
        for (name, value) in snap.gauges {
            if name.contains("worker=") {
                continue;
            }
            out.gauges.push((name, value));
        }
        for (name, hist) in snap.histograms {
            if name.contains("worker=") {
                continue;
            }
            let counts = hist.counts().to_vec();
            let last = self
                .hist_counts
                .insert(name.clone(), counts.clone())
                .unwrap_or_else(|| vec![0; counts.len()]);
            let delta_counts: Vec<u64> = counts
                .iter()
                .zip(last.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect();
            let delta_count: u64 = delta_counts.iter().sum();
            if delta_count == 0 {
                continue;
            }
            out.histograms.push((
                name,
                HistDelta {
                    bounds: hist.bounds().to_vec(),
                    counts: delta_counts,
                    // Sum is not tracked per-delta; approximate the moved
                    // mass by the bucket midpoint via mean — shipping the
                    // lifetime mean times the moved count keeps the merged
                    // mean sane without per-sample bookkeeping.
                    sum: hist.mean() * delta_count as f64,
                    count: delta_count,
                    min: hist.min(),
                    max: hist.max(),
                },
            ));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// Bounded ring of recent per-connection happenings — the crash flight
/// recorder. Recording costs nothing while tracing is disabled; on a
/// worker loss the ring is dumped as JSONL next to the other run
/// artifacts (`results/blackbox_<id>.jsonl`).
pub(crate) struct FlightRecorder {
    ring: VecDeque<String>,
    cap: usize,
}

impl FlightRecorder {
    fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Append one pre-summarized record; `detail` must be the inner JSON
    /// fields (without braces) and is only rendered while tracing is
    /// enabled.
    fn note(&mut self, kind: &str, detail: impl FnOnce() -> String) {
        if !skipper_obs::enabled() {
            return;
        }
        let line = format!(
            "{{\"ts_us\":{},\"kind\":\"{kind}\",{}}}",
            skipper_obs::now_us(),
            detail()
        );
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(line);
    }

    /// Write the ring to `path` (JSONL, oldest first) and emit a
    /// `cluster.blackbox_dump` marker. Empty rings write nothing.
    fn dump(&self, path: &std::path::Path) {
        if self.ring.is_empty() {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let write = || -> std::io::Result<()> {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for line in &self.ring {
                writeln!(f, "{line}")?;
            }
            f.flush()
        };
        match write() {
            Ok(()) => {
                skipper_obs::instant!(
                    skipper_obs::Level::Warn,
                    "cluster.blackbox_dump",
                    path = path.display().to_string(),
                    records = self.ring.len() as u64,
                );
            }
            Err(e) => eprintln!("skipper: blackbox dump to {} failed: {e}", path.display()),
        }
    }
}

/// JSON-escape `s` into a quoted string (flight-recorder details carry
/// free-form error text).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    skipper_obs::push_json_string(&mut out, s);
    out
}

/// One-line JSON fields summarizing a protocol message for the flight
/// recorder (payloads elided; identity and routing only).
fn frame_summary(msg: &Message) -> String {
    match msg {
        Message::Hello {
            worker, reconnect, ..
        } => format!("\"msg\":\"Hello\",\"worker\":{worker},\"reconnect\":{reconnect}"),
        Message::Welcome { worker, .. } => format!("\"msg\":\"Welcome\",\"worker\":{worker}"),
        Message::Heartbeat {
            worker,
            iteration,
            metrics,
        } => format!(
            "\"msg\":\"Heartbeat\",\"worker\":{worker},\"iteration\":{iteration},\"metrics\":{}",
            metrics.is_some()
        ),
        Message::WorkSingle { ctx, .. } | Message::WorkForward { ctx, .. } => format!(
            "\"msg\":\"{}\",\"iteration\":{},\"attempt\":{},\"shard\":{}",
            if matches!(msg, Message::WorkSingle { .. }) {
                "WorkSingle"
            } else {
                "WorkForward"
            },
            ctx.iteration,
            ctx.attempt,
            ctx.shard
        ),
        Message::WorkBackward {
            iteration,
            attempt,
            shard,
            ..
        } => format!(
            "\"msg\":\"WorkBackward\",\"iteration\":{iteration},\"attempt\":{attempt},\"shard\":{shard}"
        ),
        Message::ShardResult {
            iteration,
            attempt,
            shard,
            ..
        } => format!(
            "\"msg\":\"ShardResult\",\"iteration\":{iteration},\"attempt\":{attempt},\"shard\":{shard}"
        ),
        Message::Fault { worker, detail } => format!(
            "\"msg\":\"Fault\",\"worker\":{worker},\"detail\":{}",
            json_str(detail)
        ),
        Message::Shutdown => "\"msg\":\"Shutdown\"".to_string(),
    }
}

/// Ring capacity of each connection's flight recorder.
const BLACKBOX_CAP: usize = 512;

/// Live status row of one worker, published through the `/cluster`
/// endpoint of the obs metrics server.
#[derive(Debug, Clone, Default)]
struct WorkerStatus {
    state: &'static str,
    last_seen_us: u64,
    iteration: u64,
    attempt: u32,
    shards: Vec<u32>,
    stats: ChannelStats,
    chaos_injected: u64,
    lost_reason: String,
}

/// Shared worker-status board backing the `/cluster` endpoint.
type Board = Arc<Mutex<BTreeMap<u64, WorkerStatus>>>;

/// Render the board as the `/cluster` JSON document.
fn render_cluster_json(board: &Board) -> String {
    let board = board.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = String::from("{\"workers\":[");
    for (i, (id, w)) in board.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let shards: Vec<String> = w.shards.iter().map(|s| s.to_string()).collect();
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{{\"id\":{id},\"state\":{},\"last_seen_us\":{},\"iteration\":{},\
                 \"attempt\":{},\"shards\":[{}],\"frames_sent\":{},\"frames_received\":{},\
                 \"bytes_sent\":{},\"bytes_received\":{},\"frame_errors\":{},\
                 \"chaos_injected\":{},\"lost_reason\":{}}}",
                json_str(w.state),
                w.last_seen_us,
                w.iteration,
                w.attempt,
                shards.join(","),
                w.stats.frames_sent,
                w.stats.frames_received,
                w.stats.bytes_sent,
                w.stats.bytes_received,
                w.stats.frame_errors,
                w.chaos_injected,
                json_str(&w.lost_reason),
            ),
        );
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Wire spec: what a joining worker needs to rebuild the model
// ---------------------------------------------------------------------------

/// Model topology + horizon shipped in the Welcome handshake. Parameters
/// themselves ride with every work message, so a worker that was away
/// never computes with stale weights.
#[derive(Debug, Clone)]
pub(crate) struct WireSpec {
    pub model: ModelConfig,
    pub timesteps: usize,
}

impl WireSpec {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        let m = &self.model;
        b.extend_from_slice(&(m.input_hw as u32).to_le_bytes());
        b.extend_from_slice(&(m.in_channels as u32).to_le_bytes());
        b.extend_from_slice(&(m.num_classes as u32).to_le_bytes());
        b.extend_from_slice(&m.width_mult.to_le_bytes());
        b.extend_from_slice(&m.lif.leak.to_le_bytes());
        b.extend_from_slice(&m.lif.threshold.to_le_bytes());
        let (tag, x) = match m.lif.surrogate {
            Surrogate::Triangle { width } => (0u8, width),
            Surrogate::FastSigmoid { slope } => (1, slope),
            Surrogate::ArcTan { alpha } => (2, alpha),
        };
        b.push(tag);
        b.extend_from_slice(&x.to_le_bytes());
        match m.dropout {
            Some(p) => {
                b.push(1);
                b.extend_from_slice(&p.to_le_bytes());
            }
            None => {
                b.push(0);
                b.extend_from_slice(&0.0f32.to_le_bytes());
            }
        }
        b.extend_from_slice(&m.seed.to_le_bytes());
        b.extend_from_slice(&(self.timesteps as u32).to_le_bytes());
        b
    }

    pub fn decode(bytes: &[u8]) -> Result<WireSpec, TransportError> {
        let mut r = WireReader::new(bytes);
        let input_hw = r.u32()? as usize;
        let in_channels = r.u32()? as usize;
        let num_classes = r.u32()? as usize;
        let width_mult = r.f32()?;
        let leak = r.f32()?;
        let threshold = r.f32()?;
        let surrogate = match (r.u8()?, r.f32()?) {
            (0, width) => Surrogate::Triangle { width },
            (1, slope) => Surrogate::FastSigmoid { slope },
            (2, alpha) => Surrogate::ArcTan { alpha },
            (tag, _) => {
                return Err(TransportError::Frame(format!(
                    "unknown surrogate tag {tag}"
                )))
            }
        };
        let dropout = match (r.u8()?, r.f32()?) {
            (0, _) => None,
            (_, p) => Some(p),
        };
        let seed = r.u64()?;
        let timesteps = r.u32()? as usize;
        r.done()?;
        let mut model = ModelConfig {
            input_hw,
            in_channels,
            num_classes,
            width_mult,
            dropout,
            seed,
            ..ModelConfig::default()
        };
        model.lif.leak = leak;
        model.lif.threshold = threshold;
        model.lif.surrogate = surrogate;
        Ok(WireSpec { model, timesteps })
    }
}

/// Serialize a parameter store as `.skw` v2 record bytes.
fn encode_params(store: &ParamStore) -> Result<Vec<u8>, SkipperError> {
    let mut buf = Vec::new();
    write_records(store.iter().map(|p| (p.name(), p.value())), &mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Cluster configuration
// ---------------------------------------------------------------------------

/// Knobs of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Model topology workers rebuild on join (weights ride with work).
    pub model: ModelConfig,
    /// Workers to wait for before the first iteration dispatches.
    pub expected_workers: usize,
    /// Degradation floor: iterations proceed on fewer workers than
    /// expected, but never fewer than this.
    pub min_workers: usize,
    /// An idle worker silent for longer than this is declared dead.
    pub heartbeat_timeout: Duration,
    /// Deadline for one attempt's outstanding shard results.
    pub work_timeout: Duration,
    /// How long to wait for (re)connecting workers before degrading or
    /// giving up.
    pub connect_timeout: Duration,
    /// Attempt retries per iteration before surfacing an error.
    pub max_attempts: u32,
    /// Send-side fault injection on every accepted connection.
    pub chaos: Option<ChaosConfig>,
}

impl ClusterConfig {
    /// Defaults for `model`: wait for 2 workers, degrade to 1, 3 s
    /// heartbeat deadline, 60 s work deadline, 5 attempts, no chaos.
    pub fn new(model: ModelConfig) -> ClusterConfig {
        ClusterConfig {
            model,
            expected_workers: 2,
            min_workers: 1,
            heartbeat_timeout: Duration::from_secs(3),
            work_timeout: Duration::from_secs(60),
            connect_timeout: Duration::from_secs(10),
            max_attempts: 5,
            chaos: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Per-connection bookkeeping for one admitted worker.
struct WorkerConn {
    id: u64,
    channel: Channel,
    last_seen: Instant,
    recorder: FlightRecorder,
}

/// One attempt's failure, recovered by reassigning and retrying.
struct AttemptFail {
    reason: String,
}

impl AttemptFail {
    fn new(reason: impl Into<String>) -> AttemptFail {
        AttemptFail {
            reason: reason.into(),
        }
    }
}

/// The distributed engine's session-side half: owns the listener and the
/// admitted workers, assigns the canonical shard plan each iteration,
/// and combines results exactly like the in-process engine.
pub struct Coordinator {
    listener: Box<dyn ChannelListener>,
    cfg: ClusterConfig,
    timesteps: usize,
    workers: Vec<WorkerConn>,
    next_auto_id: u64,
    ready: bool,
    /// Worker-status board published through the obs server's `/cluster`
    /// endpoint.
    board: Board,
    /// Scoped `GET /cluster` registration on the global router; dropping
    /// it restores whatever the route served before this coordinator.
    _cluster_route: skipper_obs::RouteGuard,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.listener.addr())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Coordinator-side poll granularity per worker channel.
const POLL: Duration = Duration::from_millis(2);

impl Coordinator {
    /// Bind a TCP coordinator on `addr` (e.g. `127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn listen_tcp(addr: &str, cfg: ClusterConfig) -> Result<Coordinator, SkipperError> {
        let listener = TcpListenerLink::bind(addr, cfg.chaos.clone())?;
        Ok(Coordinator::over(Box::new(listener), cfg))
    }

    /// An in-process loopback cluster: workers connect through clones of
    /// the returned connector. Chaos (if configured) wraps both ends.
    pub fn in_proc(cfg: ClusterConfig) -> (Coordinator, InProcConnector) {
        let (listener, connector) = in_proc_net(cfg.chaos.clone());
        (Coordinator::over(Box::new(listener), cfg), connector)
    }

    fn over(listener: Box<dyn ChannelListener>, cfg: ClusterConfig) -> Coordinator {
        let board: Board = Arc::new(Mutex::new(BTreeMap::new()));
        let route_board = Arc::clone(&board);
        let cluster_route = skipper_obs::global_router().register("GET", "/cluster", move |_req| {
            skipper_obs::Response::ok_json(render_cluster_json(&route_board))
        });
        Coordinator {
            listener,
            cfg,
            timesteps: 0,
            workers: Vec::new(),
            next_auto_id: 1000,
            ready: false,
            board,
            _cluster_route: cluster_route,
        }
    }

    /// Apply `f` to worker `id`'s status row (created default-initialized
    /// on first sight).
    fn update_status(&self, id: u64, f: impl FnOnce(&mut WorkerStatus)) {
        let mut board = self.board.lock().unwrap_or_else(|p| p.into_inner());
        f(board.entry(id).or_default());
    }

    /// Refresh every live worker's transport counters on the board.
    fn refresh_board_stats(&self) {
        let mut board = self.board.lock().unwrap_or_else(|p| p.into_inner());
        for w in &self.workers {
            let row = board.entry(w.id).or_default();
            row.stats = w.channel.stats();
            row.chaos_injected = w.channel.chaos_injected();
        }
    }

    /// The address workers dial (resolved port for `:0` binds).
    pub fn addr(&self) -> String {
        self.listener.addr()
    }

    /// Currently admitted (live) workers.
    pub fn live_workers(&self) -> usize {
        self.workers.len()
    }

    /// The simulation horizon workers are told at handshake.
    pub(crate) fn set_horizon(&mut self, timesteps: usize) {
        self.timesteps = timesteps;
    }

    fn publish_worker_gauge(&self) {
        // gauge_set self-guards on enabled(); no outer check needed.
        skipper_obs::gauge_set("cluster.workers", self.workers.len() as f64);
    }

    /// Accept and handshake pending connections for up to `window`.
    fn accept_for(&mut self, window: Duration) {
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            match self.listener.accept(deadline - now) {
                Ok(channel) => self.admit(channel),
                Err(_) => return,
            }
        }
    }

    /// Handshake one accepted channel: expect Hello, assign an id, send
    /// Welcome with the wire spec. Failures just drop the connection —
    /// the worker's backoff loop will come back.
    fn admit(&mut self, mut channel: Channel) {
        let hello = channel.recv_timeout(Duration::from_secs(2));
        let Ok(Message::Hello {
            worker,
            reconnect,
            ping,
        }) = hello
        else {
            return;
        };
        // Echo the worker's clock probe with our own receive timestamp so
        // it can estimate the coordinator-worker clock offset (NTP-style).
        let pong = ping.map(|t1| (t1, skipper_obs::now_us()));
        let id = if worker != 0 && !self.workers.iter().any(|w| w.id == worker) {
            worker
        } else {
            self.next_auto_id += 1;
            self.next_auto_id
        };
        let spec = WireSpec {
            model: self.cfg.model.clone(),
            timesteps: self.timesteps,
        };
        if channel
            .send(&Message::Welcome {
                worker: id,
                spec: spec.encode(),
                pong,
            })
            .is_err()
        {
            return;
        }
        // counter_add and instant! self-guard on enabled().
        if reconnect {
            skipper_obs::counter_add("cluster.reconnects", 1.0);
        }
        skipper_obs::instant!(
            skipper_obs::Level::Info,
            "cluster.worker_joined",
            worker = id,
            reconnect = reconnect,
        );
        let mut recorder = FlightRecorder::new(BLACKBOX_CAP);
        recorder.note("admitted", || {
            format!(
                "\"worker\":{id},\"reconnect\":{reconnect},\"peer\":{}",
                json_str(&channel.peer())
            )
        });
        self.update_status(id, |row| {
            row.state = "live";
            row.last_seen_us = skipper_obs::now_us();
            row.lost_reason.clear();
        });
        self.workers.push(WorkerConn {
            id,
            channel,
            last_seen: Instant::now(),
            recorder,
        });
        self.workers.sort_by_key(|w| w.id);
        self.publish_worker_gauge();
    }

    /// Remove worker `id`, counting the death and dumping its flight
    /// recorder to `results/blackbox_<id>.jsonl`.
    fn kill_worker(&mut self, id: u64, why: &str) {
        let Some(pos) = self.workers.iter().position(|w| w.id == id) else {
            self.publish_worker_gauge();
            return;
        };
        let mut w = self.workers.remove(pos);
        // The emitters self-guard on enabled(); only the length check above
        // (did we actually remove someone?) is load-bearing.
        skipper_obs::counter_add("cluster.worker_deaths", 1.0);
        skipper_obs::instant!(
            skipper_obs::Level::Warn,
            "cluster.worker_lost",
            worker = id,
            reason = why,
        );
        let stats = w.channel.stats();
        self.update_status(id, |row| {
            row.state = "lost";
            row.lost_reason = why.to_string();
            row.stats = stats;
            row.chaos_injected = w.channel.chaos_injected();
        });
        w.recorder.note("lost", || {
            format!(
                "\"worker\":{id},\"reason\":{},\"frames_sent\":{},\"frames_received\":{},\
                 \"frame_errors\":{}",
                json_str(why),
                stats.frames_sent,
                stats.frames_received,
                stats.frame_errors
            )
        });
        w.recorder
            .dump(&blackbox_dir().join(format!("blackbox_{id}.jsonl")));
        self.publish_worker_gauge();
    }

    /// Evict idle workers past the heartbeat deadline, admit newcomers,
    /// and wait (up to `connect_timeout`) until enough workers are live:
    /// `expected_workers` before the first dispatch, `min_workers` after.
    /// Proceeds degraded when at least `min_workers` showed up.
    fn ensure_capacity(&mut self) -> Result<(), SkipperError> {
        let stale: Vec<u64> = self
            .workers
            .iter()
            .filter(|w| w.last_seen.elapsed() > self.cfg.heartbeat_timeout)
            .map(|w| w.id)
            .collect();
        for id in stale {
            self.kill_worker(id, "heartbeat deadline missed");
        }
        let floor = self.cfg.min_workers.max(1);
        let want = if self.ready {
            floor
        } else {
            self.cfg.expected_workers.max(floor)
        };
        let deadline = Instant::now() + self.cfg.connect_timeout;
        loop {
            self.accept_for(Duration::from_millis(1));
            if self.workers.len() >= want {
                break;
            }
            if Instant::now() >= deadline {
                if self.workers.len() >= floor {
                    skipper_obs::instant!(
                        skipper_obs::Level::Warn,
                        "cluster.degraded",
                        live = self.workers.len() as u64,
                        wanted = want as u64,
                    );
                    break;
                }
                return Err(SkipperError::WorkerLost {
                    worker: "cluster".into(),
                    detail: format!(
                        "{} live worker(s), need {floor}; none (re)connected within {:?}",
                        self.workers.len(),
                        self.cfg.connect_timeout
                    ),
                });
            }
            self.accept_for(Duration::from_millis(20));
        }
        self.ready = true;
        Ok(())
    }

    /// Send `msg` to worker `id`; a failed send kills the worker.
    fn send_to(&mut self, id: u64, msg: &Message) -> Result<(), AttemptFail> {
        let Some(w) = self.workers.iter_mut().find(|w| w.id == id) else {
            return Err(AttemptFail::new(format!("worker {id} vanished")));
        };
        w.recorder.note("send", || frame_summary(msg));
        if let Err(e) = w.channel.send(msg) {
            self.kill_worker(id, "send failed");
            return Err(AttemptFail::new(format!("send to worker {id}: {e}")));
        }
        Ok(())
    }

    /// Collect one `(iteration, attempt)`'s shard results — first-wins
    /// per shard, stale attempts discarded — until `assignment` is fully
    /// covered or the work deadline passes. Dead connections and worker
    /// faults fail the attempt.
    fn collect(
        &mut self,
        iteration: u64,
        attempt: u32,
        assignment: &[(u32, u64)],
    ) -> Result<HashMap<u32, ResultPayload>, AttemptFail> {
        let deadline = Instant::now() + self.cfg.work_timeout;
        let mut got: HashMap<u32, ResultPayload> = HashMap::new();
        while got.len() < assignment.len() {
            if Instant::now() >= deadline {
                let missing: Vec<u64> = assignment
                    .iter()
                    .filter(|(s, _)| !got.contains_key(s))
                    .map(|(_, w)| *w)
                    .collect();
                for id in &missing {
                    self.kill_worker(*id, "work deadline missed");
                }
                return Err(AttemptFail::new(format!(
                    "work deadline passed with {} shard(s) outstanding",
                    assignment.len() - got.len()
                )));
            }
            let mut dead: Vec<(u64, String)> = Vec::new();
            let mut fault: Option<String> = None;
            let mut merges: Vec<(u64, MetricsDelta)> = Vec::new();
            for w in self.workers.iter_mut() {
                match w.channel.recv_timeout(POLL) {
                    Ok(msg) => {
                        w.last_seen = Instant::now();
                        w.recorder.note("recv", || frame_summary(&msg));
                        match msg {
                            Message::ShardResult {
                                iteration: i,
                                attempt: a,
                                shard,
                                payload,
                            } if i == iteration && a == attempt => {
                                got.entry(shard).or_insert(payload);
                            }
                            // counter_add self-guards on enabled(), so the
                            // arms below match unconditionally.
                            Message::ShardResult { .. } => {
                                skipper_obs::counter_add("cluster.stale_results", 1.0);
                            }
                            Message::Heartbeat {
                                iteration: hb_iter,
                                metrics,
                                ..
                            } => {
                                skipper_obs::counter_add("cluster.heartbeats", 1.0);
                                if let Some(delta) = metrics {
                                    merges.push((w.id, delta));
                                }
                                let mut board =
                                    self.board.lock().unwrap_or_else(|p| p.into_inner());
                                let row = board.entry(w.id).or_default();
                                row.last_seen_us = skipper_obs::now_us();
                                row.iteration = hb_iter;
                            }
                            Message::Fault { worker, detail } => {
                                fault = Some(format!("worker {worker} fault: {detail}"));
                            }
                            _ => {}
                        }
                    }
                    Err(TransportError::Timeout) => {}
                    Err(e) => dead.push((w.id, e.to_string())),
                }
            }
            for (id, delta) in &merges {
                merge_worker_metrics(*id, delta);
            }
            self.refresh_board_stats();
            for (id, why) in &dead {
                self.kill_worker(*id, why);
            }
            if let Some(reason) = fault {
                return Err(AttemptFail::new(reason));
            }
            if dead
                .iter()
                .any(|(id, _)| assignment.iter().any(|(_, w)| w == id))
            {
                return Err(AttemptFail::new("a worker with assigned shards died"));
            }
        }
        Ok(got)
    }

    /// Shard → worker assignment over the current (id-sorted) workers.
    fn assign(&self, shards: usize) -> Vec<(u32, u64)> {
        (0..shards)
            .map(|s| (s as u32, self.workers[s % self.workers.len()].id))
            .collect()
    }

    /// Publish an attempt's shard assignment on the `/cluster` board.
    fn note_assignment(&self, assignment: &[(u32, u64)], iteration: u64, attempt: u32) {
        let mut board = self.board.lock().unwrap_or_else(|p| p.into_inner());
        for w in &self.workers {
            let row = board.entry(w.id).or_default();
            row.iteration = iteration;
            row.attempt = attempt;
            row.shards = assignment
                .iter()
                .filter(|(_, id)| *id == w.id)
                .map(|(s, _)| *s)
                .collect();
        }
    }

    /// Run one training iteration across the cluster. Gradients are left
    /// accumulated in `net`'s store, exactly like [`crate::engine`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_iteration(
        &mut self,
        net: &mut SpikingNetwork,
        method: &Method,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
        metric: SamMetric,
        policy: SkipPolicy,
    ) -> Result<StepResult, SkipperError> {
        if matches!(method, Method::TbpttLbp { .. }) {
            return Err(SkipperError::Config(
                "TBPTT-LBP auxiliary classifiers are not supported over a cluster transport".into(),
            ));
        }
        let batch = inputs[0].shape()[0];
        self.timesteps = inputs.len();
        let plan = shard_plan(batch, DEFAULT_MAX_SHARDS);
        let params = encode_params(net.params())?;
        let two_phase = matches!(method, Method::Checkpointed { .. } | Method::Skipper { .. });
        let mut attempt: u32 = 0;
        loop {
            self.ensure_capacity()?;
            if attempt >= self.cfg.max_attempts {
                return Err(SkipperError::Transport {
                    peer: self.listener.addr(),
                    detail: format!(
                        "iteration {iter_seed}: retry budget exhausted after {attempt} attempts"
                    ),
                });
            }
            let ctx_for = |shard: u32, range: &std::ops::Range<usize>| WorkCtx {
                iteration: iter_seed,
                attempt,
                shard,
                batch_offset: range.start as u32,
                global_batch: batch as u32,
                seed: iter_seed,
                method: method.clone(),
                metric,
                policy,
            };
            let outcome = if two_phase {
                self.attempt_two_phase(
                    net, method, inputs, labels, iter_seed, attempt, &plan, &params, policy,
                    &ctx_for,
                )
            } else {
                self.attempt_single(
                    net, inputs, labels, iter_seed, attempt, &plan, &params, &ctx_for,
                )
            };
            match outcome {
                Ok(step) => return Ok(step),
                Err(fail) => {
                    attempt += 1;
                    // Both emitters self-guard on enabled().
                    skipper_obs::counter_add("cluster.attempt_retries", 1.0);
                    skipper_obs::instant!(
                        skipper_obs::Level::Warn,
                        "cluster.attempt_retry",
                        iteration = iter_seed,
                        attempt = attempt,
                        reason = fail.reason.as_str(),
                    );
                }
            }
        }
    }

    /// One attempt of a single-dispatch method (BPTT, TBPTT).
    #[allow(clippy::too_many_arguments)]
    fn attempt_single(
        &mut self,
        net: &mut SpikingNetwork,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
        attempt: u32,
        plan: &[std::ops::Range<usize>],
        params: &[u8],
        ctx_for: &dyn Fn(u32, &std::ops::Range<usize>) -> WorkCtx,
    ) -> Result<StepResult, AttemptFail> {
        let assignment = self.assign(plan.len());
        self.note_assignment(&assignment, iter_seed, attempt);
        let trace = current_trace_ctx();
        for (shard, worker) in &assignment {
            let range = &plan[*shard as usize];
            let msg = Message::WorkSingle {
                ctx: ctx_for(*shard, range),
                params: params.to_vec(),
                labels: labels[range.clone()].iter().map(|&l| l as u32).collect(),
                inputs: slice_rows(inputs, range),
                trace,
            };
            self.send_to(*worker, &msg)?;
        }
        let mut got = self.collect(iter_seed, attempt, &assignment)?;
        let mut outs: Vec<ShardOut> = Vec::with_capacity(plan.len());
        for shard in 0..plan.len() as u32 {
            match got.remove(&shard) {
                Some(ResultPayload::Single {
                    loss_groups,
                    correct,
                    sam_sums,
                    recomputed,
                    skipped,
                    grads,
                }) => outs.push(ShardOut {
                    index: shard as usize,
                    loss_groups,
                    correct: correct as usize,
                    sam_sums,
                    recomputed: recomputed as usize,
                    skipped: skipped as usize,
                    wall_us: 0,
                    grads,
                    aux_grads: None,
                }),
                _ => {
                    return Err(AttemptFail::new(format!(
                        "shard {shard} returned the wrong payload kind"
                    )))
                }
            }
        }
        Ok(combine_shards(
            net.params_mut(),
            None,
            outs,
            inputs[0].shape()[0],
            inputs.len(),
        ))
    }

    /// One attempt of a checkpointed/Skipper iteration: phase A on every
    /// shard, global SAM aggregation + skip schedule, phase B, fixed-order
    /// reduction. Both phases must succeed on the same worker set — any
    /// loss (phase-A carries die with their worker) fails the attempt.
    #[allow(clippy::too_many_arguments)]
    fn attempt_two_phase(
        &mut self,
        net: &mut SpikingNetwork,
        method: &Method,
        inputs: &[Tensor],
        labels: &[usize],
        iter_seed: u64,
        attempt: u32,
        plan: &[std::ops::Range<usize>],
        params: &[u8],
        policy: SkipPolicy,
        ctx_for: &dyn Fn(u32, &std::ops::Range<usize>) -> WorkCtx,
    ) -> Result<StepResult, AttemptFail> {
        let batch = inputs[0].shape()[0];
        let timesteps = inputs.len();
        let (checkpoints, percentile) = match method {
            Method::Checkpointed { checkpoints } => (*checkpoints, 0.0),
            Method::Skipper {
                checkpoints,
                percentile,
            } => (*checkpoints, *percentile),
            other => {
                return Err(AttemptFail::new(format!(
                    "{other} is not a two-phase method"
                )))
            }
        };
        let assignment = self.assign(plan.len());
        self.note_assignment(&assignment, iter_seed, attempt);
        let trace = current_trace_ctx();
        for (shard, worker) in &assignment {
            let range = &plan[*shard as usize];
            let msg = Message::WorkForward {
                ctx: ctx_for(*shard, range),
                params: params.to_vec(),
                labels: labels[range.clone()].iter().map(|&l| l as u32).collect(),
                inputs: slice_rows(inputs, range),
                trace,
            };
            self.send_to(*worker, &msg)?;
        }
        let mut fwd = self.collect(iter_seed, attempt, &assignment)?;
        // Cross-shard SAM aggregation in shard order, *before* the SST
        // percentile — identical to the in-process engine.
        let mut sums = vec![0.0f64; timesteps];
        let mut per_sample: Vec<f64> = Vec::with_capacity(batch);
        let mut correct = 0usize;
        for shard in 0..plan.len() as u32 {
            match fwd.remove(&shard) {
                Some(ResultPayload::Forward {
                    sam_sums,
                    per_sample: ps,
                    correct: c,
                }) => {
                    for (acc, v) in sums.iter_mut().zip(&sam_sums) {
                        *acc += *v;
                    }
                    per_sample.extend_from_slice(&ps);
                    correct += c as usize;
                }
                _ => {
                    return Err(AttemptFail::new(format!(
                        "shard {shard} returned the wrong phase-A payload"
                    )))
                }
            }
        }
        let bounds = segment_bounds(timesteps, checkpoints);
        let sam = SpikeActivityMonitor::from_sums(sums.clone());
        let decisions = decide_skips(&sam, &bounds, percentile, policy, iter_seed);
        for (shard, worker) in &assignment {
            self.send_to(
                *worker,
                &Message::WorkBackward {
                    iteration: iter_seed,
                    attempt,
                    shard: *shard,
                    sums: sums.clone(),
                    trace,
                },
            )?;
        }
        let mut bwd = self.collect(iter_seed, attempt, &assignment)?;
        let mut grad_sets: Vec<WireGrads> = Vec::with_capacity(plan.len());
        for shard in 0..plan.len() as u32 {
            match bwd.remove(&shard) {
                Some(ResultPayload::Grads { grads }) => grad_sets.push(grads),
                _ => {
                    return Err(AttemptFail::new(format!(
                        "shard {shard} returned the wrong phase-B payload"
                    )))
                }
            }
        }
        // The attempt is complete and consistent: only now touch state.
        apply_grads(net.params_mut(), tree_reduce(grad_sets));
        emit_skip_trace(&bounds, &sam, &decisions);
        let (skipped, recomputed) = (decisions.skipped(), decisions.recomputed());
        skipper_obs::counter_add("skipper.steps_skipped", skipped as f64);
        skipper_obs::counter_add("skipper.steps_recomputed", recomputed as f64);
        let groups = vec![per_sample];
        Ok(StepResult {
            loss: combine_loss_groups(&groups, batch),
            correct,
            recomputed_steps: recomputed,
            skipped_steps: skipped,
            sam,
            loss_groups: groups,
        })
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        for w in self.workers.iter_mut() {
            let _ = w.channel.send(&Message::Shutdown);
        }
        // `cluster_route` drops with the struct, unregistering `/cluster`.
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Reconnect backoff: bounded exponential with deterministic jitter.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// First retry delay; doubles each consecutive failure.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Consecutive failed connects before giving up.
    pub max_retries: u32,
    /// Seed of the jitter stream (mixed with the worker id).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            max_retries: 10,
            seed: 7,
        }
    }
}

/// The delay before reconnect attempt `attempt` (0-based):
/// `min(base·2^attempt, max)` plus a jitter draw in `[0, base/2)`.
pub(crate) fn backoff_delay(cfg: &BackoffConfig, attempt: u32, rng: &mut XorShiftRng) -> Duration {
    let exp = cfg
        .base
        .saturating_mul(2u32.saturating_pow(attempt.min(16)))
        .min(cfg.max);
    let jitter_us = (cfg.base.as_micros() as u64 / 2).max(1);
    exp + Duration::from_micros(rng.next_u64() % jitter_us)
}

/// Knobs of [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Proposed worker id (the coordinator may assign another on
    /// collision; the Welcome reply is authoritative).
    pub id: u64,
    /// Chaos plan: only the `kill=W@I` schedule is consumed here — frame
    /// faults live in the connector.
    pub chaos: Option<ChaosConfig>,
    /// Reconnect backoff.
    pub backoff: BackoffConfig,
    /// Idle heartbeat period; must be well under the coordinator's
    /// heartbeat deadline.
    pub heartbeat_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            id: 0,
            chaos: None,
            backoff: BackoffConfig::default(),
            heartbeat_interval: Duration::from_millis(150),
        }
    }
}

/// What a worker did over its lifetime (for logs and tests).
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Distinct iterations this worker computed shards for.
    pub iterations: u64,
    /// Shard dispatches completed (phase A and B count separately).
    pub shards: u64,
    /// Successful reconnects after a lost connection.
    pub reconnects: u64,
    /// True when the chaos kill schedule terminated this worker.
    pub killed: bool,
}

/// Phase-A state parked between the two dispatches of a checkpointed
/// iteration, keyed by `(iteration, attempt, shard)`.
struct WorkerCarry {
    inputs: Vec<Tensor>,
    a: PhaseAOut,
    ctx: WorkCtx,
}

/// Serve shard work from a coordinator until Shutdown (or a chaos kill):
/// connect (with backoff), handshake, rebuild the model from the wire
/// spec, then loop — heartbeating while idle, computing shards on work,
/// reconnecting on any torn or poisoned connection.
///
/// # Errors
///
/// [`SkipperError::Transport`] when the reconnect budget is exhausted.
pub fn run_worker(
    connector: &mut dyn ChannelConnector,
    opts: &WorkerOptions,
) -> Result<WorkerReport, SkipperError> {
    let mut report = WorkerReport::default();
    // Join the profiler's thread census: a cluster worker spends most of
    // its life blocked on the coordinator, and samples should say so.
    skipper_obs::profile::touch_thread();
    let mut rng = XorShiftRng::new(opts.backoff.seed ^ opts.id.wrapping_mul(0x9E37)); // jitter only
    let mut connect_attempt: u32 = 0;
    let mut was_connected = false;
    // Persists across reconnects so a rejoining worker never re-ships
    // already-federated totals as fresh deltas.
    let mut shadow = MetricShadow::default();
    // The worker's own flight recorder; dumped on a chaos kill, on an
    // exhausted reconnect budget, and (via the guard) on a panicking
    // unwind, as `blackbox_<id>_self.jsonl` (the `_self` suffix keeps it
    // apart from the coordinator's dump for the same worker).
    let mut recorder = WorkerRecorder {
        id: opts.id,
        rec: FlightRecorder::new(BLACKBOX_CAP),
    };
    loop {
        if connect_attempt > opts.backoff.max_retries {
            recorder.rec.note("exhausted", || {
                format!("\"worker\":{},\"attempts\":{connect_attempt}", recorder.id)
            });
            recorder.dump_self();
            skipper_obs::flush();
            return Err(SkipperError::Transport {
                peer: connector.peer(),
                detail: format!(
                    "reconnect budget exhausted after {} attempts",
                    connect_attempt
                ),
            });
        }
        if connect_attempt > 0 {
            let delay = backoff_delay(&opts.backoff, connect_attempt - 1, &mut rng);
            // counter_add self-guards on enabled().
            skipper_obs::counter_add("cluster.backoff_retries", 1.0);
            std::thread::sleep(delay);
        }
        let Ok(mut channel) = connector.connect_channel() else {
            connect_attempt += 1;
            continue;
        };
        // Clock probe: our send timestamp rides in Hello; the coordinator
        // echoes it with its own receive timestamp in Welcome. Only armed
        // while tracing is enabled so disabled runs keep the old frames.
        let ping = if skipper_obs::enabled() {
            Some(skipper_obs::now_us())
        } else {
            None
        };
        if channel
            .send(&Message::Hello {
                worker: opts.id,
                reconnect: was_connected,
                ping,
            })
            .is_err()
        {
            connect_attempt += 1;
            continue;
        }
        let Ok(Message::Welcome {
            worker: id,
            spec,
            pong,
        }) = channel.recv_timeout(Duration::from_secs(10))
        else {
            connect_attempt += 1;
            continue;
        };
        let t3 = skipper_obs::now_us();
        if let Some((t1, t2)) = pong {
            // NTP-style: assume symmetric paths; the coordinator stamped t2
            // between our t1 and t3, so offset = t2 - midpoint(t1, t3)
            // estimates (coordinator clock - worker clock). The stitcher
            // shifts this worker's timestamps by +offset.
            let offset = t2 as i64 - ((t1 + t3) / 2) as i64;
            let rtt = t3.saturating_sub(t1);
            skipper_obs::gauge_set("cluster.clock_offset_us", offset as f64);
            skipper_obs::instant!(
                skipper_obs::Level::Info,
                "cluster.clock_sync",
                worker = id,
                offset_us = offset,
                rtt_us = rtt,
            );
        }
        // Carve a private span-id range so ids from this process never
        // collide with the coordinator's (or other workers') in a stitched
        // multi-process trace.
        skipper_obs::namespace_span_ids(id << 40);
        let Ok(spec) = WireSpec::decode(&spec) else {
            connect_attempt += 1;
            continue;
        };
        if was_connected {
            report.reconnects += 1;
        }
        was_connected = true;
        recorder.id = id;
        recorder.rec.note("connected", || {
            format!("\"worker\":{id},\"reconnect\":{was_connected}")
        });
        match serve(
            &mut channel,
            id,
            &spec,
            opts,
            &mut report,
            &mut shadow,
            &mut recorder.rec,
        ) {
            ServeEnd::Shutdown => {
                skipper_obs::flush();
                return Ok(report);
            }
            ServeEnd::Killed => {
                report.killed = true;
                recorder.rec.note("killed", || {
                    format!("\"worker\":{id},\"iteration\":{}", report.iterations)
                });
                recorder.dump_self();
                skipper_obs::flush();
                return Ok(report);
            }
            ServeEnd::Reconnect => connect_attempt = 1,
        }
    }
}

/// Owns a worker's [`FlightRecorder`] and dumps it if the thread unwinds
/// with the recorder still alive — the crash path that can't reach an
/// explicit dump call.
struct WorkerRecorder {
    id: u64,
    rec: FlightRecorder,
}

impl WorkerRecorder {
    fn dump_self(&self) {
        self.rec
            .dump(&blackbox_dir().join(format!("blackbox_{}_self.jsonl", self.id)));
    }
}

impl Drop for WorkerRecorder {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.rec.note("panic", || format!("\"worker\":{}", self.id));
            self.dump_self();
            skipper_obs::flush();
        }
    }
}

/// Why one connection's serve loop ended.
enum ServeEnd {
    Shutdown,
    Killed,
    Reconnect,
}

/// Open the `worker_task` span for one dispatch, parented under the
/// coordinator's `iteration` span when the frame carried a trace context
/// (remote parent ids resolve after [`skipper_obs::namespace_span_ids`]
/// keeps the id spaces disjoint). Spans the shard cores open underneath
/// nest here via the thread-local stack, exactly like the in-process
/// engine's pool.
fn worker_task_span(
    worker: u64,
    iteration: u64,
    attempt: u32,
    shard: u32,
    trace: Option<TraceCtx>,
) -> skipper_obs::SpanGuard {
    if !skipper_obs::enabled() {
        return skipper_obs::SpanGuard::disabled();
    }
    skipper_obs::SpanGuard::enter_with_parent(
        "worker_task",
        vec![
            ("worker", worker.into()),
            ("iteration", iteration.into()),
            ("attempt", attempt.into()),
            ("shard", shard.into()),
        ],
        trace.map(|t| t.parent),
    )
}

/// Serve one established connection until it drops or the coordinator
/// says Shutdown.
fn serve(
    channel: &mut Channel,
    id: u64,
    spec: &WireSpec,
    opts: &WorkerOptions,
    report: &mut WorkerReport,
    shadow: &mut MetricShadow,
    recorder: &mut FlightRecorder,
) -> ServeEnd {
    let mut net = custom_net(&spec.model);
    let mut carries: HashMap<(u64, u32, u32), WorkerCarry> = HashMap::new();
    let mut last_iter: u64 = 0;
    let kill = opts.chaos.as_ref().and_then(|c| c.kill);
    loop {
        let msg = match channel.recv_timeout(opts.heartbeat_interval) {
            Ok(msg) => msg,
            Err(TransportError::Timeout) => {
                // Idle beacon doubles as the metric-federation carrier.
                let metrics = shadow.delta();
                if channel
                    .send(&Message::Heartbeat {
                        worker: id,
                        iteration: last_iter,
                        metrics,
                    })
                    .is_err()
                {
                    return ServeEnd::Reconnect;
                }
                continue;
            }
            Err(_) => return ServeEnd::Reconnect,
        };
        recorder.note("recv", || frame_summary(&msg));
        match msg {
            Message::Shutdown => return ServeEnd::Shutdown,
            Message::WorkSingle {
                ctx,
                params,
                labels,
                inputs,
                trace,
            } => {
                if matches!(kill, Some((kw, ki)) if kw == id && ctx.iteration >= ki) {
                    return ServeEnd::Killed;
                }
                if ctx.iteration != last_iter {
                    last_iter = ctx.iteration;
                    report.iterations += 1;
                }
                let task = worker_task_span(id, ctx.iteration, ctx.attempt, ctx.shard, trace);
                let shard_span = skipper_obs::span!("shard", shard = ctx.shard);
                let reply = match work_single(&mut net, &ctx, &params, &labels, &inputs) {
                    Ok(payload) => {
                        report.shards += 1;
                        Message::ShardResult {
                            iteration: ctx.iteration,
                            attempt: ctx.attempt,
                            shard: ctx.shard,
                            payload,
                        }
                    }
                    Err(detail) => Message::Fault { worker: id, detail },
                };
                drop(shard_span);
                drop(task);
                if channel.send(&reply).is_err() {
                    return ServeEnd::Reconnect;
                }
            }
            Message::WorkForward {
                ctx,
                params,
                labels,
                inputs,
                trace,
            } => {
                if matches!(kill, Some((kw, ki)) if kw == id && ctx.iteration >= ki) {
                    return ServeEnd::Killed;
                }
                if ctx.iteration != last_iter {
                    last_iter = ctx.iteration;
                    report.iterations += 1;
                }
                carries.retain(|(i, a, _), _| *i == ctx.iteration && *a == ctx.attempt);
                let task = worker_task_span(id, ctx.iteration, ctx.attempt, ctx.shard, trace);
                let shard_span = skipper_obs::span!("shard_forward", shard = ctx.shard);
                let reply = match work_forward(&mut net, &ctx, &params, &labels, &inputs) {
                    Ok((payload, carry)) => {
                        report.shards += 1;
                        carries.insert((ctx.iteration, ctx.attempt, ctx.shard), carry);
                        Message::ShardResult {
                            iteration: ctx.iteration,
                            attempt: ctx.attempt,
                            shard: ctx.shard,
                            payload,
                        }
                    }
                    Err(detail) => Message::Fault { worker: id, detail },
                };
                drop(shard_span);
                drop(task);
                if channel.send(&reply).is_err() {
                    return ServeEnd::Reconnect;
                }
            }
            Message::WorkBackward {
                iteration,
                attempt,
                shard,
                sums,
                trace,
            } => {
                let task = worker_task_span(id, iteration, attempt, shard, trace);
                let shard_span = skipper_obs::span!("shard_backward", shard = shard);
                let reply = match carries.remove(&(iteration, attempt, shard)) {
                    Some(carry) => {
                        report.shards += 1;
                        Message::ShardResult {
                            iteration,
                            attempt,
                            shard,
                            payload: work_backward(&mut net, carry, sums),
                        }
                    }
                    None => Message::Fault {
                        worker: id,
                        detail: format!(
                            "no phase-A carry for iteration {iteration} attempt {attempt} \
                             shard {shard} (worker restarted between phases)"
                        ),
                    },
                };
                drop(shard_span);
                drop(task);
                if channel.send(&reply).is_err() {
                    return ServeEnd::Reconnect;
                }
            }
            _ => {}
        }
    }
}

/// Overwrite the worker net's weights from `.skw` record bytes.
fn apply_wire_params(net: &mut SpikingNetwork, params: &[u8]) -> Result<(), String> {
    let records =
        read_params(&mut &params[..]).map_err(|e| format!("params decode failed: {e}"))?;
    apply_records(net.params_mut(), records).map_err(|e| format!("params apply failed: {e}"))
}

/// One single-dispatch shard (BPTT / TBPTT).
fn work_single(
    net: &mut SpikingNetwork,
    ctx: &WorkCtx,
    params: &[u8],
    labels: &[u32],
    inputs: &[Tensor],
) -> Result<ResultPayload, String> {
    apply_wire_params(net, params)?;
    let labels: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
    let shard = ShardCtx {
        global_batch: ctx.global_batch as usize,
        batch_offset: ctx.batch_offset as usize,
    };
    let mut grads = ShardGrads::for_store(net.params());
    let step = match &ctx.method {
        Method::Bptt => crate::bptt::bptt_core(
            net,
            inputs,
            &labels,
            ctx.seed,
            shard,
            &mut GradSink::Shard(&mut grads),
        ),
        Method::Tbptt { window } => tbptt_core(
            net,
            inputs,
            &labels,
            ctx.seed,
            *window,
            shard,
            &mut GradSink::Shard(&mut grads),
        ),
        other => return Err(format!("{other} is not a single-dispatch method")),
    };
    Ok(ResultPayload::Single {
        loss_groups: step.loss_groups,
        correct: step.correct as u32,
        sam_sums: step.sam.sums().to_vec(),
        recomputed: step.recomputed_steps as u32,
        skipped: step.skipped_steps as u32,
        grads: grads.into_raw(),
    })
}

/// Phase A of a checkpointed/Skipper shard.
fn work_forward(
    net: &mut SpikingNetwork,
    ctx: &WorkCtx,
    params: &[u8],
    labels: &[u32],
    inputs: &[Tensor],
) -> Result<(ResultPayload, WorkerCarry), String> {
    apply_wire_params(net, params)?;
    let checkpoints = match &ctx.method {
        Method::Checkpointed { checkpoints } | Method::Skipper { checkpoints, .. } => *checkpoints,
        other => return Err(format!("{other} is not a two-phase method")),
    };
    let labels: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
    let shard = ShardCtx {
        global_batch: ctx.global_batch as usize,
        batch_offset: ctx.batch_offset as usize,
    };
    let bounds = segment_bounds(inputs.len(), checkpoints);
    let a = checkpoint_forward(net, inputs, &labels, ctx.seed, &bounds, ctx.metric, shard);
    let payload = ResultPayload::Forward {
        sam_sums: a.sam.sums().to_vec(),
        per_sample: a.per_sample_loss.clone(),
        correct: a.correct as u32,
    };
    let carry = WorkerCarry {
        inputs: inputs.to_vec(),
        a,
        ctx: ctx.clone(),
    };
    Ok((payload, carry))
}

/// Phase B: re-derive the global skip schedule from the aggregated sums
/// (pure, bit-identical to the coordinator's) and run the segment-wise
/// backward under it.
fn work_backward(net: &mut SpikingNetwork, carry: WorkerCarry, sums: Vec<f64>) -> ResultPayload {
    let ctx = &carry.ctx;
    let (checkpoints, percentile) = match &ctx.method {
        Method::Checkpointed { checkpoints } => (*checkpoints, 0.0),
        Method::Skipper {
            checkpoints,
            percentile,
        } => (*checkpoints, *percentile),
        // Guarded at work_forward; an impossible carry yields empty grads.
        _ => (1, 0.0),
    };
    let bounds = segment_bounds(carry.inputs.len(), checkpoints);
    let global_sam = SpikeActivityMonitor::from_sums(sums);
    let decisions = decide_skips(&global_sam, &bounds, percentile, ctx.policy, ctx.seed);
    let shard = ShardCtx {
        global_batch: ctx.global_batch as usize,
        batch_offset: ctx.batch_offset as usize,
    };
    let mut grads = ShardGrads::for_store(net.params());
    checkpoint_backward(
        net,
        &carry.inputs,
        ctx.seed,
        &bounds,
        &carry.a.ckpts,
        &carry.a.per_step_grad,
        &carry.a.sam,
        &decisions,
        shard,
        &mut GradSink::Shard(&mut grads),
        false,
    );
    ResultPayload::Grads {
        grads: grads.into_raw(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_snn::LifConfig;

    #[test]
    fn wire_spec_roundtrips_every_field() {
        let spec = WireSpec {
            model: ModelConfig {
                input_hw: 8,
                in_channels: 2,
                num_classes: 11,
                width_mult: 0.25,
                lif: LifConfig {
                    leak: 0.8,
                    threshold: 1.25,
                    surrogate: Surrogate::ArcTan { alpha: 2.0 },
                },
                dropout: Some(0.1),
                seed: 0xBEEF,
            },
            timesteps: 12,
        };
        let back = WireSpec::decode(&spec.encode()).unwrap();
        assert_eq!(back.encode(), spec.encode(), "roundtrip is stable");
        assert_eq!(back.model.num_classes, 11);
        assert_eq!(back.model.seed, 0xBEEF);
        assert_eq!(back.model.dropout, Some(0.1));
        assert!(matches!(
            back.model.lif.surrogate,
            Surrogate::ArcTan { alpha } if alpha == 2.0
        ));
        assert_eq!(back.timesteps, 12);
        let no_dropout = WireSpec {
            model: ModelConfig {
                dropout: None,
                ..spec.model.clone()
            },
            timesteps: 4,
        };
        let back = WireSpec::decode(&no_dropout.encode()).unwrap();
        assert_eq!(back.model.dropout, None);
        assert_eq!(back.timesteps, 4);
        assert!(WireSpec::decode(&spec.encode()[..9]).is_err());
    }

    #[test]
    fn backoff_grows_is_capped_and_jitters_deterministically() {
        let cfg = BackoffConfig {
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            max_retries: 8,
            seed: 3,
        };
        let mut rng = XorShiftRng::new(1);
        let delays: Vec<Duration> = (0..8).map(|a| backoff_delay(&cfg, a, &mut rng)).collect();
        // Exponential envelope up to the cap (jitter < base/2 can't mask a doubling).
        assert!(delays[1] > delays[0]);
        assert!(delays[3] > delays[2]);
        for d in &delays[5..] {
            assert!(*d >= Duration::from_millis(200));
            assert!(*d < Duration::from_millis(206));
        }
        // Same rng seed → same jitter sequence.
        let mut r1 = XorShiftRng::new(9);
        let mut r2 = XorShiftRng::new(9);
        for a in 0..6 {
            assert_eq!(
                backoff_delay(&cfg, a, &mut r1),
                backoff_delay(&cfg, a, &mut r2)
            );
        }
    }

    #[test]
    fn cluster_addr_env_is_read_when_set() {
        // Avoid mutating the process env (tests run in parallel): just
        // check the parse contract via the public constant.
        assert_eq!(CLUSTER_ADDR_ENV, "SKIPPER_CLUSTER_ADDR");
    }
}
