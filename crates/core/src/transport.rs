//! Message transport between the cluster coordinator and its workers.
//!
//! The distributed engine (see [`crate::cluster`]) exchanges
//! length-prefixed, CRC32-framed binary messages over an abstract
//! [`FrameLink`]. Two links exist: a real TCP socket
//! ([`TcpConnector`]/[`TcpListenerLink`]) for separate-process workers,
//! and an in-process channel pair ([`in_proc_net`]) that pushes the very
//! same encoded bytes through `mpsc` channels — so every codec path,
//! fault mode and recovery transition is testable on loopback without
//! sockets, and with them.
//!
//! # Frame format
//!
//! Following the `.skw`/`.sksn` container conventions (little-endian,
//! CRC32/IEEE over the payload):
//!
//! ```text
//! magic  u32   "SKFR"
//! len    u32   payload byte length (≤ 64 MiB)
//! crc    u32   CRC32(payload)
//! payload[len]
//! ```
//!
//! A frame that fails the magic, length-plausibility or CRC check
//! poisons the connection: framing can no longer be trusted, so the
//! receiver reports [`TransportError::Frame`] and the cluster layer
//! tears the link down (the worker reconnects with backoff; the
//! coordinator aborts and retries the in-flight iteration).
//!
//! # Spike-compact tensor encoding
//!
//! Spike tensors are binary almost everywhere (the paper's premise), so
//! [`WireTensor`] ships a tensor whose every value is bit-exactly `0.0`
//! or `1.0` as a bitmask — 1 bit/element instead of 32 — and falls back
//! to raw little-endian `f32` otherwise. Both encodings are bit-exact
//! round trips.
//!
//! # Chaos injection
//!
//! [`ChaosConfig`] (parsed from the `SKIPPER_CHAOS` environment knob)
//! arms a deterministic, seeded fault layer on a link's *send* side:
//! frame drop, duplication, byte corruption, truncation and delay, plus
//! a worker kill schedule consumed by [`crate::cluster::run_worker`].
//! Every injected fault increments `engine.transport_chaos{kind}`.

use crate::error::SkipperError;
use crate::method::Method;
use crate::sam::{SamMetric, SkipPolicy};
use skipper_snn::serialize::crc32;
use skipper_tensor::{Tensor, XorShiftRng};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frame magic: `"SKFR"` little-endian.
const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"SKFR");

/// Upper bound on a single frame payload; anything larger is treated as
/// stream desync, not a legitimate message.
const MAX_FRAME: usize = 64 << 20;

/// Frame header bytes: magic + len + crc.
const HEADER: usize = 12;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Wire-level failures, classified so the cluster layer can pick the
/// right recovery: retry after [`Timeout`](TransportError::Timeout),
/// reconnect after [`Closed`](TransportError::Closed) or
/// [`Frame`](TransportError::Frame).
#[derive(Debug)]
pub enum TransportError {
    /// No complete frame arrived before the deadline.
    Timeout,
    /// The peer closed the connection (or the channel hung up).
    Closed(String),
    /// Framing is broken: bad magic, implausible length, CRC mismatch or
    /// an undecodable message. The connection must be torn down.
    Frame(String),
    /// An OS-level socket error.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "timed out waiting for a frame"),
            TransportError::Closed(d) => write!(f, "connection closed: {d}"),
            TransportError::Frame(d) => write!(f, "framing error: {d}"),
            TransportError::Io(d) => write!(f, "socket error: {d}"),
        }
    }
}

impl TransportError {
    /// Wrap as a [`SkipperError::Transport`] naming the peer.
    pub fn at(self, peer: &str) -> SkipperError {
        SkipperError::Transport {
            peer: peer.to_string(),
            detail: self.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec primitives
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f32(buf, v);
    }
}

/// Cursor over a received payload; every read is bounds-checked and
/// reports a typed [`TransportError::Frame`] instead of panicking.
pub(crate) struct WireReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.at + n > self.buf.len() {
            return Err(TransportError::Frame(format!(
                "payload truncated: wanted {n} bytes at offset {} of {}",
                self.at,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, TransportError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, TransportError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn f32(&mut self) -> Result<f32, TransportError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn f64(&mut self) -> Result<f64, TransportError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length-prefixed byte run, with a plausibility cap.
    pub fn bytes(&mut self) -> Result<&'a [u8], TransportError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Frame(format!(
                "implausible byte-run length {len}"
            )));
        }
        self.take(len)
    }

    pub fn string(&mut self) -> Result<String, TransportError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|e| TransportError::Frame(format!("string is not UTF-8: {e}")))
    }

    pub fn f64s(&mut self) -> Result<Vec<f64>, TransportError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME / 8 {
            return Err(TransportError::Frame(format!("implausible f64 count {n}")));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    pub fn f32s(&mut self) -> Result<Vec<f32>, TransportError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME / 4 {
            return Err(TransportError::Frame(format!("implausible f32 count {n}")));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    /// Bytes not yet consumed. The wire format grows by appending
    /// *optional trailing blocks* to existing messages: a decoder probes
    /// `remaining() > 0` before [`done`](WireReader::done) (which rejects
    /// trailing bytes), so frames from peers predating a block still parse
    /// with the corresponding field absent.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    pub fn done(&self) -> Result<(), TransportError> {
        if self.at != self.buf.len() {
            return Err(TransportError::Frame(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Spike-compact tensor encoding
// ---------------------------------------------------------------------------

/// Encode `t` for the wire: a 1-bit/element bitmask when every value is
/// bit-exactly `0.0` or `1.0` (spike tensors), raw `f32` otherwise.
pub(crate) fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    let dims = t.shape().dims();
    buf.push(dims.len() as u8);
    for &d in dims {
        put_u32(buf, d as u32);
    }
    let data = t.data();
    let binary = data
        .iter()
        .all(|&v| v == 0.0 || v.to_bits() == 1.0f32.to_bits());
    if binary {
        buf.push(1); // bitmask encoding
        let mut byte = 0u8;
        for (i, &v) in data.iter().enumerate() {
            if v.to_bits() == 1.0f32.to_bits() {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                buf.push(byte);
                byte = 0;
            }
        }
        if !data.len().is_multiple_of(8) {
            buf.push(byte);
        }
    } else {
        buf.push(0); // raw f32 encoding
        for &v in data {
            put_f32(buf, v);
        }
    }
}

/// Decode a [`put_tensor`] payload; bit-exact for both encodings.
pub(crate) fn read_tensor(r: &mut WireReader<'_>) -> Result<Tensor, TransportError> {
    let rank = r.u8()? as usize;
    if rank > 8 {
        return Err(TransportError::Frame(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u32()? as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > MAX_FRAME / 4 {
        return Err(TransportError::Frame(format!(
            "implausible tensor size {numel}"
        )));
    }
    let encoding = r.u8()?;
    let data = match encoding {
        1 => {
            let bytes = r.take(numel.div_ceil(8))?;
            (0..numel)
                .map(|i| {
                    if bytes[i / 8] & (1 << (i % 8)) != 0 {
                        1.0f32
                    } else {
                        0.0f32
                    }
                })
                .collect()
        }
        0 => (0..numel)
            .map(|_| r.f32())
            .collect::<Result<Vec<f32>, _>>()?,
        other => {
            return Err(TransportError::Frame(format!(
                "unknown tensor encoding {other}"
            )))
        }
    };
    Ok(Tensor::from_vec(data, dims))
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Per-iteration execution context carried by every work assignment, so a
/// worker never computes with stale knobs: the method (as possibly
/// stepped by the memory governor), SAM metric, skip policy and the
/// iteration seed all ride along.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkCtx {
    pub iteration: u64,
    pub attempt: u32,
    pub shard: u32,
    pub batch_offset: u32,
    pub global_batch: u32,
    pub seed: u64,
    pub method: Method,
    pub metric: SamMetric,
    pub policy: SkipPolicy,
}

fn put_method(buf: &mut Vec<u8>, m: &Method) {
    match m {
        Method::Bptt => buf.push(0),
        Method::Checkpointed { checkpoints } => {
            buf.push(1);
            put_u32(buf, *checkpoints as u32);
        }
        Method::Skipper {
            checkpoints,
            percentile,
        } => {
            buf.push(2);
            put_u32(buf, *checkpoints as u32);
            put_f32(buf, *percentile);
        }
        Method::Tbptt { window } => {
            buf.push(3);
            put_u32(buf, *window as u32);
        }
        Method::TbpttLbp { window, taps } => {
            buf.push(4);
            put_u32(buf, *window as u32);
            put_u32(buf, taps.len() as u32);
            for &t in taps {
                put_u32(buf, t as u32);
            }
        }
    }
}

fn read_method(r: &mut WireReader<'_>) -> Result<Method, TransportError> {
    Ok(match r.u8()? {
        0 => Method::Bptt,
        1 => Method::Checkpointed {
            checkpoints: r.u32()? as usize,
        },
        2 => Method::Skipper {
            checkpoints: r.u32()? as usize,
            percentile: r.f32()?,
        },
        3 => Method::Tbptt {
            window: r.u32()? as usize,
        },
        4 => {
            let window = r.u32()? as usize;
            let n = r.u32()? as usize;
            if n > 1024 {
                return Err(TransportError::Frame(format!("implausible tap count {n}")));
            }
            let taps = (0..n)
                .map(|_| r.u32().map(|v| v as usize))
                .collect::<Result<Vec<_>, _>>()?;
            Method::TbpttLbp { window, taps }
        }
        other => return Err(TransportError::Frame(format!("unknown method tag {other}"))),
    })
}

fn put_metric(buf: &mut Vec<u8>, m: SamMetric) {
    buf.push(match m {
        SamMetric::SpikeSum => 0,
        SamMetric::NeuronNormalized => 1,
        SamMetric::MembraneL2 => 2,
    });
}

fn read_metric(r: &mut WireReader<'_>) -> Result<SamMetric, TransportError> {
    Ok(match r.u8()? {
        0 => SamMetric::SpikeSum,
        1 => SamMetric::NeuronNormalized,
        2 => SamMetric::MembraneL2,
        other => return Err(TransportError::Frame(format!("unknown metric tag {other}"))),
    })
}

fn put_policy(buf: &mut Vec<u8>, p: SkipPolicy) {
    buf.push(match p {
        SkipPolicy::SpikeActivity => 0,
        SkipPolicy::Random => 1,
    });
}

fn read_policy(r: &mut WireReader<'_>) -> Result<SkipPolicy, TransportError> {
    Ok(match r.u8()? {
        0 => SkipPolicy::SpikeActivity,
        1 => SkipPolicy::Random,
        other => return Err(TransportError::Frame(format!("unknown policy tag {other}"))),
    })
}

fn put_ctx(buf: &mut Vec<u8>, c: &WorkCtx) {
    put_u64(buf, c.iteration);
    put_u32(buf, c.attempt);
    put_u32(buf, c.shard);
    put_u32(buf, c.batch_offset);
    put_u32(buf, c.global_batch);
    put_u64(buf, c.seed);
    put_method(buf, &c.method);
    put_metric(buf, c.metric);
    put_policy(buf, c.policy);
}

fn read_ctx(r: &mut WireReader<'_>) -> Result<WorkCtx, TransportError> {
    Ok(WorkCtx {
        iteration: r.u64()?,
        attempt: r.u32()?,
        shard: r.u32()?,
        batch_offset: r.u32()?,
        global_batch: r.u32()?,
        seed: r.u64()?,
        method: read_method(r)?,
        metric: read_metric(r)?,
        policy: read_policy(r)?,
    })
}

/// Per-parameter raw gradients in store order (`None` = untouched).
pub(crate) type WireGrads = Vec<Option<Vec<f32>>>;

fn put_grads(buf: &mut Vec<u8>, grads: &WireGrads) {
    put_u32(buf, grads.len() as u32);
    for g in grads {
        match g {
            Some(v) => {
                buf.push(1);
                put_f32s(buf, v);
            }
            None => buf.push(0),
        }
    }
}

fn read_grads(r: &mut WireReader<'_>) -> Result<WireGrads, TransportError> {
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(TransportError::Frame(format!(
            "implausible gradient slot count {n}"
        )));
    }
    (0..n)
        .map(|_| {
            Ok(match r.u8()? {
                0 => None,
                1 => Some(r.f32s()?),
                other => {
                    return Err(TransportError::Frame(format!(
                        "unknown gradient slot tag {other}"
                    )))
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Optional trailing blocks: trace context + metric deltas
// ---------------------------------------------------------------------------

/// Version tag opening every optional trailing block, so a future format
/// revision can be told apart from a truncation or garbage.
const BLOCK_V1: u8 = 1;

/// Distributed trace context riding on work dispatches: the coordinator's
/// run-level trace id and the span (the open `iteration` span) that the
/// worker's `worker_task` span should nest under. Ships as an optional
/// trailing block — frames from coordinators predating it decode with the
/// field `None` and workers simply open unparented spans, as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TraceCtx {
    /// Process-stable id of the coordinator's trace (groups every span of
    /// one training run across all processes).
    pub trace: u64,
    /// Span id the receiving worker adopts as its remote parent.
    pub parent: u64,
}

fn put_trace(buf: &mut Vec<u8>, t: &Option<TraceCtx>) {
    if let Some(t) = t {
        buf.push(BLOCK_V1);
        put_u64(buf, t.trace);
        put_u64(buf, t.parent);
    }
}

fn read_trace(r: &mut WireReader<'_>) -> Result<Option<TraceCtx>, TransportError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let v = r.u8()?;
    if v != BLOCK_V1 {
        return Err(TransportError::Frame(format!(
            "unknown trace-context block version {v}"
        )));
    }
    Ok(Some(TraceCtx {
        trace: r.u64()?,
        parent: r.u64()?,
    }))
}

/// One histogram's federated state: bucket-count deltas since the last
/// heartbeat plus the worker's lifetime sum/count deltas and min/max.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistDelta {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
    pub min: f64,
    pub max: f64,
}

/// Compact metric-registry delta a worker piggybacks on `Heartbeat`:
/// counter increments, current gauge values, and histogram bucket deltas
/// since the previous heartbeat. The coordinator merges these into its own
/// registry under `worker="<id>"` labels, making `/metrics` cluster-wide.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MetricsDelta {
    pub counters: Vec<(String, f64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistDelta)>,
}

impl MetricsDelta {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Plausibility cap on federated series per heartbeat; a delta this large
/// is a mis-encoded frame, not telemetry.
const MAX_DELTA_SERIES: usize = 1 << 16;

fn put_metrics_delta(buf: &mut Vec<u8>, d: &Option<MetricsDelta>) {
    let Some(d) = d else { return };
    buf.push(BLOCK_V1);
    put_u32(buf, d.counters.len() as u32);
    for (name, v) in &d.counters {
        put_str(buf, name);
        put_f64(buf, *v);
    }
    put_u32(buf, d.gauges.len() as u32);
    for (name, v) in &d.gauges {
        put_str(buf, name);
        put_f64(buf, *v);
    }
    put_u32(buf, d.histograms.len() as u32);
    for (name, h) in &d.histograms {
        put_str(buf, name);
        put_f64s(buf, &h.bounds);
        put_u32(buf, h.counts.len() as u32);
        for &c in &h.counts {
            put_u64(buf, c);
        }
        put_f64(buf, h.sum);
        put_u64(buf, h.count);
        put_f64(buf, h.min);
        put_f64(buf, h.max);
    }
}

fn read_metrics_delta(r: &mut WireReader<'_>) -> Result<Option<MetricsDelta>, TransportError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let v = r.u8()?;
    if v != BLOCK_V1 {
        return Err(TransportError::Frame(format!(
            "unknown metrics-delta block version {v}"
        )));
    }
    let series = |r: &mut WireReader<'_>| -> Result<Vec<(String, f64)>, TransportError> {
        let n = r.u32()? as usize;
        if n > MAX_DELTA_SERIES {
            return Err(TransportError::Frame(format!(
                "implausible metric-series count {n}"
            )));
        }
        (0..n).map(|_| Ok((r.string()?, r.f64()?))).collect()
    };
    let counters = series(r)?;
    let gauges = series(r)?;
    let n = r.u32()? as usize;
    if n > MAX_DELTA_SERIES {
        return Err(TransportError::Frame(format!(
            "implausible histogram-series count {n}"
        )));
    }
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let bounds = r.f64s()?;
        let buckets = r.u32()? as usize;
        if buckets > 1 << 16 {
            return Err(TransportError::Frame(format!(
                "implausible bucket count {buckets}"
            )));
        }
        let counts = (0..buckets)
            .map(|_| r.u64())
            .collect::<Result<Vec<_>, _>>()?;
        histograms.push((
            name,
            HistDelta {
                bounds,
                counts,
                sum: r.f64()?,
                count: r.u64()?,
                min: r.f64()?,
                max: r.f64()?,
            },
        ));
    }
    Ok(Some(MetricsDelta {
        counters,
        gauges,
        histograms,
    }))
}

/// What one shard hands back for one dispatch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ResultPayload {
    /// Phase A of a checkpointed/Skipper iteration.
    Forward {
        sam_sums: Vec<f64>,
        per_sample: Vec<f64>,
        correct: u32,
    },
    /// Phase B gradients.
    Grads { grads: WireGrads },
    /// A whole single-phase (BPTT/TBPTT) shard.
    Single {
        loss_groups: Vec<Vec<f64>>,
        correct: u32,
        sam_sums: Vec<f64>,
        recomputed: u32,
        skipped: u32,
        grads: WireGrads,
    },
}

/// Every message the coordinator/worker protocol exchanges.
///
/// Fields typed `Option<...>` ride as optional trailing blocks after the
/// original fixed layout: `None` encodes to byte-identical old frames, and
/// a decoder finding no trailing bytes yields `None` — so mixed-version
/// clusters (old worker, new coordinator) keep interoperating.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Message {
    /// Worker → coordinator on (re)connect. `ping` is the worker's local
    /// send timestamp (µs on its own clock), echoed back in `Welcome` for
    /// the NTP-style clock-offset estimate.
    Hello {
        worker: u64,
        reconnect: bool,
        ping: Option<u64>,
    },
    /// Coordinator → worker: assigned id + model spec bytes
    /// (see [`crate::cluster::WireSpec`]). `pong` is `(t1_echo, t2)`:
    /// the worker's `ping` echoed back plus the coordinator's local
    /// receive/send timestamp.
    Welcome {
        worker: u64,
        spec: Vec<u8>,
        pong: Option<(u64, u64)>,
    },
    /// Worker → coordinator liveness beacon (sent while idle), optionally
    /// carrying the worker's metric-registry delta for federation.
    Heartbeat {
        worker: u64,
        iteration: u64,
        metrics: Option<MetricsDelta>,
    },
    /// One whole single-phase shard: params + sliced inputs + labels.
    WorkSingle {
        ctx: WorkCtx,
        params: Vec<u8>,
        labels: Vec<u32>,
        inputs: Vec<Tensor>,
        trace: Option<TraceCtx>,
    },
    /// Phase A of a two-phase shard (same payload shape as `WorkSingle`).
    WorkForward {
        ctx: WorkCtx,
        params: Vec<u8>,
        labels: Vec<u32>,
        inputs: Vec<Tensor>,
        trace: Option<TraceCtx>,
    },
    /// Phase B go: globally aggregated SAM sums (the worker re-derives
    /// the skip schedule bit-identically with `decide_skips`).
    WorkBackward {
        iteration: u64,
        attempt: u32,
        shard: u32,
        sums: Vec<f64>,
        trace: Option<TraceCtx>,
    },
    /// Worker → coordinator shard result.
    ShardResult {
        iteration: u64,
        attempt: u32,
        shard: u32,
        payload: ResultPayload,
    },
    /// Worker-side protocol fault the worker can name (e.g. a missing
    /// phase-A carry after a restart). The coordinator aborts the attempt.
    Fault { worker: u64, detail: String },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
}

impl Message {
    /// Encode to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello {
                worker,
                reconnect,
                ping,
            } => {
                buf.push(1);
                put_u64(&mut buf, *worker);
                buf.push(u8::from(*reconnect));
                if let Some(t1) = ping {
                    buf.push(BLOCK_V1);
                    put_u64(&mut buf, *t1);
                }
            }
            Message::Welcome { worker, spec, pong } => {
                buf.push(2);
                put_u64(&mut buf, *worker);
                put_bytes(&mut buf, spec);
                if let Some((t1, t2)) = pong {
                    buf.push(BLOCK_V1);
                    put_u64(&mut buf, *t1);
                    put_u64(&mut buf, *t2);
                }
            }
            Message::Heartbeat {
                worker,
                iteration,
                metrics,
            } => {
                buf.push(3);
                put_u64(&mut buf, *worker);
                put_u64(&mut buf, *iteration);
                put_metrics_delta(&mut buf, metrics);
            }
            Message::WorkSingle {
                ctx,
                params,
                labels,
                inputs,
                trace,
            }
            | Message::WorkForward {
                ctx,
                params,
                labels,
                inputs,
                trace,
            } => {
                buf.push(if matches!(self, Message::WorkSingle { .. }) {
                    4
                } else {
                    5
                });
                put_ctx(&mut buf, ctx);
                put_bytes(&mut buf, params);
                put_u32(&mut buf, labels.len() as u32);
                for &l in labels {
                    put_u32(&mut buf, l);
                }
                put_u32(&mut buf, inputs.len() as u32);
                for t in inputs {
                    put_tensor(&mut buf, t);
                }
                put_trace(&mut buf, trace);
            }
            Message::WorkBackward {
                iteration,
                attempt,
                shard,
                sums,
                trace,
            } => {
                buf.push(6);
                put_u64(&mut buf, *iteration);
                put_u32(&mut buf, *attempt);
                put_u32(&mut buf, *shard);
                put_f64s(&mut buf, sums);
                put_trace(&mut buf, trace);
            }
            Message::ShardResult {
                iteration,
                attempt,
                shard,
                payload,
            } => {
                buf.push(7);
                put_u64(&mut buf, *iteration);
                put_u32(&mut buf, *attempt);
                put_u32(&mut buf, *shard);
                match payload {
                    ResultPayload::Forward {
                        sam_sums,
                        per_sample,
                        correct,
                    } => {
                        buf.push(0);
                        put_f64s(&mut buf, sam_sums);
                        put_f64s(&mut buf, per_sample);
                        put_u32(&mut buf, *correct);
                    }
                    ResultPayload::Grads { grads } => {
                        buf.push(1);
                        put_grads(&mut buf, grads);
                    }
                    ResultPayload::Single {
                        loss_groups,
                        correct,
                        sam_sums,
                        recomputed,
                        skipped,
                        grads,
                    } => {
                        buf.push(2);
                        put_u32(&mut buf, loss_groups.len() as u32);
                        for g in loss_groups {
                            put_f64s(&mut buf, g);
                        }
                        put_u32(&mut buf, *correct);
                        put_f64s(&mut buf, sam_sums);
                        put_u32(&mut buf, *recomputed);
                        put_u32(&mut buf, *skipped);
                        put_grads(&mut buf, grads);
                    }
                }
            }
            Message::Fault { worker, detail } => {
                buf.push(8);
                put_u64(&mut buf, *worker);
                put_str(&mut buf, detail);
            }
            Message::Shutdown => buf.push(9),
        }
        buf
    }

    /// Decode a payload produced by [`Message::encode`].
    pub fn decode(payload: &[u8]) -> Result<Message, TransportError> {
        let mut r = WireReader::new(payload);
        let msg = match r.u8()? {
            1 => {
                let worker = r.u64()?;
                let reconnect = r.u8()? != 0;
                let ping = if r.remaining() > 0 {
                    let v = r.u8()?;
                    if v != BLOCK_V1 {
                        return Err(TransportError::Frame(format!(
                            "unknown hello-ping block version {v}"
                        )));
                    }
                    Some(r.u64()?)
                } else {
                    None
                };
                Message::Hello {
                    worker,
                    reconnect,
                    ping,
                }
            }
            2 => {
                let worker = r.u64()?;
                let spec = r.bytes()?.to_vec();
                let pong = if r.remaining() > 0 {
                    let v = r.u8()?;
                    if v != BLOCK_V1 {
                        return Err(TransportError::Frame(format!(
                            "unknown welcome-pong block version {v}"
                        )));
                    }
                    Some((r.u64()?, r.u64()?))
                } else {
                    None
                };
                Message::Welcome { worker, spec, pong }
            }
            3 => {
                let worker = r.u64()?;
                let iteration = r.u64()?;
                let metrics = read_metrics_delta(&mut r)?;
                Message::Heartbeat {
                    worker,
                    iteration,
                    metrics,
                }
            }
            tag @ (4 | 5) => {
                let ctx = read_ctx(&mut r)?;
                let params = r.bytes()?.to_vec();
                let n = r.u32()? as usize;
                if n > 1 << 24 {
                    return Err(TransportError::Frame(format!(
                        "implausible label count {n}"
                    )));
                }
                let labels = (0..n).map(|_| r.u32()).collect::<Result<Vec<_>, _>>()?;
                let t = r.u32()? as usize;
                if t > 1 << 16 {
                    return Err(TransportError::Frame(format!(
                        "implausible timestep count {t}"
                    )));
                }
                let inputs = (0..t)
                    .map(|_| read_tensor(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                let trace = read_trace(&mut r)?;
                if tag == 4 {
                    Message::WorkSingle {
                        ctx,
                        params,
                        labels,
                        inputs,
                        trace,
                    }
                } else {
                    Message::WorkForward {
                        ctx,
                        params,
                        labels,
                        inputs,
                        trace,
                    }
                }
            }
            6 => Message::WorkBackward {
                iteration: r.u64()?,
                attempt: r.u32()?,
                shard: r.u32()?,
                sums: r.f64s()?,
                trace: read_trace(&mut r)?,
            },
            7 => {
                let iteration = r.u64()?;
                let attempt = r.u32()?;
                let shard = r.u32()?;
                let payload = match r.u8()? {
                    0 => ResultPayload::Forward {
                        sam_sums: r.f64s()?,
                        per_sample: r.f64s()?,
                        correct: r.u32()?,
                    },
                    1 => ResultPayload::Grads {
                        grads: read_grads(&mut r)?,
                    },
                    2 => {
                        let n = r.u32()? as usize;
                        if n > 1 << 16 {
                            return Err(TransportError::Frame(format!(
                                "implausible loss-group count {n}"
                            )));
                        }
                        let loss_groups =
                            (0..n).map(|_| r.f64s()).collect::<Result<Vec<_>, _>>()?;
                        ResultPayload::Single {
                            loss_groups,
                            correct: r.u32()?,
                            sam_sums: r.f64s()?,
                            recomputed: r.u32()?,
                            skipped: r.u32()?,
                            grads: read_grads(&mut r)?,
                        }
                    }
                    other => {
                        return Err(TransportError::Frame(format!(
                            "unknown result payload tag {other}"
                        )))
                    }
                };
                Message::ShardResult {
                    iteration,
                    attempt,
                    shard,
                    payload,
                }
            }
            8 => Message::Fault {
                worker: r.u64()?,
                detail: r.string()?,
            },
            9 => Message::Shutdown,
            other => {
                return Err(TransportError::Frame(format!(
                    "unknown message tag {other}"
                )))
            }
        };
        r.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// Frame links
// ---------------------------------------------------------------------------

/// One byte-level duplex link carrying whole frames. Implementations:
/// TCP sockets and in-process channels.
pub(crate) trait FrameLink: Send {
    /// Ship one already-framed byte run.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError>;
    /// Receive and verify one frame, returning its payload. Waits at most
    /// `timeout`.
    fn recv_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError>;
    /// Peer label for diagnostics.
    fn peer(&self) -> String;
}

/// Build the framed bytes for `payload`.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    put_u32(&mut out, FRAME_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Parse a whole frame from `bytes`; `bytes` must contain exactly one
/// frame (the in-process link's delivery unit).
fn unframe(bytes: &[u8]) -> Result<Vec<u8>, TransportError> {
    if bytes.len() < HEADER {
        return Err(TransportError::Frame(format!(
            "short frame ({} bytes)",
            bytes.len()
        )));
    }
    let mut r = WireReader::new(bytes);
    let magic = r.u32()?;
    if magic != FRAME_MAGIC {
        return Err(TransportError::Frame(format!("bad magic {magic:#010x}")));
    }
    let len = r.u32()? as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Frame(format!(
            "implausible frame length {len}"
        )));
    }
    let stored = r.u32()?;
    let payload = r.take(len)?;
    if bytes.len() != HEADER + len {
        return Err(TransportError::Frame(format!(
            "frame length {} disagrees with delivery size {}",
            HEADER + len,
            bytes.len()
        )));
    }
    let computed = crc32(payload);
    if stored != computed {
        return Err(TransportError::Frame(format!(
            "payload CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok(payload.to_vec())
}

// --- TCP -------------------------------------------------------------------

/// A TCP stream carrying frames, with partial-read buffering so a frame
/// split across reads (or across `recv` timeouts) reassembles correctly.
pub(crate) struct TcpLink {
    stream: TcpStream,
    peer: String,
    rbuf: Vec<u8>,
}

impl TcpLink {
    pub fn new(stream: TcpStream) -> TcpLink {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp-peer".to_string());
        TcpLink {
            stream,
            peer,
            rbuf: Vec::new(),
        }
    }

    /// If `rbuf` holds a complete frame, pop and verify it.
    fn try_pop_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.rbuf.len() < HEADER {
            return Ok(None);
        }
        let magic = u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]);
        if magic != FRAME_MAGIC {
            return Err(TransportError::Frame(format!(
                "bad magic {magic:#010x} (stream desync)"
            )));
        }
        let len =
            u32::from_le_bytes([self.rbuf[4], self.rbuf[5], self.rbuf[6], self.rbuf[7]]) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Frame(format!(
                "implausible frame length {len} (stream desync)"
            )));
        }
        if self.rbuf.len() < HEADER + len {
            return Ok(None);
        }
        let frame: Vec<u8> = self.rbuf.drain(..HEADER + len).collect();
        unframe(&frame).map(Some)
    }
}

impl FrameLink for TcpLink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(frame)
            .and_then(|_| self.stream.flush())
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::UnexpectedEof => TransportError::Closed(e.to_string()),
                _ => TransportError::Io(e.to_string()),
            })
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.try_pop_frame()? {
                return Ok(payload);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let remaining = (deadline - now).max(Duration::from_millis(1));
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| TransportError::Io(e.to_string()))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed("peer hung up".into())),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// --- In-process ------------------------------------------------------------

/// Channel-backed link: every `Vec<u8>` is one frame, pushed through the
/// same encode/verify path as TCP so chaos and codec faults behave
/// identically on loopback tests.
pub(crate) struct InProcLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    label: String,
}

impl FrameLink for InProcLink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| TransportError::Closed("in-proc peer dropped".into()))
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => unframe(&bytes),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Closed("in-proc peer dropped".into()))
            }
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------------
// Chaos injection
// ---------------------------------------------------------------------------

/// Deterministic fault plan, usually parsed from the `SKIPPER_CHAOS`
/// environment knob:
///
/// ```text
/// SKIPPER_CHAOS="seed=7,drop=0.02,dup=0.01,corrupt=0.01,truncate=0.01,delay=0.05,delay_us=500,kill=1@5"
/// ```
///
/// `drop`/`dup`/`corrupt`/`truncate`/`delay` are per-frame probabilities
/// drawn from a seeded xorshift stream (same seed → same fault
/// schedule); `delay_us` is the injected latency per delayed frame;
/// `kill=W@I` makes worker `W` die when it receives work for iteration
/// `≥ I` (consumed by [`crate::cluster::run_worker`], not by the link).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Base seed of the fault stream (mixed with a per-connection salt).
    pub seed: u64,
    /// Probability a sent frame is silently discarded.
    pub drop: f64,
    /// Probability a sent frame is sent twice.
    pub dup: f64,
    /// Probability one byte of a sent frame is bit-flipped.
    pub corrupt: f64,
    /// Probability a sent frame is cut short.
    pub truncate: f64,
    /// Probability a sent frame is delayed by `delay_us`.
    pub delay: f64,
    /// Injected latency per delayed frame, microseconds.
    pub delay_us: u64,
    /// Kill schedule: `(worker id, iteration)` — the worker exits when it
    /// receives work for that iteration or later.
    pub kill: Option<(u64, u64)>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            drop: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            delay: 0.0,
            delay_us: 200,
            kill: None,
        }
    }
}

impl ChaosConfig {
    /// Parse a `SKIPPER_CHAOS` spec string.
    ///
    /// # Errors
    ///
    /// Returns a description for unknown keys or malformed values, so a
    /// typo'd chaos spec fails loudly instead of silently running a
    /// different experiment.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec '{part}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|e| format!("chaos {key}={v}: not a number ({e})"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos {key}={v}: probability outside [0,1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|e| format!("chaos seed={value}: {e}"))?
                }
                "drop" => cfg.drop = prob(value)?,
                "dup" => cfg.dup = prob(value)?,
                "corrupt" => cfg.corrupt = prob(value)?,
                "truncate" => cfg.truncate = prob(value)?,
                "delay" => cfg.delay = prob(value)?,
                "delay_us" => {
                    cfg.delay_us = value
                        .parse()
                        .map_err(|e| format!("chaos delay_us={value}: {e}"))?
                }
                "kill" => {
                    let (w, i) = value
                        .split_once('@')
                        .ok_or_else(|| format!("chaos kill={value}: want WORKER@ITER"))?;
                    cfg.kill = Some((
                        w.parse().map_err(|e| format!("chaos kill worker: {e}"))?,
                        i.parse().map_err(|e| format!("chaos kill iter: {e}"))?,
                    ));
                }
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        Ok(cfg)
    }

    /// The `SKIPPER_CHAOS` environment knob, if set and non-empty.
    ///
    /// # Errors
    ///
    /// See [`ChaosConfig::parse`].
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match std::env::var("SKIPPER_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => ChaosConfig::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether any frame-level fault can fire.
    pub fn frame_faults(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.corrupt > 0.0
            || self.truncate > 0.0
            || self.delay > 0.0
    }
}

/// Send-side fault injector around any [`FrameLink`]. All decisions come
/// from a seeded xorshift stream, so a chaos run is exactly reproducible
/// from `(config, connection salt)`.
pub(crate) struct FaultyLink<L: FrameLink> {
    inner: L,
    cfg: ChaosConfig,
    rng: XorShiftRng,
    injected: Arc<AtomicU64>,
}

impl<L: FrameLink> FaultyLink<L> {
    pub fn new(inner: L, cfg: ChaosConfig, salt: u64) -> FaultyLink<L> {
        let rng = XorShiftRng::new(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt);
        FaultyLink {
            inner,
            cfg,
            rng,
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Live count of faults injected on this link, readable after the
    /// link is boxed away inside a [`Channel`] (the `/cluster` status
    /// table reports it per connection).
    pub fn injected_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.injected)
    }

    fn chaos_event(&self, kind: &str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if skipper_obs::enabled() {
            skipper_obs::counter_add(
                &skipper_obs::labeled("engine.transport_chaos", "kind", kind),
                1.0,
            );
        }
    }
}

impl<L: FrameLink> FrameLink for FaultyLink<L> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if self.cfg.delay > 0.0 && self.rng.next_f64() < self.cfg.delay {
            self.chaos_event("delay");
            std::thread::sleep(Duration::from_micros(self.cfg.delay_us));
        }
        if self.cfg.drop > 0.0 && self.rng.next_f64() < self.cfg.drop {
            self.chaos_event("drop");
            return Ok(()); // silently lost on the wire
        }
        let mutated: Option<Vec<u8>> =
            if self.cfg.corrupt > 0.0 && self.rng.next_f64() < self.cfg.corrupt {
                self.chaos_event("corrupt");
                let mut bytes = frame.to_vec();
                let at = (self.rng.next_u64() as usize) % bytes.len().max(1);
                let bit = 1u8 << (self.rng.next_u64() % 8);
                bytes[at] ^= bit;
                Some(bytes)
            } else if self.cfg.truncate > 0.0 && self.rng.next_f64() < self.cfg.truncate {
                self.chaos_event("truncate");
                let keep = (self.rng.next_u64() as usize) % frame.len().max(1);
                Some(frame[..keep].to_vec())
            } else {
                None
            };
        let bytes = mutated.as_deref().unwrap_or(frame);
        self.inner.send_frame(bytes)?;
        if self.cfg.dup > 0.0 && self.rng.next_f64() < self.cfg.dup {
            self.chaos_event("dup");
            self.inner.send_frame(bytes)?;
        }
        Ok(())
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.inner.recv_frame(timeout)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

// ---------------------------------------------------------------------------
// Channel: the message-level API
// ---------------------------------------------------------------------------

/// Per-connection transport counters, kept as plain `u64`s on the
/// [`Channel`] (single-owner, no atomics needed). The coordinator's
/// `/cluster` status table snapshots them per worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ChannelStats {
    pub frames_sent: u64,
    pub frames_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub frame_errors: u64,
}

/// A duplex message channel over some [`FrameLink`]; this is what the
/// cluster layer holds per connection. Public only because
/// [`ChannelConnector`] returns it — its message API is crate-internal.
pub struct Channel {
    link: Box<dyn FrameLink>,
    stats: ChannelStats,
    chaos_injected: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("peer", &self.peer())
            .finish()
    }
}

impl Channel {
    pub(crate) fn over(link: impl FrameLink + 'static) -> Channel {
        Channel {
            link: Box::new(link),
            stats: ChannelStats::default(),
            chaos_injected: None,
        }
    }

    /// Wrap `link` with send-side chaos when `chaos` has frame faults.
    pub(crate) fn over_with_chaos(
        link: impl FrameLink + 'static,
        chaos: Option<&ChaosConfig>,
        salt: u64,
    ) -> Channel {
        match chaos {
            Some(cfg) if cfg.frame_faults() => {
                let faulty = FaultyLink::new(link, cfg.clone(), salt);
                let injected = faulty.injected_handle();
                let mut ch = Channel::over(faulty);
                ch.chaos_injected = Some(injected);
                ch
            }
            _ => Channel::over(link),
        }
    }

    /// Encode and ship one message.
    pub(crate) fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let frame = frame_bytes(&msg.encode());
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        if skipper_obs::enabled() {
            skipper_obs::counter_add(
                &skipper_obs::labeled("engine.transport_frames", "dir", "sent"),
                1.0,
            );
            skipper_obs::counter_add(
                &skipper_obs::labeled("engine.transport_bytes", "dir", "sent"),
                frame.len() as f64,
            );
        }
        self.link.send_frame(&frame)
    }

    /// Receive one message, waiting at most `timeout`. Frame and decode
    /// failures increment `engine.transport_frame_errors` and poison the
    /// connection.
    pub(crate) fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        let payload = match self.link.recv_frame(timeout) {
            Ok(payload) => payload,
            Err(e) => {
                if matches!(e, TransportError::Frame(_)) {
                    self.stats.frame_errors += 1;
                    if skipper_obs::enabled() {
                        skipper_obs::counter_add("engine.transport_frame_errors", 1.0);
                    }
                }
                return Err(e);
            }
        };
        self.stats.frames_received += 1;
        self.stats.bytes_received += (payload.len() + HEADER) as u64;
        if skipper_obs::enabled() {
            skipper_obs::counter_add(
                &skipper_obs::labeled("engine.transport_frames", "dir", "received"),
                1.0,
            );
            skipper_obs::counter_add(
                &skipper_obs::labeled("engine.transport_bytes", "dir", "received"),
                (payload.len() + HEADER) as f64,
            );
        }
        Message::decode(&payload).inspect_err(|_| {
            self.stats.frame_errors += 1;
            if skipper_obs::enabled() {
                skipper_obs::counter_add("engine.transport_frame_errors", 1.0);
            }
        })
    }

    /// Snapshot of this connection's frame/byte/error counters.
    pub(crate) fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Faults injected on this connection's send side (0 when chaos is
    /// not armed).
    pub(crate) fn chaos_injected(&self) -> u64 {
        self.chaos_injected
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Peer label for diagnostics.
    pub fn peer(&self) -> String {
        self.link.peer()
    }
}

// ---------------------------------------------------------------------------
// Listeners and connectors
// ---------------------------------------------------------------------------

/// Accept side of a transport: yields one [`Channel`] per joining worker.
pub(crate) trait ChannelListener: Send {
    /// Accept a pending connection, waiting at most `timeout`.
    fn accept(&mut self, timeout: Duration) -> Result<Channel, TransportError>;
    /// The address workers connect to.
    fn addr(&self) -> String;
}

/// Connect side of a transport: a worker's (re)connection factory.
pub trait ChannelConnector: Send {
    /// Open a fresh connection to the coordinator.
    #[doc(hidden)]
    fn connect_channel(&mut self) -> Result<Channel, TransportError>;
    /// Where this connector dials.
    fn peer(&self) -> String;
}

// --- TCP -------------------------------------------------------------------

/// TCP accept side, used by the coordinator. Non-blocking accept polled
/// under a deadline so the coordinator thread can interleave accepts
/// with worker polling.
pub(crate) struct TcpListenerLink {
    listener: TcpListener,
    addr: String,
    chaos: Option<ChaosConfig>,
    accepted: u64,
}

impl TcpListenerLink {
    pub fn bind(addr: &str, chaos: Option<ChaosConfig>) -> Result<TcpListenerLink, SkipperError> {
        let listener = TcpListener::bind(addr).map_err(SkipperError::Io)?;
        listener.set_nonblocking(true).map_err(SkipperError::Io)?;
        let addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(TcpListenerLink {
            listener,
            addr,
            chaos,
            accepted: 0,
        })
    }
}

impl ChannelListener for TcpListenerLink {
    fn accept(&mut self, timeout: Duration) -> Result<Channel, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nodelay(true)
                        .map_err(|e| TransportError::Io(e.to_string()))?;
                    self.accepted += 1;
                    return Ok(Channel::over_with_chaos(
                        TcpLink::new(stream),
                        self.chaos.as_ref(),
                        0xC0_0D ^ self.accepted,
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

/// TCP dial side, used by workers (and re-used on every reconnect).
pub struct TcpConnector {
    addr: String,
    chaos: Option<ChaosConfig>,
    attempts: u64,
}

impl TcpConnector {
    /// Connector dialing `addr` (e.g. `127.0.0.1:7700`), with optional
    /// send-side chaos on each established connection.
    pub fn new(addr: impl Into<String>, chaos: Option<ChaosConfig>) -> TcpConnector {
        TcpConnector {
            addr: addr.into(),
            chaos,
            attempts: 0,
        }
    }
}

impl ChannelConnector for TcpConnector {
    fn connect_channel(&mut self) -> Result<Channel, TransportError> {
        self.attempts += 1;
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| TransportError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(Channel::over_with_chaos(
            TcpLink::new(stream),
            self.chaos.as_ref(),
            0x0F0F ^ self.attempts,
        ))
    }

    fn peer(&self) -> String {
        self.addr.clone()
    }
}

// --- In-process ------------------------------------------------------------

/// In-process "network": a connector handing out channel pairs whose far
/// ends appear on the listener, byte-framed exactly like TCP.
pub(crate) struct InProcListener {
    rx: Receiver<Channel>,
    accepted: u64,
}

/// Dial side of [`in_proc_net`]; clone one per worker thread.
#[derive(Clone)]
pub struct InProcConnector {
    tx: Sender<Channel>,
    chaos: Option<ChaosConfig>,
    label: String,
}

/// A loopback transport living entirely inside the process. `chaos`
/// applies to *both* directions (each side's sends are wrapped).
pub(crate) fn in_proc_net(chaos: Option<ChaosConfig>) -> (InProcListener, InProcConnector) {
    let (tx, rx) = channel();
    (
        InProcListener { rx, accepted: 0 },
        InProcConnector {
            tx,
            chaos,
            label: "in-proc".to_string(),
        },
    )
}

impl ChannelListener for InProcListener {
    fn accept(&mut self, timeout: Duration) -> Result<Channel, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(link) => {
                self.accepted += 1;
                // The queued channel is the coordinator's raw end; chaos
                // wrapping happened at pair construction time.
                let _ = self.accepted;
                Ok(link)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed(
                "all in-proc connectors dropped".into(),
            )),
        }
    }

    fn addr(&self) -> String {
        "in-proc".to_string()
    }
}

static INPROC_CONN_SALT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl ChannelConnector for InProcConnector {
    fn connect_channel(&mut self) -> Result<Channel, TransportError> {
        let salt = INPROC_CONN_SALT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (to_worker_tx, to_worker_rx) = channel::<Vec<u8>>();
        let (to_coord_tx, to_coord_rx) = channel::<Vec<u8>>();
        let coord_end = InProcLink {
            tx: to_worker_tx,
            rx: to_coord_rx,
            label: format!("in-proc-worker#{salt}"),
        };
        let worker_end = InProcLink {
            tx: to_coord_tx,
            rx: to_worker_rx,
            label: format!("in-proc-coord#{salt}"),
        };
        let coord_channel =
            Channel::over_with_chaos(coord_end, self.chaos.as_ref(), 0xC0_0D ^ salt);
        self.tx
            .send(coord_channel)
            .map_err(|_| TransportError::Closed("in-proc listener dropped".into()))?;
        Ok(Channel::over_with_chaos(
            worker_end,
            self.chaos.as_ref(),
            0x0F0F ^ salt,
        ))
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work_msg() -> Message {
        Message::WorkForward {
            ctx: WorkCtx {
                iteration: 7,
                attempt: 1,
                shard: 3,
                batch_offset: 6,
                global_batch: 16,
                seed: 7,
                method: Method::Skipper {
                    checkpoints: 2,
                    percentile: 30.0,
                },
                metric: SamMetric::SpikeSum,
                policy: SkipPolicy::SpikeActivity,
            },
            params: vec![1, 2, 3, 4],
            labels: vec![0, 9, 4],
            inputs: vec![
                Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0, 1.0], [5]),
                Tensor::from_vec(vec![0.25, -1.5, 3.0], [3]),
            ],
            trace: None,
        }
    }

    #[test]
    fn every_message_roundtrips() {
        let messages = vec![
            Message::Hello {
                worker: 3,
                reconnect: true,
                ping: None,
            },
            Message::Hello {
                worker: 3,
                reconnect: false,
                ping: Some(123_456),
            },
            Message::Welcome {
                worker: 1,
                spec: vec![9, 9, 9],
                pong: None,
            },
            Message::Welcome {
                worker: 1,
                spec: vec![9, 9, 9],
                pong: Some((123_456, 789_000)),
            },
            Message::Heartbeat {
                worker: 2,
                iteration: 40,
                metrics: None,
            },
            Message::Heartbeat {
                worker: 2,
                iteration: 41,
                metrics: Some(MetricsDelta {
                    counters: vec![("engine.recomputed_segments".into(), 12.0)],
                    gauges: vec![("cluster.clock_offset_us".into(), -42.5)],
                    histograms: vec![(
                        "iteration.wall_us".into(),
                        HistDelta {
                            bounds: vec![10.0, 100.0, 1000.0],
                            counts: vec![0, 2, 1, 0],
                            sum: 350.0,
                            count: 3,
                            min: 40.0,
                            max: 250.0,
                        },
                    )],
                }),
            },
            work_msg(),
            {
                let mut traced = work_msg();
                if let Message::WorkForward { trace, .. } = &mut traced {
                    *trace = Some(TraceCtx {
                        trace: 0xDEAD_BEEF,
                        parent: 77,
                    });
                }
                traced
            },
            Message::WorkBackward {
                iteration: 7,
                attempt: 0,
                shard: 2,
                sums: vec![1.5, 0.0, 144.0],
                trace: None,
            },
            Message::WorkBackward {
                iteration: 7,
                attempt: 1,
                shard: 2,
                sums: vec![1.5, 0.0, 144.0],
                trace: Some(TraceCtx {
                    trace: 1,
                    parent: u64::MAX,
                }),
            },
            Message::ShardResult {
                iteration: 7,
                attempt: 0,
                shard: 2,
                payload: ResultPayload::Single {
                    loss_groups: vec![vec![0.5, 0.25], vec![1.5]],
                    correct: 2,
                    sam_sums: vec![3.0, 4.0],
                    recomputed: 5,
                    skipped: 3,
                    grads: vec![None, Some(vec![0.125, -2.0])],
                },
            },
            Message::Fault {
                worker: 4,
                detail: "missing carry".into(),
            },
            Message::Shutdown,
        ];
        for msg in messages {
            let bytes = msg.encode();
            let back = Message::decode(&bytes).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn frames_without_trailing_blocks_still_parse() {
        // Hand-built frames in the pre-trace/pre-federation layout: tag +
        // fixed fields only, no trailing block. An old worker emits
        // exactly these bytes; they must decode with the optional fields
        // absent — and encoding with `None` must reproduce them exactly,
        // so a new worker talking to an old coordinator is also safe.
        let mut old_hello = vec![1u8];
        put_u64(&mut old_hello, 3);
        old_hello.push(1);
        assert_eq!(
            Message::decode(&old_hello).unwrap(),
            Message::Hello {
                worker: 3,
                reconnect: true,
                ping: None,
            }
        );
        assert_eq!(
            Message::Hello {
                worker: 3,
                reconnect: true,
                ping: None,
            }
            .encode(),
            old_hello
        );

        let mut old_welcome = vec![2u8];
        put_u64(&mut old_welcome, 7);
        put_bytes(&mut old_welcome, &[9, 9]);
        assert_eq!(
            Message::decode(&old_welcome).unwrap(),
            Message::Welcome {
                worker: 7,
                spec: vec![9, 9],
                pong: None,
            }
        );

        let mut old_heartbeat = vec![3u8];
        put_u64(&mut old_heartbeat, 2);
        put_u64(&mut old_heartbeat, 40);
        assert_eq!(
            Message::decode(&old_heartbeat).unwrap(),
            Message::Heartbeat {
                worker: 2,
                iteration: 40,
                metrics: None,
            }
        );
        assert_eq!(
            Message::Heartbeat {
                worker: 2,
                iteration: 40,
                metrics: None,
            }
            .encode(),
            old_heartbeat
        );

        let mut old_backward = vec![6u8];
        put_u64(&mut old_backward, 11);
        put_u32(&mut old_backward, 1);
        put_u32(&mut old_backward, 0);
        put_f64s(&mut old_backward, &[0.5, 2.0]);
        assert_eq!(
            Message::decode(&old_backward).unwrap(),
            Message::WorkBackward {
                iteration: 11,
                attempt: 1,
                shard: 0,
                sums: vec![0.5, 2.0],
                trace: None,
            }
        );
        assert_eq!(
            Message::WorkBackward {
                iteration: 11,
                attempt: 1,
                shard: 0,
                sums: vec![0.5, 2.0],
                trace: None,
            }
            .encode(),
            old_backward
        );

        // An unknown trailing-block version must be a frame error, not a
        // silent misparse.
        let mut bad = old_backward.clone();
        bad.push(9); // bogus version byte
        bad.extend_from_slice(&[0; 16]);
        assert!(matches!(
            Message::decode(&bad),
            Err(TransportError::Frame(_))
        ));
    }

    #[test]
    fn channel_stats_track_frames_bytes_and_chaos() {
        let (mut listener, mut connector) = in_proc_net(None);
        let mut worker_end = connector.connect_channel().unwrap();
        let mut coord_end = listener.accept(Duration::from_millis(200)).unwrap();
        assert_eq!(worker_end.stats(), ChannelStats::default());
        worker_end.send(&Message::Shutdown).unwrap();
        worker_end.send(&Message::Shutdown).unwrap();
        let _ = coord_end.recv_timeout(Duration::from_millis(200)).unwrap();
        let sent = worker_end.stats();
        assert_eq!(sent.frames_sent, 2);
        assert_eq!(sent.bytes_sent, 2 * (HEADER as u64 + 1));
        let got = coord_end.stats();
        assert_eq!(got.frames_received, 1);
        assert_eq!(got.bytes_received, HEADER as u64 + 1);
        assert_eq!(worker_end.chaos_injected(), 0);

        // With chaos armed, the per-channel injected counter moves.
        let chaos = ChaosConfig::parse("seed=9,drop=0.5").unwrap();
        let (_listener2, mut connector2) = in_proc_net(Some(chaos));
        let mut noisy = connector2.connect_channel().unwrap();
        for _ in 0..32 {
            noisy.send(&Message::Shutdown).unwrap();
        }
        assert!(noisy.chaos_injected() > 0, "some frames must have dropped");
    }

    #[test]
    fn spike_tensors_use_the_bitmask_encoding() {
        let spikes = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0], [9]);
        let dense = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]);
        let mut b_spike = Vec::new();
        put_tensor(&mut b_spike, &spikes);
        let mut b_dense = Vec::new();
        put_tensor(&mut b_dense, &dense);
        // rank + dims + flag + ceil(9/8)=2 bytes vs 9*4=36 raw.
        assert!(b_spike.len() < 1 + 4 + 1 + 9 * 4);
        let back = read_tensor(&mut WireReader::new(&b_spike)).unwrap();
        assert_eq!(back.data(), spikes.data());
        let back = read_tensor(&mut WireReader::new(&b_dense)).unwrap();
        assert_eq!(back.data(), dense.data());
    }

    #[test]
    fn corrupt_frames_are_rejected_with_a_frame_error() {
        let frame = frame_bytes(&work_msg().encode());
        for at in [0usize, 5, HEADER, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[at] ^= 0x10;
            assert!(
                matches!(unframe(&bad), Err(TransportError::Frame(_))),
                "flip at {at} must poison the frame"
            );
        }
        let mut short = frame.clone();
        short.truncate(frame.len() - 3);
        assert!(matches!(unframe(&short), Err(TransportError::Frame(_))));
        assert_eq!(unframe(&frame).unwrap(), work_msg().encode());
    }

    #[test]
    fn chaos_schedule_is_deterministic_per_seed() {
        let cfg = ChaosConfig::parse("seed=9,drop=0.3,corrupt=0.2,dup=0.1").unwrap();
        let run = |cfg: &ChaosConfig| {
            let (tx, rx) = channel::<Vec<u8>>();
            let (_keep_tx, dead_rx) = channel::<Vec<u8>>();
            let link = InProcLink {
                tx,
                rx: dead_rx,
                label: "chaos-test".into(),
            };
            let mut faulty = FaultyLink::new(link, cfg.clone(), 42);
            let frame = frame_bytes(&Message::Shutdown.encode());
            for _ in 0..64 {
                faulty.send_frame(&frame).unwrap();
            }
            drop(faulty);
            let mut out: Vec<Vec<u8>> = Vec::new();
            while let Ok(f) = rx.try_recv() {
                out.push(f);
            }
            out
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "same seed must give the same fault schedule");
        assert!(a.len() < 64 + 16, "some frames must drop");
        assert!(
            a.iter().any(|f| unframe(f).is_err()),
            "some frames must corrupt"
        );
    }

    #[test]
    fn chaos_spec_errors_are_descriptive() {
        assert!(ChaosConfig::parse("drop=1.5")
            .unwrap_err()
            .contains("[0,1]"));
        assert!(ChaosConfig::parse("zap=1").unwrap_err().contains("zap"));
        assert!(ChaosConfig::parse("kill=3")
            .unwrap_err()
            .contains("WORKER@ITER"));
        let cfg = ChaosConfig::parse("seed=4,kill=1@5,drop=0.25").unwrap();
        assert_eq!(cfg.kill, Some((1, 5)));
        assert_eq!(cfg.seed, 4);
        assert!(cfg.frame_faults());
        assert!(!ChaosConfig::parse("kill=1@5").unwrap().frame_faults());
    }

    #[test]
    fn in_proc_channels_carry_messages_both_ways() {
        let (mut listener, mut connector) = in_proc_net(None);
        let mut worker_end = connector.connect_channel().unwrap();
        let mut coord_end = listener.accept(Duration::from_millis(200)).unwrap();
        worker_end
            .send(&Message::Hello {
                worker: u64::MAX,
                reconnect: false,
                ping: None,
            })
            .unwrap();
        let got = coord_end.recv_timeout(Duration::from_millis(200)).unwrap();
        assert!(matches!(
            got,
            Message::Hello {
                reconnect: false,
                ..
            }
        ));
        coord_end
            .send(&Message::Welcome {
                worker: 0,
                spec: vec![1],
                pong: None,
            })
            .unwrap();
        let got = worker_end.recv_timeout(Duration::from_millis(200)).unwrap();
        assert!(matches!(got, Message::Welcome { worker: 0, .. }));
        let err = coord_end
            .recv_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn tcp_loopback_carries_messages_and_reassembles_partial_reads() {
        let mut listener = TcpListenerLink::bind("127.0.0.1:0", None).unwrap();
        let addr = listener.addr();
        let handle = std::thread::spawn(move || {
            let mut connector = TcpConnector::new(addr, None);
            let mut ch = connector.connect_channel().unwrap();
            ch.send(&work_msg()).unwrap();
            ch.recv_timeout(Duration::from_secs(2)).unwrap()
        });
        let mut coord = listener.accept(Duration::from_secs(2)).unwrap();
        let got = coord.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, work_msg());
        coord.send(&Message::Shutdown).unwrap();
        let echoed = handle.join().unwrap();
        assert!(matches!(echoed, Message::Shutdown));
    }
}
