//! Temporal activation checkpointing (paper Section V) and Skipper's
//! time-skipping on top of it (Section VI).
//!
//! One iteration runs in two phases, mirroring the paper's Figs. 5 and 6:
//!
//! * **Phase A — first forward pass, no grad.** The network is stepped with
//!   [`SpikingNetwork::step_infer`]; intermediate activations die
//!   immediately. At each of the `C` segment boundaries the neuron state
//!   `(U, o)` is checkpointed (a cheap shared-storage clone that keeps the
//!   boundary tensors alive); the SAM records `s_t` per timestep; the
//!   readout logits accumulate into a plain tensor; the loss and its
//!   analytic gradient are computed once at the end.
//!
//! * **Phase B — segment-wise backward, most recent segment first.** For
//!   each segment `c = C−1 … 0` a fresh tape is built from checkpoint `c`
//!   (membrane leaves marked as gradient sinks). With Skipper, the
//!   segment's Spike-Sum-Threshold `SST_c` (Eq. 5) is computed first and
//!   timesteps with `s_t < SST_c` are **not re-executed at all** — the
//!   membrane state flows directly from the last computed step, yielding a
//!   shallower tape (less memory *and* less compute, Eq. 6). The segment's
//!   logit contributions are seeded with `∂L/∂logits`, the boundary
//!   membrane gradients handed back by segment `c+1` are seeded into the
//!   segment's final membrane variables, `backward()` runs, weight
//!   gradients are harvested (accumulating across segments, Eq. 2), the
//!   new boundary gradients are read off the leaf membranes, and the tape
//!   is dropped — releasing the segment's activation memory.
//!
//! Because the membrane reset is detached (Section III-B), `∂L/∂U` is the
//! *only* gradient crossing a boundary; spikes cross as values.
//!
//! The two phases are exposed separately ([`checkpoint_forward`],
//! [`checkpoint_backward`]) so the data-parallel engine can interleave a
//! cross-shard SAM aggregation between them: every shard's `s_t` record is
//! summed into the network-wide statistic *before* the SST percentile is
//! formed, keeping skip decisions global (paper semantics) rather than
//! per-shard. [`checkpointed_step`] chains the phases for the unsharded
//! reference path.

use crate::bptt::StepResult;
use crate::engine::{GradSink, ShardCtx};
use crate::method::segment_bounds;
use crate::sam::{decide_skips, SamMetric, SkipDecisions, SkipPolicy, SpikeActivityMonitor};
use skipper_autograd::Graph;
use skipper_memprof::{Category, CategoryGuard};
use skipper_snn::{
    softmax_cross_entropy_scaled, NetworkState, ParamBinder, SpikingNetwork, StepCtx, TapedState,
};
use skipper_tensor::Tensor;

/// Everything phase A hands to phase B (and, in the sharded path, to the
/// cross-shard SAM aggregation in between).
#[derive(Debug)]
pub(crate) struct PhaseAOut {
    /// Checkpointed neuron states, one per segment boundary.
    pub ckpts: Vec<NetworkState>,
    /// This shard's activity record (to be aggregated across shards).
    pub sam: SpikeActivityMonitor,
    /// Per-sample negative log-likelihoods, in row order.
    pub per_sample_loss: Vec<f64>,
    /// Correct predictions on the full-forward logits.
    pub correct: usize,
    /// `∂L/∂logits_t` (already divided by global batch and `T`).
    pub per_step_grad: Tensor,
}

/// One checkpointed (or, with `percentile > 0`, Skipper) iteration using
/// the paper's spike-activity policy and metric.
///
/// # Panics
///
/// Panics if `checkpoints` is zero or exceeds `inputs.len()`.
pub(crate) fn checkpointed_step(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    checkpoints: usize,
    percentile: f32,
) -> StepResult {
    checkpointed_step_with(
        net,
        inputs,
        labels,
        iter_seed,
        checkpoints,
        percentile,
        SamMetric::SpikeSum,
        SkipPolicy::SpikeActivity,
    )
}

/// [`checkpointed_step`] with an explicit activity metric and skip policy
/// (used by the SAM ablations; see [`crate::sam`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpointed_step_with(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    checkpoints: usize,
    percentile: f32,
    metric: SamMetric,
    policy: SkipPolicy,
) -> StepResult {
    let timesteps = inputs.len();
    let batch = inputs[0].shape()[0];
    let bounds = segment_bounds(timesteps, checkpoints);
    let shard = ShardCtx::full(batch);
    let a = checkpoint_forward(net, inputs, labels, iter_seed, &bounds, metric, shard);
    let decisions = decide_skips(&a.sam, &bounds, percentile, policy, iter_seed);
    let (recomputed, skipped) = checkpoint_backward(
        net,
        inputs,
        iter_seed,
        &bounds,
        &a.ckpts,
        &a.per_step_grad,
        &a.sam,
        &decisions,
        shard,
        &mut GradSink::Direct,
        true,
    );
    skipper_obs::counter_add("skipper.steps_skipped", skipped as f64);
    skipper_obs::counter_add("skipper.steps_recomputed", recomputed as f64);
    let groups = vec![a.per_sample_loss];
    StepResult {
        loss: crate::bptt::combine_loss_groups(&groups, shard.global_batch),
        correct: a.correct,
        recomputed_steps: recomputed,
        skipped_steps: skipped,
        sam: a.sam,
        loss_groups: groups,
    }
}

/// Phase A over one batch shard: gradient-free forward with boundary
/// checkpoints, SAM recording and the loss on time-averaged logits.
///
/// # Panics
///
/// Panics if `bounds` does not describe at least one segment over
/// `inputs.len()` timesteps.
pub(crate) fn checkpoint_forward(
    net: &SpikingNetwork,
    inputs: &[Tensor],
    labels: &[usize],
    iter_seed: u64,
    bounds: &[usize],
    metric: SamMetric,
    shard: ShardCtx,
) -> PhaseAOut {
    let timesteps = inputs.len();
    let batch = inputs[0].shape()[0];
    let checkpoints = bounds.len() - 1;
    let mut state = net.init_state(batch);
    let mut ckpts: Vec<NetworkState> = Vec::with_capacity(checkpoints);
    let mut sam = SpikeActivityMonitor::new(timesteps);
    let mut logits: Option<Tensor> = None;
    {
        let _fwd = skipper_obs::span!(
            "forward_pass",
            timesteps = timesteps,
            checkpoints = checkpoints
        );
        let _cat = CategoryGuard::new(Category::Activations);
        let mut next_boundary = 0usize;
        for (t, input) in inputs.iter().enumerate() {
            if next_boundary < checkpoints && t == bounds[next_boundary] {
                ckpts.push(state.clone());
                skipper_obs::instant!(
                    skipper_obs::Level::Debug,
                    "checkpoint_save",
                    c = next_boundary,
                    t = t
                );
                next_boundary += 1;
            }
            let ctx = StepCtx::train_shard(iter_seed, t, shard.batch_offset);
            let out = net.step_infer(input, &mut state, &ctx);
            // Record the configured activity statistic (the plain spike sum
            // is already computed by the step; others read the state).
            sam.record(match metric {
                SamMetric::SpikeSum => out.spike_sum,
                other => other.measure(&state),
            });
            match logits.as_mut() {
                Some(l) => l.add_assign(&out.logits),
                None => logits = Some(out.logits),
            }
        }
    }
    // lint:allow(panic): T >= 1 is validated at session build, so the loop set logits
    let mut logits = logits.expect("at least one timestep");
    logits.scale_assign(1.0 / timesteps as f32); // time-averaged readout
    let loss = softmax_cross_entropy_scaled(&logits, labels, shard.global_batch);
    let per_step_grad = loss.dlogits.scale(1.0 / timesteps as f32);
    PhaseAOut {
        ckpts,
        sam,
        per_sample_loss: loss.per_sample,
        correct: loss.correct,
        per_step_grad,
    }
}

/// Phase B over one batch shard: segment-wise backward under an
/// already-formed global skip schedule. Returns `(recomputed, skipped)`
/// timestep counts.
///
/// `trace` controls emission of the per-step `skip_decision` events and
/// the SST gauge; the engine passes `false` and emits them once on the
/// session thread instead of once per shard.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_backward(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    iter_seed: u64,
    bounds: &[usize],
    ckpts: &[NetworkState],
    per_step_grad: &Tensor,
    sam: &SpikeActivityMonitor,
    decisions: &SkipDecisions,
    shard: ShardCtx,
    sink: &mut GradSink<'_>,
    trace: bool,
) -> (usize, usize) {
    let checkpoints = bounds.len() - 1;
    let mut boundary_grads: Option<Vec<Tensor>> = None;
    let mut recomputed = 0usize;
    let mut skipped = 0usize;
    for c in (0..checkpoints).rev() {
        let (start, end) = (bounds[c], bounds[c + 1]);
        let _seg = skipper_obs::span!("recompute_segment", c = c, start = start, end = end);
        if trace && !decisions.sst(c).is_nan() {
            skipper_obs::gauge_set("skipper.sst_threshold", decisions.sst(c));
        }
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(net.params());
        let mut tstate = TapedState::from_state(&mut g, &ckpts[c], true);
        let mut logit_vars = Vec::new();
        for (t, input) in inputs.iter().enumerate().take(end).skip(start) {
            let skip = decisions.skip(t);
            if trace {
                crate::sam::trace_skip_decision(c, t, sam.at(t), decisions.sst(c), skip);
            }
            if skip {
                skipped += 1;
                continue;
            }
            recomputed += 1;
            let ctx = StepCtx::train_shard(iter_seed, t, shard.batch_offset);
            let out = net.step_taped(&mut g, &mut binder, input, &mut tstate, &ctx);
            logit_vars.push(out.logits);
        }
        // Seed the loss gradient into every recomputed timestep's readout
        // contribution (∂L/∂logits_t = ∂L/∂logits · 1/T, since the readout
        // averages over time).
        let _bwd = skipper_obs::span!("segment_backward", c = c);
        for &v in &logit_vars {
            g.seed_grad(v, per_step_grad.clone());
        }
        // Seed the boundary gradients from the later segment into this
        // segment's final membrane variables.
        if let Some(grads) = boundary_grads.take() {
            for (&var, grad) in tstate.mems.iter().zip(grads) {
                g.seed_grad(var, grad);
            }
        }
        g.backward();
        // New boundary gradients: ∂L/∂U at this segment's start.
        let grads: Vec<Tensor> = tstate
            .initial_mems
            .iter()
            .map(|&v| {
                g.take_grad(v)
                    .unwrap_or_else(|| Tensor::zeros(g.value(v).shape().clone()))
            })
            .collect();
        boundary_grads = Some(grads);
        sink.harvest(&binder, &mut g, net.params_mut());
        // Dropping `g` releases this segment's activations.
    }
    (recomputed, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptt::bptt_step;
    use skipper_snn::{custom_net, lenet5, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn setup(seed: u64) -> (SpikingNetwork, Vec<Tensor>, Vec<usize>) {
        let net = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let mut rng = XorShiftRng::new(seed);
        let inputs: Vec<Tensor> = (0..12)
            .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
            .collect();
        (net, inputs, vec![2, 7])
    }

    /// The key correctness theorem: with p = 0, checkpointed gradients are
    /// identical to baseline BPTT up to float roundoff.
    #[test]
    fn checkpointed_gradients_match_bptt() {
        let (mut a, inputs, labels) = setup(80);
        let (mut b, _, _) = setup(80);
        let ra = bptt_step(&mut a, &inputs, &labels, 3);
        for c in [1usize, 2, 3, 4] {
            let (mut bc, _, _) = setup(80);
            let rc = checkpointed_step(&mut bc, &inputs, &labels, 3, c, 0.0);
            assert!((ra.loss - rc.loss).abs() < 1e-9, "loss differs at C={c}");
            for (pa, pc) in a.params().iter().zip(bc.params().iter()) {
                let diff = pa.grad().max_abs_diff(pc.grad());
                assert!(diff < 2e-4, "grad {} differs by {diff} at C={c}", pa.name());
            }
        }
        // Also sanity: C=1 equals a full no-skip recompute of BPTT.
        let r1 = checkpointed_step(&mut b, &inputs, &labels, 3, 1, 0.0);
        assert_eq!(r1.recomputed_steps, 12);
        assert_eq!(ra.recomputed_steps, 12);
    }

    #[test]
    fn skipper_skips_and_still_learns_direction() {
        let (mut net, inputs, labels) = setup(81);
        let r = checkpointed_step(&mut net, &inputs, &labels, 9, 2, 50.0);
        assert!(r.skipped_steps > 0, "p=50 must skip timesteps");
        assert_eq!(r.skipped_steps + r.recomputed_steps, 12);
        let grad_norm: f64 = net
            .params()
            .iter()
            .map(|p| p.grad().map(|x| x * x).sum())
            .sum();
        assert!(grad_norm > 0.0);
    }

    #[test]
    fn skipper_p0_equals_plain_checkpointing() {
        let (mut a, inputs, labels) = setup(82);
        let (mut b, _, _) = setup(82);
        let ra = checkpointed_step(&mut a, &inputs, &labels, 4, 3, 0.0);
        let rb = checkpointed_step(&mut b, &inputs, &labels, 4, 3, 0.0);
        assert_eq!(ra.loss, rb.loss);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.grad().data(), pb.grad().data());
        }
    }

    #[test]
    fn loss_is_exact_regardless_of_skipping() {
        // Skipping only approximates the backward pass; the reported loss
        // comes from the full first forward pass and must match baseline.
        let (mut a, inputs, labels) = setup(83);
        let (mut b, _, _) = setup(83);
        let ra = bptt_step(&mut a, &inputs, &labels, 9);
        let rb = checkpointed_step(&mut b, &inputs, &labels, 9, 2, 60.0);
        assert!((ra.loss - rb.loss).abs() < 1e-9);
        assert_eq!(ra.correct, rb.correct);
    }

    #[test]
    fn peak_memory_shrinks_with_checkpointing() {
        use skipper_memprof as mp;
        let (mut net, inputs, labels) = setup(84);
        mp::reset_peaks();
        let _ = bptt_step(&mut net, &inputs, &labels, 1);
        let base = mp::snapshot().peak(mp::Category::Activations);
        mp::reset_peaks();
        let _ = checkpointed_step(&mut net, &inputs, &labels, 1, 4, 0.0);
        let ckpt = mp::snapshot().peak(mp::Category::Activations);
        assert!(
            (ckpt as f64) < 0.7 * base as f64,
            "checkpointed peak {ckpt} not well below baseline {base}"
        );
    }

    #[test]
    fn random_policy_skips_the_exact_fraction() {
        use crate::sam::{SamMetric, SkipPolicy};
        let (mut net, inputs, labels) = setup(86);
        let r = checkpointed_step_with(
            &mut net,
            &inputs,
            &labels,
            3,
            2,
            50.0,
            SamMetric::SpikeSum,
            SkipPolicy::Random,
        );
        // Two segments of 6, floor(0.5·6) = 3 dropped each.
        assert_eq!(r.skipped_steps, 6);
        assert_eq!(r.recomputed_steps, 6);
    }

    #[test]
    fn random_policy_is_deterministic_per_iteration() {
        use crate::sam::{SamMetric, SkipPolicy};
        let (mut a, inputs, labels) = setup(87);
        let (mut b, _, _) = setup(87);
        let run = |net: &mut SpikingNetwork| {
            checkpointed_step_with(
                net,
                &inputs,
                &labels,
                9,
                3,
                40.0,
                SamMetric::SpikeSum,
                SkipPolicy::Random,
            )
        };
        let ra = run(&mut a);
        let rb = run(&mut b);
        assert_eq!(ra.loss, rb.loss);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.grad().data(), pb.grad().data());
        }
    }

    #[test]
    fn alternative_sam_metrics_still_train() {
        use crate::sam::{SamMetric, SkipPolicy};
        for metric in [SamMetric::NeuronNormalized, SamMetric::MembraneL2] {
            let (mut net, inputs, labels) = setup(88);
            let r = checkpointed_step_with(
                &mut net,
                &inputs,
                &labels,
                5,
                2,
                50.0,
                metric,
                SkipPolicy::SpikeActivity,
            );
            assert!(r.loss.is_finite());
            assert!(r.skipped_steps > 0, "{metric} must skip something");
            let grad_norm: f64 = net
                .params()
                .iter()
                .map(|p| p.grad().map(|x| x * x).sum())
                .sum();
            assert!(grad_norm > 0.0);
        }
    }

    #[test]
    fn different_metrics_can_choose_different_steps() {
        use crate::sam::{SamMetric, SkipPolicy};
        // Gradients under different monitors usually differ (they threshold
        // different statistics). The metrics are correlated, so any single
        // batch may coincide — require a difference on at least one of
        // several batches.
        let mut any_diff = false;
        for seed in 89..95u64 {
            let (mut a, inputs, labels) = setup(seed);
            let (mut b, _, _) = setup(seed);
            let _ = checkpointed_step_with(
                &mut a,
                &inputs,
                &labels,
                seed,
                2,
                50.0,
                SamMetric::SpikeSum,
                SkipPolicy::SpikeActivity,
            );
            let _ = checkpointed_step_with(
                &mut b,
                &inputs,
                &labels,
                seed,
                2,
                50.0,
                SamMetric::MembraneL2,
                SkipPolicy::SpikeActivity,
            );
            let diff: f32 = a
                .params()
                .iter()
                .zip(b.params().iter())
                .map(|(pa, pb)| pa.grad().max_abs_diff(pb.grad()))
                .fold(0.0, f32::max);
            if diff > 0.0 {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "metrics never selected different steps");
    }

    #[test]
    fn skipper_peak_memory_below_plain_checkpointing() {
        use skipper_memprof as mp;
        // LeNet-style deeper net, longer horizon for clearer separation.
        let net_cfg = ModelConfig {
            input_hw: 16,
            in_channels: 2,
            width_mult: 0.25,
            ..ModelConfig::default()
        };
        let mut rng = XorShiftRng::new(85);
        let inputs: Vec<Tensor> = (0..24)
            .map(|_| Tensor::rand([2, 2, 16, 16], &mut rng).map(|x| (x > 0.7) as i32 as f32))
            .collect();
        let labels = vec![0, 1];
        let mut a = lenet5(&net_cfg);
        mp::reset_peaks();
        let _ = checkpointed_step(&mut a, &inputs, &labels, 1, 2, 0.0);
        let plain = mp::snapshot().peak(mp::Category::Activations);
        let mut b = lenet5(&net_cfg);
        mp::reset_peaks();
        let _ = checkpointed_step(&mut b, &inputs, &labels, 1, 2, 50.0);
        let skipped = mp::snapshot().peak(mp::Category::Activations);
        assert!(
            (skipped as f64) < 0.85 * plain as f64,
            "skipper peak {skipped} not below checkpointing peak {plain}"
        );
    }
}
