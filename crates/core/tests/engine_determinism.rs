//! Property tests for the sharded training engine: for any admissible
//! configuration, an N-worker session must reproduce the single-worker
//! session exactly.
//!
//! Two levels of agreement are asserted, mirroring the engine's design
//! (see `skipper_core::engine`):
//!
//! * **across worker counts ≥ 2** the shard plan is canonical, so losses
//!   *and* gradients are bit-identical;
//! * **sharded vs the unsharded reference** the loss, the SAM spike sums
//!   and every skip decision are bit-identical, while gradients agree only
//!   to rounding (the single-graph path folds the batch dimension inside
//!   the kernels in a different grouping).

use proptest::prelude::*;
use skipper_core::{
    max_skippable_percentile, run_worker, BatchStats, ClusterConfig, Coordinator, Method,
    TrainSession, WorkerOptions,
};
use skipper_snn::{custom_net, ModelConfig, Sgd, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};

fn tiny_net(seed: u64) -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        seed,
        ..ModelConfig::default()
    })
}

fn spike_inputs(t: usize, batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(seed);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

/// Train one batch with momentum-free unit-lr SGD so the weight delta *is*
/// the gradient, and return (gradients, stats).
fn run_once(
    method: &Method,
    t: usize,
    batch: usize,
    workers: usize,
    data_seed: u64,
) -> (Vec<Vec<f32>>, BatchStats) {
    let net = tiny_net(11);
    let before: Vec<Vec<f32>> = net
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    let mut session = TrainSession::builder(net, method.clone(), t)
        .optimizer(Box::new(Sgd::new(1.0)))
        .workers(workers)
        .build()
        .expect("valid method");
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    let stats = session.train_batch(&spike_inputs(t, batch, data_seed), &labels);
    let net = session.into_net();
    let grads = net
        .params()
        .iter()
        .zip(before)
        .map(|(p, b)| b.iter().zip(p.value().data()).map(|(x, y)| x - y).collect())
        .collect();
    (grads, stats)
}

/// Same contract as [`run_once`], but the shards are computed by worker
/// threads behind the in-process cluster transport instead of by the
/// engine's own thread pool.
fn run_once_cluster(
    method: &Method,
    t: usize,
    batch: usize,
    workers: usize,
    data_seed: u64,
) -> (Vec<Vec<f32>>, BatchStats) {
    let cfg = ClusterConfig {
        expected_workers: workers,
        ..ClusterConfig::new(ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            seed: 11,
            ..ModelConfig::default()
        })
    };
    let (coordinator, connector) = Coordinator::in_proc(cfg);
    let handles: Vec<_> = (1..=workers as u64)
        .map(|id| {
            let mut conn = connector.clone();
            std::thread::spawn(move || {
                run_worker(
                    &mut conn,
                    &WorkerOptions {
                        id,
                        ..WorkerOptions::default()
                    },
                )
            })
        })
        .collect();
    let net = tiny_net(11);
    let before: Vec<Vec<f32>> = net
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    let mut session = TrainSession::builder(net, method.clone(), t)
        .optimizer(Box::new(Sgd::new(1.0)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    let stats = session.train_batch(&spike_inputs(t, batch, data_seed), &labels);
    let net = session.into_net();
    for h in handles {
        h.join()
            .expect("worker thread")
            .expect("workers exit via Shutdown");
    }
    let grads = net
        .params()
        .iter()
        .zip(before)
        .map(|(p, b)| b.iter().zip(p.value().data()).map(|(x, y)| x - y).collect())
        .collect();
    (grads, stats)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case trains four sessions; keep the budget sane
        .. ProptestConfig::default()
    })]

    /// The headline guarantee: for any (T, C, p, B, N) within the paper's
    /// constraints, sharded training reproduces the unsharded run — loss
    /// and skip schedule bitwise, gradients bitwise across worker counts.
    #[test]
    fn sharded_training_is_deterministic(
        t in 8usize..13,
        c in 1usize..3,
        p in 5f32..60.0,
        batch in 2usize..6,
        workers in 2usize..5,
        data_seed in 0u64..1000,
    ) {
        prop_assume!(t / c >= 3); // segment ≥ L_n
        prop_assume!(p <= max_skippable_percentile(t, c, 3)); // Eq. 7
        let method = Method::Skipper { checkpoints: c, percentile: p };

        let (g1, s1) = run_once(&method, t, batch, 1, data_seed);
        let (ga, sa) = run_once(&method, t, batch, workers, data_seed);
        let (gb, sb) = run_once(&method, t, batch, workers + 1, data_seed);

        // Sharded vs unsharded: loss and the global skip schedule are
        // bit-identical because the SAM sums are aggregated across shards
        // before the SST percentile is formed.
        prop_assert_eq!(sa.loss.to_bits(), s1.loss.to_bits(), "loss {} vs {}", sa.loss, s1.loss);
        prop_assert_eq!(sa.skipped_steps, s1.skipped_steps);
        prop_assert_eq!(sa.recomputed_steps, s1.recomputed_steps);
        prop_assert_eq!(sa.correct, s1.correct);

        // Across worker counts ≥ 2 everything, gradients included, is
        // bit-identical: the shard plan and reduction order are canonical.
        prop_assert_eq!(sb.loss.to_bits(), sa.loss.to_bits());
        prop_assert_eq!(sb.skipped_steps, sa.skipped_steps);
        for (a, b) in ga.iter().zip(&gb) {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }

        // Sharded vs unsharded gradients agree to kernel rounding.
        for (a, b) in ga.iter().zip(&g1) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }
    }

    /// The transport boundary is invisible: a cluster of worker threads
    /// speaking the framed protocol reproduces the in-process engine bit
    /// for bit — loss, skip schedule, and gradients.
    #[test]
    fn cluster_transport_is_bit_identical_to_the_engine(
        t in 8usize..13,
        c in 1usize..3,
        p in 5f32..60.0,
        batch in 2usize..6,
        workers in 2usize..4,
        data_seed in 0u64..1000,
    ) {
        prop_assume!(t / c >= 3); // segment ≥ L_n
        prop_assume!(p <= max_skippable_percentile(t, c, 3)); // Eq. 7
        let method = Method::Skipper { checkpoints: c, percentile: p };

        let (ge, se) = run_once(&method, t, batch, workers, data_seed);
        let (gc, sc) = run_once_cluster(&method, t, batch, workers, data_seed);

        prop_assert_eq!(sc.loss.to_bits(), se.loss.to_bits(), "loss {} vs {}", sc.loss, se.loss);
        prop_assert_eq!(sc.skipped_steps, se.skipped_steps);
        prop_assert_eq!(sc.recomputed_steps, se.recomputed_steps);
        prop_assert_eq!(sc.correct, se.correct);
        for (a, b) in gc.iter().zip(&ge) {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
    }

    /// The exact-forward methods shard just as deterministically.
    #[test]
    fn bptt_loss_is_worker_count_independent(
        t in 6usize..10,
        batch in 2usize..6,
        workers in 2usize..5,
        data_seed in 0u64..1000,
    ) {
        let (_, s1) = run_once(&Method::Bptt, t, batch, 1, data_seed);
        let (_, sn) = run_once(&Method::Bptt, t, batch, workers, data_seed);
        prop_assert_eq!(sn.loss.to_bits(), s1.loss.to_bits());
        prop_assert_eq!(sn.correct, s1.correct);
    }
}

#[test]
fn workers_env_variable_feeds_the_default() {
    // Only this test reads the variable: every other session in this
    // binary pins `.workers(n)` explicitly.
    std::env::set_var(skipper_core::WORKERS_ENV, "3");
    let session = TrainSession::builder(tiny_net(1), Method::Bptt, 8)
        .build()
        .expect("valid method");
    std::env::remove_var(skipper_core::WORKERS_ENV);
    assert_eq!(session.workers(), 3);
}
