//! Edge cases and failure-injection for the training methods: degenerate
//! horizons, silent networks, batch size one, and extreme configurations
//! must run to completion (or fail loudly), never corrupt state.
//!
//! Several of these deliberately train configurations that Eq. 7 flags as
//! unwise (but structurally sound), so they construct sessions through
//! `SessionBuilder::build_unvalidated`, which defers the full validity
//! checks that `build` performs to the first batch.

use skipper_core::{Method, TrainSession};
use skipper_snn::{custom_net, set_threshold, Adam, LifConfig, ModelConfig, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};

fn net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

/// Unsharded session with no up-front method validation — the edge-case
/// construction path.
fn session(n: SpikingNetwork, lr: f32, method: Method, t: usize) -> TrainSession {
    TrainSession::builder(n, method, t)
        .optimizer(Box::new(Adam::new(lr)))
        .workers(1)
        .build_unvalidated()
        .expect("structurally sound config")
}

fn inputs(t: usize, batch: usize) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(7);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, 8, 8], &mut rng).map(|x| (x > 0.5) as i32 as f32))
        .collect()
}

#[test]
fn batch_size_one_works_for_every_method() {
    for method in [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 2 },
        Method::Skipper {
            checkpoints: 2,
            percentile: 30.0,
        },
        Method::Tbptt { window: 3 },
        Method::TbpttLbp {
            window: 3,
            taps: vec![1],
        },
    ] {
        let mut s = session(net(), 1e-3, method.clone(), 6);
        let stats = s.train_batch(&inputs(6, 1), &[3]);
        assert!(stats.loss.is_finite(), "{method}");
        assert_eq!(stats.batch_size, 1);
    }
}

#[test]
fn single_timestep_horizon_works() {
    for method in [Method::Bptt, Method::Checkpointed { checkpoints: 1 }] {
        let mut s = session(net(), 1e-3, method.clone(), 1);
        let stats = s.train_batch(&inputs(1, 2), &[0, 1]);
        assert!(stats.loss.is_finite(), "{method}");
        assert_eq!(stats.recomputed_steps, 1);
    }
}

#[test]
fn c_equals_t_runs_even_though_eq7_flags_it() {
    // One-timestep segments are structurally fine (the paper's constraint
    // is about information flow quality, not mechanics).
    let t = 6;
    let method = Method::Checkpointed { checkpoints: t };
    assert!(method.validate(&net(), t).is_err(), "Eq. 7 flags it");
    let mut s = session(net(), 1e-3, method, t);
    let stats = s.train_batch(&inputs(t, 2), &[0, 1]);
    assert!(stats.loss.is_finite());
}

#[test]
fn tbptt_window_one_is_valid() {
    let mut s = session(net(), 1e-3, Method::Tbptt { window: 1 }, 5);
    let stats = s.train_batch(&inputs(5, 2), &[0, 1]);
    assert!(stats.loss.is_finite());
}

#[test]
fn completely_silent_network_still_trains_readout() {
    // A threshold far above any reachable potential silences every layer:
    // loss must stay finite (uniform softmax) and weight gradients must be
    // zero everywhere except the readout bias path.
    let mut n = net();
    for l in 0..n.spiking_layer_count() {
        set_threshold(&mut n, l, 1e6).unwrap();
    }
    let mut s = session(n, 1e-3, Method::Bptt, 6);
    let stats = s.train_batch(&inputs(6, 2), &[0, 1]);
    assert!(stats.loss.is_finite());
    assert!((stats.loss - (10.0f64).ln()).abs() < 0.2, "≈ uniform CE");
}

#[test]
fn skipper_at_percentile_just_below_100_does_not_panic() {
    let mut s = session(
        net(),
        1e-3,
        Method::Skipper {
            checkpoints: 1,
            percentile: 99.9,
        },
        8,
    );
    let stats = s.train_batch(&inputs(8, 2), &[0, 1]);
    // Nearly everything skipped; at least one step survives per segment
    // (the percentile threshold keeps the maximum).
    assert!(stats.recomputed_steps >= 1);
    assert!(stats.loss.is_finite());
}

#[test]
#[should_panic(expected = "input horizon vs session T")]
fn wrong_horizon_is_rejected() {
    let mut s = session(net(), 1e-3, Method::Bptt, 10);
    let _ = s.train_batch(&inputs(5, 2), &[0, 1]);
}

#[test]
fn constant_input_trains_without_nan_for_many_iterations() {
    // Degenerate data (all-ones spikes) with a high learning rate must not
    // produce NaNs: the surrogate keeps gradients bounded.
    let ones: Vec<Tensor> = (0..6).map(|_| Tensor::ones([2, 3, 8, 8])).collect();
    let mut s = session(
        net(),
        0.05,
        Method::Skipper {
            checkpoints: 2,
            percentile: 30.0,
        },
        6,
    );
    for _ in 0..10 {
        let stats = s.train_batch(&ones, &[0, 1]);
        assert!(stats.loss.is_finite());
    }
    for p in s.net().params().iter() {
        assert!(
            p.value().data().iter().all(|v| v.is_finite()),
            "{}",
            p.name()
        );
    }
}

#[test]
fn leakless_and_leaky_configs_both_run() {
    for leak in [0.0f32, 0.5, 0.999] {
        let n = custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            lif: LifConfig::with_leak(leak),
            ..ModelConfig::default()
        });
        let mut s = session(n, 1e-3, Method::Bptt, 4);
        let stats = s.train_batch(&inputs(4, 2), &[0, 1]);
        assert!(stats.loss.is_finite(), "leak {leak}");
    }
}
