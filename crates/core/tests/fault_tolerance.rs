//! End-to-end fault-tolerance tests: durable snapshots with bit-exact
//! resume, divergence sentinels with rollback-and-retry, and the
//! memory-budget governor.

use skipper_core::{Method, SentinelConfig, SkipperError, TrainSession};
use skipper_snn::{custom_net, Adam, Encoder, ModelConfig, PoissonEncoder};
use skipper_tensor::{Tensor, XorShiftRng};

fn session(method: Method, timesteps: usize) -> TrainSession {
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    TrainSession::builder(net, method, timesteps)
        .optimizer(Box::new(Adam::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method")
}

fn batch(seed: u64, timesteps: usize) -> (Vec<Tensor>, Vec<usize>) {
    let mut rng = XorShiftRng::new(seed);
    let frames = Tensor::rand([4, 3, 8, 8], &mut rng);
    let spikes = PoissonEncoder::default().encode(&frames, timesteps, &mut rng);
    (spikes, vec![0, 1, 2, 3])
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("skipper_fault_tolerance_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The headline acceptance test: train, snapshot to disk mid-run, keep
/// training to record the reference trajectory; then resume a *fresh*
/// session from the file and replay the same batches. Every loss must
/// match bit-for-bit.
#[test]
fn resume_reproduces_loss_trajectory_bit_exactly() {
    let method = Method::Skipper {
        checkpoints: 2,
        percentile: 25.0,
    };
    let path = tmp_path("trajectory.sksn");

    let mut a = session(method.clone(), 8);
    for seed in 0..3 {
        let (inputs, labels) = batch(seed, 8);
        a.train_batch(&inputs, &labels);
    }
    a.save_snapshot(&path).unwrap();
    let reference: Vec<u64> = (3..7)
        .map(|seed| {
            let (inputs, labels) = batch(seed, 8);
            a.train_batch(&inputs, &labels).loss.to_bits()
        })
        .collect();

    // A brand-new session (different random init) restored from the file.
    let mut b = session(method, 8);
    b.resume_from(&path).unwrap();
    assert_eq!(b.iteration(), 3);
    let resumed: Vec<u64> = (3..7)
        .map(|seed| {
            let (inputs, labels) = batch(seed, 8);
            b.train_batch(&inputs, &labels).loss.to_bits()
        })
        .collect();

    assert_eq!(
        reference, resumed,
        "resumed trajectory must be bit-exact against the uninterrupted run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_snapshot_is_rejected_descriptively() {
    let path = tmp_path("corrupt.sksn");
    let mut s = session(Method::Bptt, 8);
    let (inputs, labels) = batch(1, 8);
    s.train_batch(&inputs, &labels);
    s.save_snapshot(&path).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = session(Method::Bptt, 8).resume_from(&path).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("CRC mismatch") || msg.contains("snapshot"),
        "unexpected error: {msg}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_rejected() {
    let path = tmp_path("truncated.sksn");
    let mut s = session(Method::Bptt, 8);
    let (inputs, labels) = batch(2, 8);
    s.train_batch(&inputs, &labels);
    s.save_snapshot(&path).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    assert!(session(Method::Bptt, 8).resume_from(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn horizon_mismatch_is_a_config_error() {
    let path = tmp_path("horizon.sksn");
    let mut s = session(Method::Bptt, 8);
    let (inputs, labels) = batch(3, 8);
    s.train_batch(&inputs, &labels);
    s.save_snapshot(&path).unwrap();

    let err = session(Method::Bptt, 16).resume_from(&path).unwrap_err();
    assert!(matches!(err, SkipperError::Config(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

/// A NaN loss injected mid-run must be caught before the optimizer applies
/// the update; the session rolls back, backs the learning rate off, and
/// the batch still completes with a finite loss.
#[test]
fn nan_injection_rolls_back_and_recovers() {
    let mut s = session(
        Method::Skipper {
            checkpoints: 2,
            percentile: 25.0,
        },
        8,
    );
    s.enable_sentinels(SentinelConfig::default());
    let lr_before = s.learning_rate();
    s.inject_loss_poison(3);

    let mut recoveries_seen = 0;
    for seed in 0..4 {
        let (inputs, labels) = batch(seed, 8);
        let stats = s.try_train_batch(&inputs, &labels).unwrap();
        assert!(
            stats.loss.is_finite(),
            "loss must stay finite under recovery"
        );
        recoveries_seen += stats.recoveries;
    }
    assert_eq!(recoveries_seen, 1, "exactly one poisoned iteration");
    assert!(
        s.learning_rate() < lr_before,
        "recovery must back the learning rate off"
    );
}

/// With a gradient-norm limit of zero every attempt is divergent, so the
/// retry budget runs dry and the typed error surfaces.
#[test]
fn exhausted_retries_surface_divergence_error() {
    let mut s = session(Method::Bptt, 8);
    s.enable_sentinels(SentinelConfig {
        max_grad_norm: 0.0,
        max_retries: 2,
        lr_backoff: 0.5,
    });
    let (inputs, labels) = batch(9, 8);
    let err = s.try_train_batch(&inputs, &labels).unwrap_err();
    assert!(matches!(err, SkipperError::Divergence { .. }), "{err}");
    // 1 initial attempt + 2 retries.
    assert_eq!(s.iteration(), 3);
}

/// Rollback must restore the exact pre-fault weights: a recovered batch
/// trained with sentinels from a snapshot must match the weights of a
/// clean run whose faulty attempt never happened... here we check the
/// cheaper invariant: after exhausting retries the weights equal the last
/// good state.
#[test]
fn failed_batch_leaves_weights_at_last_good_state() {
    let mut s = session(Method::Bptt, 8);
    s.enable_sentinels(SentinelConfig::default());
    let (inputs, labels) = batch(11, 8);
    s.try_train_batch(&inputs, &labels).unwrap();
    let good: Vec<f32> = s
        .net()
        .params()
        .iter()
        .next()
        .unwrap()
        .value()
        .data()
        .to_vec();

    // Now make every further attempt divergent.
    s.enable_sentinels(SentinelConfig {
        max_grad_norm: 0.0,
        max_retries: 1,
        lr_backoff: 0.5,
    });
    s.try_train_batch(&inputs, &labels).unwrap_err();
    let after: Vec<f32> = s
        .net()
        .params()
        .iter()
        .next()
        .unwrap()
        .value()
        .data()
        .to_vec();
    assert_eq!(good, after, "weights must be at the last good state");
}

/// Under a byte budget the governor converts plain BPTT to √T temporal
/// checkpointing; the next iteration's peak must actually drop.
#[test]
fn governor_relieves_real_memory_pressure() {
    let mut s = session(Method::Bptt, 16);
    s.set_memory_budget(Some(1)); // impossible budget: always under pressure
    let (inputs, labels) = batch(21, 16);

    let p1 = s.train_batch(&inputs, &labels).peak_bytes();
    assert_eq!(s.governor_log().len(), 1);
    let action = &s.governor_log()[0];
    assert_eq!(action.from, Method::Bptt);
    assert!(matches!(action.to, Method::Checkpointed { .. }), "{action}");
    assert_eq!(s.method(), &action.to);

    let p2 = s.train_batch(&inputs, &labels).peak_bytes();
    assert!(
        p2 < p1,
        "checkpointing must reduce peak memory: {p1} -> {p2}"
    );
}

/// Synthetic allocation pressure (the deterministic fault-injection hook
/// in `skipper-memprof`) counts toward the measured peak and therefore
/// triggers the governor even when the model itself is small.
#[test]
fn injected_pressure_triggers_governor() {
    let mut s = session(Method::Checkpointed { checkpoints: 1 }, 16);
    let (inputs, labels) = batch(22, 16);
    let quiet = s.train_batch(&inputs, &labels).peak_bytes();
    assert!(s.governor_log().is_empty());

    // Budget comfortably above the quiet peak, then inject pressure past it.
    s.set_memory_budget(Some(quiet * 2));
    skipper_memprof::inject_pressure(quiet * 4, skipper_memprof::Category::Other);
    s.train_batch(&inputs, &labels);
    skipper_memprof::release_pressure();

    assert_eq!(s.governor_log().len(), 1, "{:?}", s.governor_log());
    // C stepped toward √16 = 4.
    assert_eq!(s.method(), &Method::Checkpointed { checkpoints: 2 });
}
