//! Robustness of `.sksn` snapshot decoding against corrupted bytes.
//!
//! A snapshot that was truncated, bit-flipped, or rewritten with a stale
//! CRC must come back as a typed [`SkipperError`] — never a panic, never
//! a silently wrong [`SessionState`]. These tests drive
//! [`read_snapshot_from`] with systematically mutated images of a valid
//! snapshot, including a proptest sweep over arbitrary offsets.

use proptest::prelude::*;
use skipper_core::resume::{read_snapshot_from, write_snapshot_to};
use skipper_core::{Method, SessionState, SkipperError};
use skipper_snn::serialize::ParamRecord;
use skipper_snn::OptimizerState;
use skipper_tensor::Tensor;

/// A small but fully populated state: params, optimizer tensors, and an
/// auxiliary head so every section kind appears in the container.
fn state_with_aux() -> SessionState {
    SessionState {
        iteration: 7,
        timesteps: 12,
        method: Method::Skipper {
            checkpoints: 3,
            percentile: 30.0,
        },
        sam_metric: skipper_core::SamMetric::default(),
        skip_policy: skipper_core::SkipPolicy::default(),
        sam_sums: vec![0.5, 1.25, 2.0, 0.0],
        params: vec![
            ParamRecord {
                name: "conv1.w".into(),
                value: Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0], [4]),
            },
            ParamRecord {
                name: "fc.w".into(),
                value: Tensor::from_vec(vec![0.1; 6], [2, 3]),
            },
        ],
        optim: OptimizerState {
            kind: "adam".into(),
            scalars: vec![("lr".into(), 1e-3), ("t".into(), 7.0)],
            tensors: vec![("m.conv1.w".into(), Tensor::from_vec(vec![0.0; 4], [4]))],
        },
        aux: Some((
            vec![ParamRecord {
                name: "aux0.w".into(),
                value: Tensor::from_vec(vec![0.3, -0.3], [2]),
            }],
            OptimizerState {
                kind: "sgd".into(),
                scalars: vec![("lr".into(), 1e-2)],
                tensors: vec![],
            },
        )),
    }
}

fn valid_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot_to(&state_with_aux(), &mut buf).expect("serializing a valid state");
    buf
}

#[test]
fn valid_snapshot_roundtrips() {
    let state = read_snapshot_from(&mut valid_bytes().as_slice()).expect("valid bytes decode");
    assert_eq!(state.iteration, 7);
    assert_eq!(state.params.len(), 2);
    assert!(state.aux.is_some());
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let buf = valid_bytes();
    // Every strict prefix must fail closed: magic cut short, a section
    // header cut mid-field, a payload cut mid-tensor, the trailer missing.
    for cut in 0..buf.len() {
        let mut short = buf.clone();
        short.truncate(cut);
        let err = read_snapshot_from(&mut short.as_slice())
            .expect_err("a truncated snapshot must never decode");
        match err {
            SkipperError::Snapshot(_) | SkipperError::Io(_) => {}
            other => panic!("cut at {cut}: unexpected error variant {other:?}"),
        }
    }
}

#[test]
fn wrong_section_crc_names_the_section() {
    let buf = valid_bytes();
    // The stored CRC of the "params" section is the 4 bytes right after its
    // payload; rewriting the payload without updating the CRC must be
    // caught. Locate the section by its name bytes.
    let name = b"params";
    let at = buf
        .windows(name.len())
        .position(|w| w == name)
        .expect("params section present");
    // name | payload_len(4) | payload... — flip a byte early in the payload.
    let payload_at = at + name.len() + 4;
    let mut bad = buf.clone();
    bad[payload_at + 8] ^= 0xFF;
    let err = read_snapshot_from(&mut bad.as_slice()).unwrap_err();
    assert!(
        err.to_string().contains("CRC mismatch"),
        "expected a CRC error, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flipping any single bit anywhere in the image either still decodes
    /// (flips inside an unchecked length field can cancel out only by
    /// failing elsewhere) or returns a typed error — it never panics and
    /// never decodes to a state with a different shape of content.
    #[test]
    fn single_bit_flip_never_panics(pos in 0usize..4096, bit in 0u8..8) {
        let mut buf = valid_bytes();
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        match read_snapshot_from(&mut buf.as_slice()) {
            // A flip in the JSON meta that survives the CRC is impossible;
            // a successful decode can only mean the flip was reverted by
            // the modulo... it was not: any Ok must carry intact params.
            Ok(state) => {
                prop_assert_eq!(state.params.len(), 2);
                prop_assert_eq!(state.iteration, 7);
            }
            Err(SkipperError::Snapshot(_)) | Err(SkipperError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error variant {:?}", other),
        }
    }

    /// Random truncation points combined with a bit flip in the surviving
    /// prefix: the decoder must fail closed on the double fault too.
    #[test]
    fn truncate_then_flip_never_panics(cut in 1usize..4096, pos in 0usize..4096, bit in 0u8..8) {
        let mut buf = valid_bytes();
        let cut = 1 + cut % (buf.len() - 1);
        buf.truncate(cut);
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        // Either error variant is fine; decoding successfully is not, since
        // the trailer can never survive a strict truncation.
        prop_assert!(read_snapshot_from(&mut buf.as_slice()).is_err());
    }

    /// Appending garbage after a valid image still decodes the valid part
    /// (the reader consumes exactly the container), while garbage-only
    /// images of any length fail with a typed error.
    #[test]
    fn garbage_images_fail_closed(len in 0usize..512, seed in 0u64..u64::MAX) {
        let mut bytes = Vec::with_capacity(len);
        let mut x = seed | 1;
        for _ in 0..len {
            // xorshift* keeps the generator dependency-free.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            bytes.push((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8);
        }
        match read_snapshot_from(&mut bytes.as_slice()) {
            Ok(_) => prop_assert!(false, "random bytes must never decode"),
            Err(SkipperError::Snapshot(_)) | Err(SkipperError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error variant {:?}", other),
        }
    }
}
