//! Serialization contracts: configs and measurement records must survive
//! JSON round-trips (the bench harness persists them under `results/`).

use skipper_core::{BatchStats, Method, SamMetric, SkipPolicy, TrainSession};
use skipper_snn::{custom_net, Adam, ModelConfig};
use skipper_tensor::{Tensor, XorShiftRng};

#[test]
fn method_json_roundtrip() {
    let methods = vec![
        Method::Bptt,
        Method::Checkpointed { checkpoints: 7 },
        Method::Skipper {
            checkpoints: 5,
            percentile: 52.5,
        },
        Method::Tbptt { window: 25 },
        Method::TbpttLbp {
            window: 10,
            taps: vec![2, 5],
        },
    ];
    for m in methods {
        let json = serde_json::to_string(&m).unwrap();
        let back: Method = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back, "{json}");
    }
}

#[test]
fn sam_enums_json_roundtrip() {
    for m in [
        SamMetric::SpikeSum,
        SamMetric::NeuronNormalized,
        SamMetric::MembraneL2,
    ] {
        let back: SamMetric = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }
    for p in [SkipPolicy::SpikeActivity, SkipPolicy::Random] {
        let back: SkipPolicy = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn batch_stats_serialize_with_all_measurements() {
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    let mut session = TrainSession::builder(
        net,
        Method::Skipper {
            checkpoints: 2,
            percentile: 40.0,
        },
        12,
    )
    .optimizer(Box::new(Adam::new(1e-3)))
    .build()
    .expect("valid method");
    let mut rng = XorShiftRng::new(1);
    let inputs: Vec<Tensor> = (0..12)
        .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.5) as i32 as f32))
        .collect();
    let stats = session.train_batch(&inputs, &[0, 1]);
    let json = serde_json::to_value(&stats).unwrap();
    assert!(json["loss"].is_number());
    assert_eq!(json["batch_size"], 2);
    assert!(json["mem"].is_object() || json["mem"].is_array() || !json["mem"].is_null());
    let back: BatchStats = serde_json::from_value(json).unwrap();
    assert_eq!(back.timesteps, stats.timesteps);
    assert_eq!(back.skipped_steps, stats.skipped_steps);
    assert!((back.loss - stats.loss).abs() < 1e-12);
}
