//! The structured-event stream must agree with the runner's own
//! accounting: `skip_decision` events are the trace-side view of the same
//! per-timestep decisions `BatchStats` tallies, so the two must match
//! exactly — per batch and in aggregate.
//!
//! Cargo runs tests in parallel threads that share the process-global
//! collector, so every assertion filters the ring buffer down to events
//! emitted by this thread (`snapshot_current_thread`).

use skipper_core::{Method, TrainSession};
use skipper_obs as obs;
use skipper_snn::{custom_net, Adam, ModelConfig};
use skipper_tensor::{Tensor, XorShiftRng};

fn inputs(t: usize, batch: usize) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(11);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

fn session(method: Method, t: usize) -> TrainSession {
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    TrainSession::builder(net, method, t)
        .optimizer(Box::new(Adam::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method")
}

fn skip_field(e: &obs::Event) -> Option<bool> {
    e.fields.iter().find_map(|(k, v)| match (k, v) {
        (&"skip", obs::FieldValue::Bool(b)) => Some(*b),
        _ => None,
    })
}

#[test]
fn skip_decision_events_match_batch_stats() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let t = 12usize;
    let mut s = session(
        Method::Skipper {
            checkpoints: 2, // 6-step segments: Eq. 7 admits p = 50
            percentile: 50.0,
        },
        t,
    );
    let inputs = inputs(t, 4);
    let labels = [0usize, 1, 2, 3];

    for _ in 0..3 {
        handle.clear();
        let stats = s.train_batch(&inputs, &labels);
        let events = handle.snapshot_current_thread();

        let decisions: Vec<_> = events
            .iter()
            .filter(|e| e.name == "skip_decision")
            .collect();
        assert_eq!(
            decisions.len(),
            t,
            "one skip_decision event per timestep per batch"
        );
        let skipped = decisions
            .iter()
            .filter(|e| skip_field(e) == Some(true))
            .count();
        let recomputed = decisions
            .iter()
            .filter(|e| skip_field(e) == Some(false))
            .count();
        assert_eq!(skipped, stats.skipped_steps, "skip=true vs BatchStats");
        assert_eq!(
            recomputed, stats.recomputed_steps,
            "skip=false vs BatchStats"
        );
        assert_eq!(skipped + recomputed, t, "recomputed + skipped = T");
    }

    obs::remove_sink(id);
}

#[test]
fn recompute_spans_cover_every_segment() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let (t, c) = (10usize, 2usize);
    let mut s = session(
        Method::Skipper {
            checkpoints: c,
            // Just under the Eq. 7 cap for 5-step segments (the cap itself,
            // 100·(1 − 3/5), rounds below 40 in f32).
            percentile: 39.0,
        },
        t,
    );
    let stats = s.train_batch(&inputs(t, 2), &[1, 2]);
    let events = handle.snapshot_current_thread();
    obs::remove_sink(id);

    let seg_begins = events
        .iter()
        .filter(|e| {
            e.name == "recompute_segment" && matches!(e.kind, obs::EventKind::SpanBegin { .. })
        })
        .count();
    assert_eq!(seg_begins, c, "one recompute span per checkpoint segment");

    // The trace's counters must also agree with BatchStats.
    let counted: f64 = events
        .iter()
        .filter(|e| e.name == "skipper.steps_skipped")
        .map(|e| match e.kind {
            obs::EventKind::Counter { delta } => delta,
            _ => 0.0,
        })
        .sum();
    assert_eq!(counted as usize, stats.skipped_steps);
}

/// Begin events named `name`, as `(id, parent, tid)` triples.
fn span_begins(events: &[obs::Event], name: &str) -> Vec<(u64, Option<u64>, u64)> {
    events
        .iter()
        .filter(|e| e.name == name)
        .filter_map(|e| match e.kind {
            obs::EventKind::SpanBegin { id, parent } => Some((id, parent, e.tid)),
            _ => None,
        })
        .collect()
}

#[test]
fn worker_spans_nest_under_iteration_and_cover_all_pool_threads() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 16);
    let id = obs::add_sink(Box::new(ring));

    let workers = 4usize;
    let t = 12usize;
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    let mut s = TrainSession::builder(
        net,
        Method::Skipper {
            checkpoints: 2,
            percentile: 50.0,
        },
        t,
    )
    .optimizer(Box::new(Adam::new(1e-3)))
    .workers(workers)
    .build()
    .expect("valid method");

    // Batch 8 -> the canonical 8-shard plan, so all 4 workers get jobs in
    // both dispatch phases.
    handle.clear();
    let _ = s.train_batch(&inputs(t, 8), &[0, 1, 2, 3, 4, 5, 6, 7]);
    let events = handle.snapshot();
    obs::remove_sink(id);

    // Our iteration span: parallel tests share the collector, so identify
    // it by this thread's tid (handle.clear() ran just before the batch).
    let my_tid = obs::current_tid();
    let iterations: Vec<_> = span_begins(&events, "iteration")
        .into_iter()
        .filter(|&(_, _, tid)| tid == my_tid)
        .collect();
    assert_eq!(iterations.len(), 1, "exactly one iteration on this thread");
    let iteration_id = iterations[0].0;

    // Every worker task this iteration dispatched nests under it — the
    // cross-thread span-context carrier at work.
    let tasks: Vec<_> = span_begins(&events, "worker_task")
        .into_iter()
        .filter(|&(_, parent, _)| parent == Some(iteration_id))
        .collect();
    assert_eq!(
        tasks.len(),
        2 * workers,
        "phase A + phase B task per worker, all parented under iteration"
    );
    let mut task_tids: Vec<u64> = tasks.iter().map(|&(_, _, tid)| tid).collect();
    task_tids.sort_unstable();
    task_tids.dedup();
    assert_eq!(task_tids.len(), workers, "one distinct tid per pool thread");
    assert!(
        !task_tids.contains(&my_tid),
        "pool threads are not the session thread"
    );

    // Per-shard spans nest under their worker task, transitively under the
    // iteration.
    let task_ids: Vec<u64> = tasks.iter().map(|&(id, ..)| id).collect();
    for name in ["shard_forward", "shard_backward"] {
        let shards: Vec<_> = span_begins(&events, name)
            .into_iter()
            .filter(|(_, parent, _)| parent.is_some_and(|p| task_ids.contains(&p)))
            .collect();
        assert_eq!(shards.len(), 8, "{name}: one span per shard of the plan");
    }

    // The ring can enumerate every pool thread's stream, not just the
    // caller's.
    let all_tids = handle.tids();
    for tid in &task_tids {
        assert!(all_tids.contains(tid), "tids() lists pool thread {tid}");
        let thread_events = handle.snapshot_thread(*tid);
        assert!(
            thread_events
                .iter()
                .any(|e| e.name == "worker_task" && e.tid == *tid),
            "snapshot_thread({tid}) sees that worker's events"
        );
    }

    // The engine also published pool gauges while the sink was live.
    let metrics = obs::registry().snapshot();
    assert!(
        metrics
            .gauges
            .iter()
            .any(|(k, _)| k.starts_with("engine.queue_depth")),
        "queue-depth gauge present"
    );
    assert!(
        (0..workers).all(|w| {
            metrics
                .gauges
                .iter()
                .any(|(k, _)| k == &obs::labeled("engine.worker_utilization", "worker", w))
        }),
        "utilization gauge per worker"
    );
    assert!(
        metrics
            .histograms
            .iter()
            .any(|(k, _)| k.starts_with("engine.shard_wall_us")),
        "per-shard wall histogram present"
    );
}

#[test]
fn chrome_trace_of_pooled_run_parses_and_balances() {
    let dir = std::env::temp_dir().join(format!("skipper_obs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pooled.trace.json");
    let id = obs::add_sink(Box::new(obs::ChromeTraceSink::new(&path)));
    // A ring sink rides along to learn which pool tids belong to *this*
    // test: sinks are process-global, so the trace file also captures any
    // concurrently running test's pool.
    let (ring, handle) = obs::RingBufferSink::new(1 << 16);
    let ring_id = obs::add_sink(Box::new(ring));

    let t = 10usize;
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    let mut s = TrainSession::builder(net, Method::Checkpointed { checkpoints: 2 }, t)
        .optimizer(Box::new(Adam::new(1e-3)))
        .workers(3)
        .build()
        .expect("valid method");
    handle.clear();
    let _ = s.train_batch(&inputs(t, 6), &[0, 1, 2, 3, 4, 5]);

    // `train_batch` returns once the results arrive, which can be before
    // the workers close their `worker_task` spans — dropping the session
    // joins the pool, so every span end is recorded before the flush.
    drop(s);

    let my_tid = obs::current_tid();
    let events = handle.snapshot();
    let my_iteration = span_begins(&events, "iteration")
        .into_iter()
        .find(|&(_, _, tid)| tid == my_tid)
        .expect("this test's iteration span")
        .0;
    let my_worker_tids: std::collections::BTreeSet<u64> = span_begins(&events, "worker_task")
        .into_iter()
        .filter(|&(_, parent, _)| parent == Some(my_iteration))
        .map(|(_, _, tid)| tid)
        .collect();

    // Removal flushes the file.
    obs::remove_sink(id);
    obs::remove_sink(ring_id);
    let text = std::fs::read_to_string(&path).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let trace_events = value
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // This test's pool threads are joined and exclusively ours, so their
    // B/E streams must balance exactly.
    let field = |e: &serde_json::Value, k: &str| e.as_object().and_then(|o| o.get(k).cloned());
    let event_str =
        |e: &serde_json::Value, k: &str| field(e, k).and_then(|v| v.as_str().map(String::from));
    let worker_tids: std::collections::BTreeSet<u64> = trace_events
        .iter()
        .filter(|e| event_str(e, "name").as_deref() == Some("worker_task"))
        .filter_map(|e| field(e, "tid").and_then(|v| v.as_u64()))
        .filter(|tid| my_worker_tids.contains(tid))
        .collect();
    assert!(
        worker_tids.len() >= 2,
        "worker spans carry distinct tids: {worker_tids:?}"
    );
    for tid in &worker_tids {
        let (mut begins, mut ends) = (0usize, 0usize);
        for e in trace_events {
            if field(e, "tid").and_then(|v| v.as_u64()) != Some(*tid) {
                continue;
            }
            match event_str(e, "ph").as_deref() {
                Some("B") => begins += 1,
                Some("E") => ends += 1,
                _ => {}
            }
        }
        assert!(begins > 0, "tid {tid} traced at least one span");
        assert_eq!(begins, ends, "B/E balance on worker tid {tid}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_method_skips_nothing() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let t = 8usize;
    let mut s = session(Method::Checkpointed { checkpoints: 2 }, t);
    let stats = s.train_batch(&inputs(t, 2), &[0, 1]);
    let events = handle.snapshot_current_thread();
    obs::remove_sink(id);

    assert_eq!(stats.skipped_steps, 0);
    let skipped_events = events
        .iter()
        .filter(|e| e.name == "skip_decision" && skip_field(e) == Some(true))
        .count();
    assert_eq!(skipped_events, 0, "plain checkpointing never skips");
}
