//! The structured-event stream must agree with the runner's own
//! accounting: `skip_decision` events are the trace-side view of the same
//! per-timestep decisions `BatchStats` tallies, so the two must match
//! exactly — per batch and in aggregate.
//!
//! Cargo runs tests in parallel threads that share the process-global
//! collector, so every assertion filters the ring buffer down to events
//! emitted by this thread (`snapshot_current_thread`).

use skipper_core::{Method, TrainSession};
use skipper_obs as obs;
use skipper_snn::{custom_net, Adam, ModelConfig};
use skipper_tensor::{Tensor, XorShiftRng};

fn inputs(t: usize, batch: usize) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(11);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

fn session(method: Method, t: usize) -> TrainSession {
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    TrainSession::builder(net, method, t)
        .optimizer(Box::new(Adam::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method")
}

fn skip_field(e: &obs::Event) -> Option<bool> {
    e.fields.iter().find_map(|(k, v)| match (k, v) {
        (&"skip", obs::FieldValue::Bool(b)) => Some(*b),
        _ => None,
    })
}

#[test]
fn skip_decision_events_match_batch_stats() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let t = 12usize;
    let mut s = session(
        Method::Skipper {
            checkpoints: 2, // 6-step segments: Eq. 7 admits p = 50
            percentile: 50.0,
        },
        t,
    );
    let inputs = inputs(t, 4);
    let labels = [0usize, 1, 2, 3];

    for _ in 0..3 {
        handle.clear();
        let stats = s.train_batch(&inputs, &labels);
        let events = handle.snapshot_current_thread();

        let decisions: Vec<_> = events
            .iter()
            .filter(|e| e.name == "skip_decision")
            .collect();
        assert_eq!(
            decisions.len(),
            t,
            "one skip_decision event per timestep per batch"
        );
        let skipped = decisions
            .iter()
            .filter(|e| skip_field(e) == Some(true))
            .count();
        let recomputed = decisions
            .iter()
            .filter(|e| skip_field(e) == Some(false))
            .count();
        assert_eq!(skipped, stats.skipped_steps, "skip=true vs BatchStats");
        assert_eq!(
            recomputed, stats.recomputed_steps,
            "skip=false vs BatchStats"
        );
        assert_eq!(skipped + recomputed, t, "recomputed + skipped = T");
    }

    obs::remove_sink(id);
}

#[test]
fn recompute_spans_cover_every_segment() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let (t, c) = (10usize, 2usize);
    let mut s = session(
        Method::Skipper {
            checkpoints: c,
            // Just under the Eq. 7 cap for 5-step segments (the cap itself,
            // 100·(1 − 3/5), rounds below 40 in f32).
            percentile: 39.0,
        },
        t,
    );
    let stats = s.train_batch(&inputs(t, 2), &[1, 2]);
    let events = handle.snapshot_current_thread();
    obs::remove_sink(id);

    let seg_begins = events
        .iter()
        .filter(|e| {
            e.name == "recompute_segment" && matches!(e.kind, obs::EventKind::SpanBegin { .. })
        })
        .count();
    assert_eq!(seg_begins, c, "one recompute span per checkpoint segment");

    // The trace's counters must also agree with BatchStats.
    let counted: f64 = events
        .iter()
        .filter(|e| e.name == "skipper.steps_skipped")
        .map(|e| match e.kind {
            obs::EventKind::Counter { delta } => delta,
            _ => 0.0,
        })
        .sum();
    assert_eq!(counted as usize, stats.skipped_steps);
}

#[test]
fn checkpointed_method_skips_nothing() {
    let (ring, handle) = obs::RingBufferSink::new(1 << 14);
    let id = obs::add_sink(Box::new(ring));

    let t = 8usize;
    let mut s = session(Method::Checkpointed { checkpoints: 2 }, t);
    let stats = s.train_batch(&inputs(t, 2), &[0, 1]);
    let events = handle.snapshot_current_thread();
    obs::remove_sink(id);

    assert_eq!(stats.skipped_steps, 0);
    let skipped_events = events
        .iter()
        .filter(|e| e.name == "skip_decision" && skip_field(e) == Some(true))
        .count();
    assert_eq!(skipped_events, 0, "plain checkpointing never skips");
}
