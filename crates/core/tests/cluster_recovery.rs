//! Recovery-path tests for the distributed coordinator/worker cluster.
//!
//! The contract under test (see `skipper_core::cluster`): whatever faults
//! the transport or the workers suffer — kills mid-epoch, torn frames,
//! reconnects after backoff — a training run that completes produces
//! results **bit-identical** to an unfailed run, because nothing is
//! applied to the parameter store until one fully consistent
//! `(iteration, attempt)` result set exists, and a retried attempt starts
//! from unchanged parameters.

use skipper_core::{
    run_worker, BackoffConfig, ChaosConfig, ClusterConfig, Coordinator, Method, SkipperError,
    TcpConnector, TrainSession, WorkerOptions, WorkerReport,
};
use skipper_snn::{custom_net, ModelConfig, Sgd, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::thread::JoinHandle;
use std::time::Duration;

const T: usize = 12;
const BATCH: usize = 4;
const METHOD: Method = Method::Skipper {
    checkpoints: 2,
    percentile: 30.0,
};

fn model() -> ModelConfig {
    ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        seed: 11,
        ..ModelConfig::default()
    }
}

fn net() -> SpikingNetwork {
    custom_net(&model())
}

fn spike_inputs(data_seed: u64) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(data_seed);
    (0..T)
        .map(|_| Tensor::rand([BATCH, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

fn labels() -> Vec<usize> {
    (0..BATCH).map(|i| i % 10).collect()
}

/// Fast knobs for loopback tests: everything that is a multi-second
/// production deadline shrinks so faulty paths converge in milliseconds.
fn fast_cfg(expected_workers: usize) -> ClusterConfig {
    ClusterConfig {
        expected_workers,
        min_workers: 1,
        work_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(10),
        ..ClusterConfig::new(model())
    }
}

fn fast_backoff() -> BackoffConfig {
    BackoffConfig {
        base: Duration::from_millis(1),
        max: Duration::from_millis(20),
        max_retries: 20,
        ..BackoffConfig::default()
    }
}

type WorkerHandle = JoinHandle<Result<WorkerReport, SkipperError>>;

/// What one completed cluster run produced, for bit-exact comparison.
struct RunOutcome {
    /// Per-iteration loss bits.
    losses: Vec<u64>,
    /// Final weights after all optimizer steps.
    weights: Vec<Vec<f32>>,
    /// One entry per worker thread; `Err` only on transport exhaustion.
    reports: Vec<Result<WorkerReport, SkipperError>>,
}

/// Run `iters` Skipper iterations over an in-process cluster with the
/// given per-worker options, on a fixed batch.
fn run_in_proc_cluster(
    iters: usize,
    cfg: ClusterConfig,
    workers: Vec<WorkerOptions>,
) -> RunOutcome {
    let (coordinator, connector) = Coordinator::in_proc(cfg);
    let handles: Vec<WorkerHandle> = workers
        .into_iter()
        .map(|opts| {
            let mut conn = connector.clone();
            std::thread::spawn(move || run_worker(&mut conn, &opts))
        })
        .collect();
    drop(connector);
    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    let inputs = spike_inputs(42);
    let labels = labels();
    let losses = (0..iters)
        .map(|_| session.train_batch(&inputs, &labels).loss.to_bits())
        .collect();
    // Dropping the session shuts the coordinator down (Shutdown to every
    // live worker), which ends the worker threads.
    let trained = session.into_net();
    let weights = trained
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    let reports = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread must not panic"))
        .collect();
    RunOutcome {
        losses,
        weights,
        reports,
    }
}

fn worker(id: u64) -> WorkerOptions {
    WorkerOptions {
        id,
        backoff: fast_backoff(),
        heartbeat_interval: Duration::from_millis(25),
        ..WorkerOptions::default()
    }
}

fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.losses, b.losses, "{what}: per-iteration loss bits");
    assert_eq!(a.weights.len(), b.weights.len());
    for (i, (wa, wb)) in a.weights.iter().zip(&b.weights).enumerate() {
        assert!(
            wa.iter().zip(wb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{what}: weight tensor {i} differs"
        );
    }
}

#[test]
fn clean_cluster_run_matches_the_in_process_engine_bit_exactly() {
    let clean = run_in_proc_cluster(3, fast_cfg(2), vec![worker(1), worker(2)]);
    for r in &clean.reports {
        let rep = r.as_ref().expect("clean run: workers exit via Shutdown");
        assert!(!rep.killed);
        assert_eq!(rep.reconnects, 0, "no reconnects without chaos");
        assert!(rep.shards > 0, "both workers computed shards");
    }

    // The in-process engine is the determinism reference: same shard
    // plan, same tree reduction, same optimizer arithmetic.
    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .workers(4)
        .build()
        .expect("valid method");
    let inputs = spike_inputs(42);
    let labels = labels();
    let engine_losses: Vec<u64> = (0..3)
        .map(|_| session.train_batch(&inputs, &labels).loss.to_bits())
        .collect();
    let engine_net = session.into_net();

    assert_eq!(clean.losses, engine_losses, "cluster vs engine loss bits");
    for (i, (p, w)) in engine_net.params().iter().zip(&clean.weights).enumerate() {
        assert!(
            p.value()
                .data()
                .iter()
                .zip(w)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "cluster vs engine: weight tensor {i} differs"
        );
    }
}

#[test]
fn killed_worker_mid_epoch_reassigns_and_stays_bit_exact() {
    let clean = run_in_proc_cluster(4, fast_cfg(3), vec![worker(1), worker(2), worker(3)]);

    // Worker 2's chaos schedule kills it when it receives work for
    // iteration 3: the attempt fails, its shards are reassigned over the
    // two survivors, and the retried attempt (parameters untouched) is
    // bit-identical — so the whole 4-iteration run must match.
    let mut victim = worker(2);
    victim.chaos = Some(ChaosConfig {
        kill: Some((2, 3)),
        ..ChaosConfig::default()
    });
    let chaotic = run_in_proc_cluster(4, fast_cfg(3), vec![worker(1), victim, worker(3)]);

    assert_bit_identical(&clean, &chaotic, "kill-mid-epoch");
    let killed: Vec<&WorkerReport> = chaotic
        .reports
        .iter()
        .map(|r| r.as_ref().expect("kill run: workers exit cleanly"))
        .filter(|r| r.killed)
        .collect();
    assert_eq!(killed.len(), 1, "exactly the scheduled worker died");
    assert!(
        killed[0].iterations >= 2,
        "the victim computed shards before its death schedule fired"
    );
}

#[test]
fn frame_corruption_forces_reconnects_without_duplicate_gradients() {
    let clean = run_in_proc_cluster(6, fast_cfg(2), vec![worker(1), worker(2)]);

    // ~10 % of all frames (both directions) arrive with a flipped bit:
    // every such frame poisons its connection, the coordinator abandons
    // the in-flight attempt, the worker reconnects after backoff, and the
    // attempt is retried — results must not drift by a single bit, and in
    // particular a re-delivered stale result must never apply twice.
    let mut cfg = fast_cfg(2);
    cfg.chaos = Some(ChaosConfig {
        seed: 9,
        corrupt: 0.1,
        ..ChaosConfig::default()
    });
    cfg.max_attempts = 50;
    let chaotic = run_in_proc_cluster(6, cfg, vec![worker(1), worker(2)]);

    assert_bit_identical(&clean, &chaotic, "frame corruption");
    // At ~10 % corruption over hundreds of frames some connection must
    // have torn: either a worker logged a successful reconnect, or it
    // ended on the (legitimate) exhausted-reconnect path after the
    // coordinator shut down mid-handshake.
    assert!(
        chaotic.reports.iter().any(|r| match r {
            Ok(rep) => rep.reconnects > 0,
            Err(SkipperError::Transport { .. }) => true,
            Err(other) => panic!("unexpected worker error: {other}"),
        }),
        "chaos at 10% corruption must exercise the reconnect path"
    );
}

#[test]
fn degraded_start_proceeds_below_expected_workers() {
    // Two workers expected, one shows up: after `connect_timeout` the
    // coordinator degrades to the floor and the run still bit-matches.
    let clean = run_in_proc_cluster(2, fast_cfg(2), vec![worker(1), worker(2)]);
    let mut cfg = fast_cfg(2);
    cfg.connect_timeout = Duration::from_millis(300);
    let degraded = run_in_proc_cluster(2, cfg, vec![worker(1)]);
    assert_bit_identical(&clean, &degraded, "degraded start");
}

#[test]
fn cluster_with_no_workers_is_a_typed_worker_lost_error() {
    let mut cfg = fast_cfg(1);
    cfg.connect_timeout = Duration::from_millis(150);
    let (coordinator, connector) = Coordinator::in_proc(cfg);
    drop(connector); // nobody will ever dial in
    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    let err = session
        .try_train_batch(&spike_inputs(42), &labels())
        .expect_err("no workers can serve the iteration");
    assert!(matches!(err, SkipperError::WorkerLost { .. }), "{err}");
}

#[test]
fn tcp_loopback_cluster_matches_the_in_proc_transport() {
    let reference = run_in_proc_cluster(2, fast_cfg(2), vec![worker(1), worker(2)]);

    let coordinator = Coordinator::listen_tcp("127.0.0.1:0", fast_cfg(2)).expect("loopback bind");
    let addr = coordinator.addr();
    let handles: Vec<WorkerHandle> = [1u64, 2]
        .into_iter()
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = TcpConnector::new(addr, None);
                run_worker(&mut conn, &worker(id))
            })
        })
        .collect();
    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    let inputs = spike_inputs(42);
    let labels = labels();
    let losses: Vec<u64> = (0..2)
        .map(|_| session.train_batch(&inputs, &labels).loss.to_bits())
        .collect();
    let trained = session.into_net();
    for h in handles {
        h.join()
            .expect("worker thread")
            .expect("TCP workers exit via Shutdown");
    }

    assert_eq!(losses, reference.losses, "TCP vs in-proc loss bits");
    for (p, w) in trained.params().iter().zip(&reference.weights) {
        assert!(
            p.value()
                .data()
                .iter()
                .zip(w)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "TCP vs in-proc weights differ"
        );
    }
}

#[test]
fn epoch_replay_from_snapshot_resumes_bit_exactly_after_total_cluster_loss() {
    let uninterrupted = run_in_proc_cluster(5, fast_cfg(2), vec![worker(1), worker(2)]);

    let dir = std::env::temp_dir().join(format!("skipper_cluster_replay_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("epoch.sksn");

    // First cluster: train three iterations, snapshot, then lose
    // everything (session drop kills coordinator and workers).
    let inputs = spike_inputs(42);
    let labels = labels();
    let mut first_losses: Vec<u64> = Vec::new();
    {
        let (coordinator, connector) = Coordinator::in_proc(fast_cfg(2));
        let handles: Vec<WorkerHandle> = [1u64, 2]
            .into_iter()
            .map(|id| {
                let mut conn = connector.clone();
                std::thread::spawn(move || run_worker(&mut conn, &worker(id)))
            })
            .collect();
        let mut session = TrainSession::builder(net(), METHOD, T)
            .optimizer(Box::new(Sgd::new(0.5)))
            .cluster(coordinator)
            .build()
            .expect("valid method");
        for _ in 0..3 {
            first_losses.push(session.train_batch(&inputs, &labels).loss.to_bits());
        }
        session.save_snapshot(&snap).expect("snapshot");
        drop(session);
        for h in handles {
            let _ = h.join().expect("worker thread");
        }
    }

    // Second, completely fresh cluster: resume from the snapshot and run
    // the remaining two iterations — the full trajectory must equal the
    // uninterrupted run's, bit for bit.
    let (coordinator, connector) = Coordinator::in_proc(fast_cfg(2));
    let handles: Vec<WorkerHandle> = [1u64, 2]
        .into_iter()
        .map(|id| {
            let mut conn = connector.clone();
            std::thread::spawn(move || run_worker(&mut conn, &worker(id)))
        })
        .collect();
    let mut session = TrainSession::builder(net(), METHOD, T)
        .optimizer(Box::new(Sgd::new(0.5)))
        .cluster(coordinator)
        .build()
        .expect("valid method");
    session.resume_from(&snap).expect("resume");
    assert_eq!(session.iteration(), 3);
    let mut losses = first_losses;
    for _ in 0..2 {
        losses.push(session.train_batch(&inputs, &labels).loss.to_bits());
    }
    let trained = session.into_net();
    for h in handles {
        let _ = h.join().expect("worker thread");
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(losses, uninterrupted.losses, "resumed trajectory");
    for (p, w) in trained.params().iter().zip(&uninterrupted.weights) {
        assert!(
            p.value()
                .data()
                .iter()
                .zip(w)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "resumed weights differ from the uninterrupted run"
        );
    }
}
