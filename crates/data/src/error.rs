//! Typed errors for dataset file I/O.

use std::io;

/// Errors raised by the `skipper-data` crate's file paths.
#[derive(Debug)]
pub enum DataError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The bytes are not a valid event container: bad magic, truncation
    /// or an implausible/out-of-range field.
    Format(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Format(detail) => write!(f, "malformed event file: {detail}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Format(_) => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> DataError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DataError::Format("unexpected end of file (truncated?)".into())
        } else {
            DataError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_becomes_format_error() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(DataError::from(eof), DataError::Format(_)));
    }
}
