//! Deterministic shuffled batch iteration.

use skipper_tensor::XorShiftRng;

/// Yields shuffled index batches over a dataset of `len` samples.
///
/// The shuffle is a Fisher–Yates permutation seeded per epoch, so runs are
/// reproducible and every epoch sees a different order.
///
/// ```
/// use skipper_data::BatchIter;
/// let batches: Vec<Vec<usize>> = BatchIter::new(10, 4, 1).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// let mut all: Vec<usize> = batches.concat();
/// all.sort_unstable();
/// assert_eq!(all, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Batches of `batch_size` over `len` samples, shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> BatchIter {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..len).collect();
        let mut rng = XorShiftRng::new(seed.wrapping_add(0x5DEECE66D));
        for i in (1..len).rev() {
            let j = rng.next_below(i + 1);
            order.swap(i, j);
        }
        BatchIter {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Like [`BatchIter::new`] but drops the final partial batch (constant
    /// batch shapes, as the paper's timing sweeps require).
    pub fn new_drop_last(len: usize, batch_size: usize, seed: u64) -> BatchIter {
        let mut it = BatchIter::new(len, batch_size, seed);
        let full = len / batch_size * batch_size;
        it.order.truncate(full);
        it
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_once() {
        let mut seen: Vec<usize> = BatchIter::new(23, 5, 9).flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let a: Vec<usize> = BatchIter::new(50, 50, 1).flatten().collect();
        let b: Vec<usize> = BatchIter::new(50, 50, 2).flatten().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a: Vec<Vec<usize>> = BatchIter::new(17, 4, 3).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(17, 4, 3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn drop_last_keeps_only_full_batches() {
        let batches: Vec<Vec<usize>> = BatchIter::new_drop_last(10, 4, 1).collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        assert_eq!(BatchIter::new(0, 4, 1).count(), 0);
    }
}
