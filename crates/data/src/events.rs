//! DVS-style address-event datasets and binning.
//!
//! Event cameras report sparse asynchronous brightness changes as
//! `(x, y, p, t)` tuples. Two synthetic generators mimic the paper's
//! neuromorphic datasets:
//!
//! * **synthetic DVS-Gesture** ([`synth_dvs_gesture`], 11 classes): a bright
//!   object moves along a class-specific trajectory (direction, oscillation
//!   and speed encode the class, standing in for gesture kinematics);
//! * **synthetic N-MNIST** ([`synth_nmnist`], 10 classes): a static
//!   class-prototype pattern is swept through the three saccade motions the
//!   ATIS sensor performed over MNIST digits.
//!
//! Events are produced by a simulated DVS pixel: a change detector fires an
//! ON/OFF event whenever the log-intensity at a pixel moves by more than a
//! threshold since that pixel's last event. [`bin_events`] then integrates
//! events into `[2, H, W]` polarity spike frames, the format the paper's
//! SNNs consume.

use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::{Tensor, XorShiftRng};

/// One address event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
    /// `true` = ON (brightness increase).
    pub polarity: bool,
    /// Timestamp in microsteps `[0, duration)`.
    pub t: u32,
}

/// An event stream from one recording.
#[derive(Debug, Clone, Default)]
pub struct EventStream {
    /// Events ordered by timestamp.
    pub events: Vec<Event>,
    /// Sensor height = width.
    pub hw: usize,
    /// Length of the recording in microsteps.
    pub duration: u32,
}

/// A labelled set of event streams.
#[derive(Debug, Clone)]
pub struct EventDataset {
    streams: Vec<EventStream>,
    labels: Vec<usize>,
    num_classes: usize,
    hw: usize,
}

impl EventDataset {
    /// Assemble a dataset from raw parts (deserialization, custom
    /// ingestion).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or a label is out of range.
    pub fn from_parts(
        streams: Vec<EventStream>,
        labels: Vec<usize>,
        num_classes: usize,
        hw: usize,
    ) -> EventDataset {
        assert_eq!(streams.len(), labels.len(), "one label per stream");
        assert!(labels.iter().all(|&l| l < num_classes), "label in range");
        EventDataset {
            streams,
            labels,
            num_classes,
            hw,
        }
    }

    /// Number of recordings.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Sensor resolution.
    pub fn hw(&self) -> usize {
        self.hw
    }

    /// Recording `i` as `(stream, label)`.
    pub fn sample(&self, i: usize) -> (&EventStream, usize) {
        (&self.streams[i], self.labels[i])
    }
}

/// Configuration of the synthetic event generators.
#[derive(Debug, Clone)]
pub struct SynthEventConfig {
    /// Sensor height = width.
    pub hw: usize,
    /// Recordings per class (train split).
    pub train_per_class: usize,
    /// Recordings per class (test split).
    pub test_per_class: usize,
    /// Microsteps per recording.
    pub duration: u32,
    /// DVS change-detector threshold.
    pub threshold: f32,
    /// Background noise event rate per pixel per microstep.
    pub noise_rate: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SynthEventConfig {
    fn default() -> Self {
        SynthEventConfig {
            hw: 16,
            train_per_class: 24,
            test_per_class: 6,
            duration: 64,
            threshold: 0.15,
            noise_rate: 0.0005,
            seed: 11,
        }
    }
}

/// A frame renderer: intensity of pixel `(x, y)` at microstep `t`.
type Scene = Box<dyn Fn(usize, usize, u32) -> f32>;

/// Simulate a DVS sensor watching `scene`.
fn dvs_record(scene: &Scene, cfg: &SynthEventConfig, rng: &mut XorShiftRng) -> EventStream {
    let hw = cfg.hw;
    let mut last = vec![0.0f32; hw * hw];
    for y in 0..hw {
        for x in 0..hw {
            last[y * hw + x] = scene(x, y, 0);
        }
    }
    let mut events = Vec::new();
    for t in 1..cfg.duration {
        for y in 0..hw {
            for x in 0..hw {
                let v = scene(x, y, t);
                let r = &mut last[y * hw + x];
                let dv = v - *r;
                if dv.abs() >= cfg.threshold {
                    events.push(Event {
                        x: x as u16,
                        y: y as u16,
                        polarity: dv > 0.0,
                        t,
                    });
                    *r = v;
                }
                if rng.next_f32() < cfg.noise_rate {
                    events.push(Event {
                        x: x as u16,
                        y: y as u16,
                        polarity: rng.next_f32() < 0.5,
                        t,
                    });
                }
            }
        }
    }
    EventStream {
        events,
        hw,
        duration: cfg.duration,
    }
}

fn blob(cx: f32, cy: f32, sigma: f32, x: usize, y: usize) -> f32 {
    let dx = x as f32 - cx;
    let dy = y as f32 - cy;
    (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
}

/// Synthetic DVS-Gesture: 11 classes of object motion.
///
/// Class `k` selects a heading angle, an angular oscillation and a speed,
/// so every class has a distinct spatio-temporal event signature.
pub fn synth_dvs_gesture(cfg: &SynthEventConfig) -> (EventDataset, EventDataset) {
    synth_motion_dataset(cfg, 11, false)
}

/// Synthetic N-MNIST: 10 classes of static patterns under saccades.
pub fn synth_nmnist(cfg: &SynthEventConfig) -> (EventDataset, EventDataset) {
    synth_motion_dataset(cfg, 10, true)
}

fn synth_motion_dataset(
    cfg: &SynthEventConfig,
    num_classes: usize,
    saccade: bool,
) -> (EventDataset, EventDataset) {
    let make = |per_class: usize, salt: u64| {
        let mut streams = Vec::new();
        let mut labels = Vec::new();
        for class in 0..num_classes {
            let mut rng = XorShiftRng::new(
                cfg.seed ^ salt ^ ((class as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)),
            );
            for _ in 0..per_class {
                let scene = if saccade {
                    saccade_scene(cfg, class, num_classes, &mut rng)
                } else {
                    gesture_scene(cfg, class, num_classes, &mut rng)
                };
                streams.push(dvs_record(&scene, cfg, &mut rng));
                labels.push(class);
            }
        }
        EventDataset {
            streams,
            labels,
            num_classes,
            hw: cfg.hw,
        }
    };
    (
        make(cfg.train_per_class, 0x1111),
        make(cfg.test_per_class, 0x8888),
    )
}

/// Moving-blob scene whose kinematics encode the class.
///
/// The blob oscillates along a class-specific axis through the image
/// centre, with a class-specific temporal frequency — the event histogram
/// of each class concentrates along a distinct line, and the event *timing*
/// differs too, so both spatial and temporal features are informative (as
/// with real gestures).
fn gesture_scene(
    cfg: &SynthEventConfig,
    class: usize,
    num_classes: usize,
    rng: &mut XorShiftRng,
) -> Scene {
    let hw = cfg.hw as f32;
    let angle = class as f32 / num_classes as f32 * std::f32::consts::PI;
    let cycles = 1.0 + (class % 3) as f32; // oscillation frequency
    let amp = hw * (0.22 + 0.08 * ((class / 3) % 2) as f32);
    let phase = rng.next_f32() * 0.6; // small start-phase jitter
    let (jx, jy) = (rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0);
    let sigma = hw * 0.12;
    let duration = cfg.duration as f32;
    Box::new(move |x, y, t| {
        let tf = t as f32 / duration * std::f32::consts::TAU;
        let s = (cycles * tf + phase).sin();
        let cx = hw * 0.5 + jx + amp * s * angle.cos();
        let cy = hw * 0.5 + jy + amp * s * angle.sin();
        blob(cx, cy, sigma, x, y)
    })
}

/// Static class pattern swept by three saccades (N-MNIST style).
fn saccade_scene(
    cfg: &SynthEventConfig,
    class: usize,
    num_classes: usize,
    rng: &mut XorShiftRng,
) -> Scene {
    let hw = cfg.hw;
    // Class pattern: two blobs at class-specific locations.
    let a = class as f32 / num_classes as f32 * std::f32::consts::TAU;
    let (c1x, c1y) = (
        hw as f32 * (0.5 + 0.25 * a.cos()),
        hw as f32 * (0.5 + 0.25 * a.sin()),
    );
    let (c2x, c2y) = (
        hw as f32 * (0.5 - 0.2 * (a * 2.0).cos()),
        hw as f32 * (0.5 - 0.2 * (a * 2.0).sin()),
    );
    let sigma = hw as f32 * 0.1;
    let jx = rng.next_f32() * 2.0 - 1.0;
    let jy = rng.next_f32() * 2.0 - 1.0;
    let third = cfg.duration / 3;
    let amp = hw as f32 * 0.12;
    Box::new(move |x, y, t| {
        // Saccades: right-down, left-down, up (like the ATIS recording).
        let seg = (t / third.max(1)).min(2);
        let f = (t % third.max(1)) as f32 / third.max(1) as f32;
        let (ox, oy) = match seg {
            0 => (amp * f, amp * f * 0.5),
            1 => (amp * (1.0 - f), amp * (0.5 + f * 0.5)),
            _ => (0.0, amp * (1.0 - f)),
        };
        let px = x as f32 - ox - jx;
        let py = y as f32 - oy - jy;
        blob(c1x, c1y, sigma, px as usize % hw, py.max(0.0) as usize % hw).max(blob(
            c2x,
            c2y,
            sigma,
            px.max(0.0) as usize % hw,
            py.max(0.0) as usize % hw,
        ))
    })
}

/// Integrate one stream into `timesteps` polarity frames `[2, H, W]`
/// (element = spike if ≥1 event of that polarity fell in the bin).
pub fn bin_events(stream: &EventStream, timesteps: usize) -> Vec<Tensor> {
    let _cat = CategoryGuard::new(Category::Input);
    let hw = stream.hw;
    let mut frames = vec![vec![0.0f32; 2 * hw * hw]; timesteps];
    let scale = timesteps as f64 / stream.duration.max(1) as f64;
    for e in &stream.events {
        let bin = ((e.t as f64 * scale) as usize).min(timesteps - 1);
        let pol = usize::from(e.polarity);
        frames[bin][(pol * hw + e.y as usize) * hw + e.x as usize] = 1.0;
    }
    frames
        .into_iter()
        .map(|f| Tensor::from_vec(f, [2, hw, hw]))
        .collect()
}

/// Bin a batch of streams into `timesteps` tensors of shape `[B,2,H,W]`.
pub fn event_batch(
    dataset: &EventDataset,
    indices: &[usize],
    timesteps: usize,
) -> (Vec<Tensor>, Vec<usize>) {
    let _cat = CategoryGuard::new(Category::Input);
    let hw = dataset.hw();
    let b = indices.len();
    let per = 2 * hw * hw;
    let mut frames = vec![vec![0.0f32; b * per]; timesteps];
    let mut labels = Vec::with_capacity(b);
    for (bi, &i) in indices.iter().enumerate() {
        let (stream, label) = dataset.sample(i);
        labels.push(label);
        let scale = timesteps as f64 / stream.duration.max(1) as f64;
        for e in &stream.events {
            let bin = ((e.t as f64 * scale) as usize).min(timesteps - 1);
            let pol = usize::from(e.polarity);
            frames[bin][bi * per + (pol * hw + e.y as usize) * hw + e.x as usize] = 1.0;
        }
    }
    (
        frames
            .into_iter()
            .map(|f| Tensor::from_vec(f, [b, 2, hw, hw]))
            .collect(),
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gesture_dataset_shape_and_determinism() {
        let cfg = SynthEventConfig {
            train_per_class: 2,
            test_per_class: 1,
            ..SynthEventConfig::default()
        };
        let (train, test) = synth_dvs_gesture(&cfg);
        assert_eq!(train.len(), 22);
        assert_eq!(test.len(), 11);
        assert_eq!(train.num_classes(), 11);
        let (again, _) = synth_dvs_gesture(&cfg);
        assert_eq!(train.sample(5).0.events, again.sample(5).0.events);
    }

    #[test]
    fn streams_contain_sorted_in_range_events() {
        let cfg = SynthEventConfig {
            train_per_class: 1,
            test_per_class: 1,
            ..SynthEventConfig::default()
        };
        let (train, _) = synth_dvs_gesture(&cfg);
        for i in 0..train.len() {
            let (s, _) = train.sample(i);
            assert!(!s.events.is_empty(), "moving object must emit events");
            let mut prev = 0;
            for e in &s.events {
                assert!(e.t >= prev && e.t < s.duration);
                assert!((e.x as usize) < s.hw && (e.y as usize) < s.hw);
                prev = e.t;
            }
        }
    }

    #[test]
    fn nmnist_has_ten_classes_and_events() {
        let cfg = SynthEventConfig {
            train_per_class: 1,
            test_per_class: 1,
            ..SynthEventConfig::default()
        };
        let (train, _) = synth_nmnist(&cfg);
        assert_eq!(train.num_classes(), 10);
        assert!(train.sample(0).0.events.len() > 5);
    }

    #[test]
    fn binning_is_binary_and_preserves_activity() {
        let cfg = SynthEventConfig::default();
        let (train, _) = synth_dvs_gesture(&SynthEventConfig {
            train_per_class: 1,
            test_per_class: 1,
            ..cfg
        });
        let (stream, _) = train.sample(0);
        let frames = bin_events(stream, 8);
        assert_eq!(frames.len(), 8);
        let total: f64 = frames.iter().map(|f| f.sum()).sum();
        assert!(total > 0.0);
        for f in &frames {
            assert_eq!(f.shape().dims(), &[2, 16, 16]);
            assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn event_batch_matches_individual_binning() {
        let cfg = SynthEventConfig {
            train_per_class: 2,
            test_per_class: 1,
            ..SynthEventConfig::default()
        };
        let (train, _) = synth_dvs_gesture(&cfg);
        let (batched, labels) = event_batch(&train, &[0, 3], 6);
        assert_eq!(batched.len(), 6);
        assert_eq!(batched[0].shape().dims(), &[2, 2, 16, 16]);
        assert_eq!(labels, vec![0, 1]);
        let solo = bin_events(train.sample(3).0, 6);
        for t in 0..6 {
            let per = 2 * 16 * 16;
            assert_eq!(&batched[t].data()[per..], solo[t].data());
        }
    }

    #[test]
    fn classes_have_distinct_event_signatures() {
        // Spatial event histograms concentrate along a class-specific axis,
        // so intra-class histogram distance must undercut inter-class.
        let cfg = SynthEventConfig {
            train_per_class: 3,
            test_per_class: 1,
            noise_rate: 0.0,
            ..SynthEventConfig::default()
        };
        let (train, _) = synth_dvs_gesture(&cfg);
        let hist = |i: usize| -> Vec<f64> {
            let (s, _) = train.sample(i);
            let mut h = vec![0.0f64; s.hw * s.hw];
            for e in &s.events {
                h[e.y as usize * s.hw + e.x as usize] += 1.0;
            }
            let norm: f64 = h.iter().map(|v| v * v).sum::<f64>().sqrt();
            h.iter().map(|v| v / norm.max(1e-12)).collect()
        };
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum() };
        let (mut intra, mut inter, mut ni, mut nx) = (0.0, 0.0, 0, 0);
        for i in 0..train.len() {
            for j in (i + 1)..train.len() {
                let d = dist(&hist(i), &hist(j));
                if train.sample(i).1 == train.sample(j).1 {
                    intra += d;
                    ni += 1;
                } else {
                    inter += d;
                    nx += 1;
                }
            }
        }
        let (intra, inter) = (intra / ni as f64, inter / nx as f64);
        assert!(
            intra * 1.5 < inter,
            "histograms not separable: intra {intra} vs inter {inter}"
        );
    }
}
