//! Synthetic frame datasets ("synthetic CIFAR-10/100").
//!
//! Each class gets a smooth random prototype built from a handful of 2-D
//! sinusoids; a sample is its class prototype with a random sub-pixel
//! amplitude, a spatial shift and pixel noise, clamped to `[0, 1]` so it
//! can be Poisson rate-encoded exactly like the paper encodes CIFAR.

use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::{Tensor, XorShiftRng};

/// Configuration of a synthetic image dataset.
#[derive(Debug, Clone)]
pub struct SynthImageConfig {
    /// Image height = width.
    pub hw: usize,
    /// Channels (3 ≈ CIFAR).
    pub channels: usize,
    /// Number of classes (10 ≈ CIFAR-10, 100 ≈ CIFAR-100).
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Pixel noise amplitude.
    pub noise: f32,
    /// Maximum spatial shift in pixels.
    pub max_shift: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SynthImageConfig {
    fn default() -> Self {
        SynthImageConfig {
            hw: 16,
            channels: 3,
            num_classes: 10,
            train_per_class: 32,
            test_per_class: 8,
            noise: 0.08,
            max_shift: 1,
            seed: 7,
        }
    }
}

/// A labelled set of frames.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl ImageDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Sample `i` as `(image [C,H,W], label)`.
    pub fn sample(&self, i: usize) -> (&Tensor, usize) {
        (&self.images[i], self.labels[i])
    }

    /// Stack samples `indices` into a `[B,C,H,W]` batch (+ labels).
    ///
    /// The batch tensor is booked under [`Category::Input`].
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let _cat = CategoryGuard::new(Category::Input);
        let (c, h, w) = {
            let s = self.images[indices[0]].shape();
            (s[0], s[1], s[2])
        };
        let per = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.images[i].data());
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(data, [indices.len(), c, h, w]), labels)
    }
}

fn prototype(cfg: &SynthImageConfig, rng: &mut XorShiftRng) -> Vec<f32> {
    let hw = cfg.hw;
    let mut img = vec![0.0f32; cfg.channels * hw * hw];
    for c in 0..cfg.channels {
        // 3 random sinusoid components per channel.
        let comps: Vec<(f32, f32, f32, f32)> = (0..3)
            .map(|_| {
                (
                    rng.next_f32() * 1.5 + 0.5,             // fx
                    rng.next_f32() * 1.5 + 0.5,             // fy
                    rng.next_f32() * std::f32::consts::TAU, // phase
                    rng.next_f32() * 0.5 + 0.2,             // amp
                )
            })
            .collect();
        for y in 0..hw {
            for x in 0..hw {
                let mut v = 0.5f32;
                for &(fx, fy, ph, amp) in &comps {
                    let arg = (x as f32 / hw as f32) * fx * std::f32::consts::TAU
                        + (y as f32 / hw as f32) * fy * std::f32::consts::TAU
                        + ph;
                    v += amp * arg.sin() * 0.5;
                }
                img[(c * hw + y) * hw + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    img
}

fn jittered(proto: &[f32], cfg: &SynthImageConfig, rng: &mut XorShiftRng) -> Tensor {
    let hw = cfg.hw;
    let shift = cfg.max_shift as isize;
    let dx = if shift > 0 {
        rng.next_below((2 * shift + 1) as usize) as isize - shift
    } else {
        0
    };
    let dy = if shift > 0 {
        rng.next_below((2 * shift + 1) as usize) as isize - shift
    } else {
        0
    };
    let amp = 0.9 + 0.2 * rng.next_f32();
    let mut data = vec![0.0f32; proto.len()];
    for c in 0..cfg.channels {
        for y in 0..hw {
            for x in 0..hw {
                let sy = (y as isize + dy).rem_euclid(hw as isize) as usize;
                let sx = (x as isize + dx).rem_euclid(hw as isize) as usize;
                let v =
                    proto[(c * hw + sy) * hw + sx] * amp + cfg.noise * (rng.next_f32() - 0.5) * 2.0;
                data[(c * hw + y) * hw + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(data, [cfg.channels, cfg.hw, cfg.hw])
}

/// Generate a `(train, test)` pair of synthetic image datasets.
///
/// Train and test samples share class prototypes but use disjoint
/// jitter/noise streams, so generalisation is meaningful.
pub fn synth_cifar(cfg: &SynthImageConfig) -> (ImageDataset, ImageDataset) {
    let mut proto_rng = XorShiftRng::new(cfg.seed);
    let protos: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|_| prototype(cfg, &mut proto_rng))
        .collect();
    let make = |per_class: usize, salt: u64| {
        let mut images = Vec::with_capacity(per_class * cfg.num_classes);
        let mut labels = Vec::with_capacity(per_class * cfg.num_classes);
        for (class, proto) in protos.iter().enumerate() {
            let mut rng = XorShiftRng::new(
                cfg.seed ^ salt ^ ((class as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            for _ in 0..per_class {
                images.push(jittered(proto, cfg, &mut rng));
                labels.push(class);
            }
        }
        ImageDataset {
            images,
            labels,
            num_classes: cfg.num_classes,
        }
    };
    (
        make(cfg.train_per_class, 0xAAAA),
        make(cfg.test_per_class, 0x5555),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_labels() {
        let cfg = SynthImageConfig {
            num_classes: 4,
            train_per_class: 5,
            test_per_class: 2,
            ..SynthImageConfig::default()
        };
        let (train, test) = synth_cifar(&cfg);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 8);
        assert_eq!(train.num_classes(), 4);
        let (img, label) = train.sample(6);
        assert_eq!(img.shape().dims(), &[3, 16, 16]);
        assert_eq!(label, 1);
    }

    #[test]
    fn pixels_in_unit_range() {
        let (train, _) = synth_cifar(&SynthImageConfig::default());
        for i in 0..train.len() {
            let (img, _) = train.sample(i);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Same-class samples must be closer to each other than to other
        // classes on average — the property that makes accuracy meaningful.
        let cfg = SynthImageConfig {
            num_classes: 3,
            train_per_class: 6,
            ..SynthImageConfig::default()
        };
        let (train, _) = synth_cifar(&cfg);
        let dist = |a: &Tensor, b: &Tensor| -> f64 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(&x, &y)| ((x - y) as f64).powi(2))
                .sum()
        };
        let (mut intra, mut inter, mut ni, mut nx) = (0.0, 0.0, 0, 0);
        for i in 0..train.len() {
            for j in (i + 1)..train.len() {
                let d = dist(train.sample(i).0, train.sample(j).0);
                if train.sample(i).1 == train.sample(j).1 {
                    intra += d;
                    ni += 1;
                } else {
                    inter += d;
                    nx += 1;
                }
            }
        }
        assert!(intra / ni as f64 * 1.5 < inter / nx as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthImageConfig::default();
        let (a, _) = synth_cifar(&cfg);
        let (b, _) = synth_cifar(&cfg);
        assert_eq!(a.sample(3).0.data(), b.sample(3).0.data());
    }

    #[test]
    fn train_and_test_differ() {
        let (train, test) = synth_cifar(&SynthImageConfig::default());
        assert_ne!(train.sample(0).0.data(), test.sample(0).0.data());
    }

    #[test]
    fn batch_stacks_and_books_input() {
        use skipper_memprof as mp;
        let (train, _) = synth_cifar(&SynthImageConfig::default());
        mp::reset_all();
        let (batch, labels) = train.batch(&[0, 10, 20]);
        assert_eq!(batch.shape().dims(), &[3, 3, 16, 16]);
        assert_eq!(labels.len(), 3);
        assert_eq!(mp::snapshot().live(mp::Category::Input), batch.byte_size());
    }
}
