//! Training-time data augmentation.
//!
//! Standard CIFAR-style augmentation for frames (shift-with-padding and
//! horizontal flip) and event-native augmentation for DVS streams
//! (temporal jitter, event dropout, horizontal flip) — the usual recipe
//! for from-scratch SNN training on small datasets.

use crate::events::{Event, EventStream};
use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::{Tensor, XorShiftRng};

/// Frame augmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageAugment {
    /// Maximum shift in pixels (padded with zeros).
    pub max_shift: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
}

impl Default for ImageAugment {
    fn default() -> Self {
        ImageAugment {
            max_shift: 2,
            flip_prob: 0.5,
        }
    }
}

impl ImageAugment {
    /// Augment a `[B,C,H,W]` batch (each sample independently).
    pub fn apply(&self, batch: &Tensor, rng: &mut XorShiftRng) -> Tensor {
        let _cat = CategoryGuard::new(Category::Input);
        let (b, c, h, w) = batch.shape().as_4d();
        let src = batch.data();
        let mut out = vec![0.0f32; src.len()];
        for bi in 0..b {
            let (dx, dy) = if self.max_shift > 0 {
                let span = 2 * self.max_shift + 1;
                (
                    rng.next_below(span) as isize - self.max_shift as isize,
                    rng.next_below(span) as isize - self.max_shift as isize,
                )
            } else {
                (0, 0)
            };
            let flip = rng.next_f32() < self.flip_prob;
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                for y in 0..h {
                    let sy = y as isize + dy;
                    if sy < 0 || sy >= h as isize {
                        continue; // zero padding
                    }
                    for x in 0..w {
                        let sx0 = if flip { w - 1 - x } else { x };
                        let sx = sx0 as isize + dx;
                        if sx < 0 || sx >= w as isize {
                            continue;
                        }
                        out[plane + y * w + x] = src[plane + sy as usize * w + sx as usize];
                    }
                }
            }
        }
        Tensor::from_vec(out, batch.shape().clone())
    }
}

/// Event-stream augmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventAugment {
    /// Maximum absolute temporal jitter per event, in microsteps.
    pub time_jitter: u32,
    /// Probability of dropping each event.
    pub drop_prob: f32,
    /// Probability of mirroring the stream horizontally.
    pub flip_prob: f32,
}

impl Default for EventAugment {
    fn default() -> Self {
        EventAugment {
            time_jitter: 2,
            drop_prob: 0.05,
            flip_prob: 0.5,
        }
    }
}

impl EventAugment {
    /// Augment one stream (events stay sorted by timestamp).
    pub fn apply(&self, stream: &EventStream, rng: &mut XorShiftRng) -> EventStream {
        let flip = rng.next_f32() < self.flip_prob;
        let hw = stream.hw as u16;
        let mut events: Vec<Event> = Vec::with_capacity(stream.events.len());
        for e in &stream.events {
            if rng.next_f32() < self.drop_prob {
                continue;
            }
            let jitter = if self.time_jitter > 0 {
                rng.next_below((2 * self.time_jitter + 1) as usize) as i64 - self.time_jitter as i64
            } else {
                0
            };
            let t = (e.t as i64 + jitter).clamp(0, stream.duration.saturating_sub(1) as i64) as u32;
            events.push(Event {
                x: if flip { hw - 1 - e.x } else { e.x },
                y: e.y,
                polarity: e.polarity,
                t,
            });
        }
        events.sort_by_key(|e| e.t);
        EventStream {
            events,
            hw: stream.hw,
            duration: stream.duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard() -> Tensor {
        Tensor::from_fn([1, 1, 4, 4], |i| ((i / 4 + i % 4) % 2) as f32)
    }

    #[test]
    fn zero_config_is_identity() {
        let aug = ImageAugment {
            max_shift: 0,
            flip_prob: 0.0,
        };
        let img = checkerboard();
        let mut rng = XorShiftRng::new(1);
        assert_eq!(aug.apply(&img, &mut rng).data(), img.data());
    }

    #[test]
    fn shift_pads_with_zeros_and_preserves_mass_bound() {
        let aug = ImageAugment {
            max_shift: 2,
            flip_prob: 0.0,
        };
        let img = Tensor::ones([2, 1, 4, 4]);
        let mut rng = XorShiftRng::new(2);
        for _ in 0..10 {
            let out = aug.apply(&img, &mut rng);
            assert!(out.sum() <= img.sum() + 1e-6, "shifting cannot add mass");
            assert!(out.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn flip_reverses_rows() {
        let aug = ImageAugment {
            max_shift: 0,
            flip_prob: 1.0,
        };
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 1, 4]);
        let mut rng = XorShiftRng::new(3);
        let out = aug.apply(&img, &mut rng);
        assert_eq!(out.data(), &[4.0, 3.0, 2.0, 1.0]);
    }

    fn tiny_stream() -> EventStream {
        EventStream {
            events: vec![
                Event {
                    x: 0,
                    y: 1,
                    polarity: true,
                    t: 5,
                },
                Event {
                    x: 3,
                    y: 2,
                    polarity: false,
                    t: 9,
                },
            ],
            hw: 4,
            duration: 16,
        }
    }

    #[test]
    fn event_augment_preserves_bounds_and_order() {
        let aug = EventAugment::default();
        let mut rng = XorShiftRng::new(4);
        for _ in 0..20 {
            let out = aug.apply(&tiny_stream(), &mut rng);
            let mut prev = 0u32;
            for e in &out.events {
                assert!(e.t < out.duration);
                assert!((e.x as usize) < out.hw && (e.y as usize) < out.hw);
                assert!(e.t >= prev);
                prev = e.t;
            }
        }
    }

    #[test]
    fn event_flip_mirrors_x() {
        let aug = EventAugment {
            time_jitter: 0,
            drop_prob: 0.0,
            flip_prob: 1.0,
        };
        let mut rng = XorShiftRng::new(5);
        let out = aug.apply(&tiny_stream(), &mut rng);
        assert_eq!(out.events[0].x, 3); // 4-1-0
        assert_eq!(out.events[1].x, 0); // 4-1-3
    }

    #[test]
    fn drop_prob_one_removes_everything() {
        let aug = EventAugment {
            time_jitter: 0,
            drop_prob: 1.0,
            flip_prob: 0.0,
        };
        let mut rng = XorShiftRng::new(6);
        assert!(aug.apply(&tiny_stream(), &mut rng).events.is_empty());
    }
}
