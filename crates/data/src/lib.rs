//! Synthetic stand-ins for the paper's datasets.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100 (frame-based, Poisson
//! rate-coded), DVS-Gesture and N-MNIST (event-based, recorded with
//! neuromorphic vision sensors). Those datasets are not available in this
//! environment, so this crate generates **label-consistent synthetic
//! equivalents** that exercise the identical code paths (see `DESIGN.md`
//! for the substitution argument):
//!
//! * [`images`] — class-prototype image generators ("synthetic CIFAR"):
//!   each class is a smooth random pattern; samples add jitter, shift and
//!   noise. Learnable by the paper's topologies within a few epochs.
//! * [`events`] — DVS-style address-event streams `(x, y, p, t)`:
//!   class-coded moving objects for *synthetic DVS-Gesture* and
//!   saccade-style motion over static patterns for *synthetic N-MNIST*,
//!   plus the binning that turns event streams into `[2,H,W]` spike frames.
//! * [`loader`] — deterministic shuffling batch iteration.

pub mod augment;
pub mod error;
pub mod events;
pub mod images;
pub mod io;
pub mod loader;

pub use augment::{EventAugment, ImageAugment};
pub use error::DataError;
pub use events::{
    bin_events, event_batch, synth_dvs_gesture, synth_nmnist, Event, EventDataset, EventStream,
    SynthEventConfig,
};
pub use images::{synth_cifar, ImageDataset, SynthImageConfig};
pub use io::{load_events, read_events, save_events, write_events};
pub use loader::BatchIter;
