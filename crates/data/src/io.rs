//! Event-dataset file I/O.
//!
//! A compact binary container for labelled event streams, in the spirit of
//! the AEDAT files that DVS cameras record: a magic header, per-recording
//! metadata (label, resolution, duration) and packed 8-byte events
//! `(x: u16, y: u16, polarity+reserved: u16, t packed into the low 16 bits
//! of a u16 pair)`. Lets synthetic datasets be generated once and shared,
//! and gives downstream users an ingestion path for their own recordings.

use crate::error::DataError;
use crate::events::{Event, EventDataset, EventStream};
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "SKEVT" + version 1.
const MAGIC: &[u8; 6] = b"SKEVT\x01";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Serialize `dataset` to `writer`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_events(dataset: &EventDataset, writer: &mut impl Write) -> Result<(), DataError> {
    writer.write_all(MAGIC)?;
    write_u32(writer, dataset.len() as u32)?;
    write_u32(writer, dataset.num_classes() as u32)?;
    write_u32(writer, dataset.hw() as u32)?;
    for i in 0..dataset.len() {
        let (stream, label) = dataset.sample(i);
        write_u32(writer, label as u32)?;
        write_u32(writer, stream.duration)?;
        write_u32(writer, stream.events.len() as u32)?;
        for e in &stream.events {
            write_u16(writer, e.x)?;
            write_u16(writer, e.y)?;
            write_u16(writer, u16::from(e.polarity))?;
            // t as u32 split little-endian across two u16 writes.
            write_u16(writer, (e.t & 0xFFFF) as u16)?;
            write_u16(writer, (e.t >> 16) as u16)?;
        }
    }
    Ok(())
}

/// Deserialize a dataset from `reader`.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic header, or malformed records.
pub fn read_events(reader: &mut impl Read) -> Result<EventDataset, DataError> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DataError::Format(
            "not a skipper event file (bad magic)".into(),
        ));
    }
    let count = read_u32(reader)? as usize;
    let num_classes = read_u32(reader)? as usize;
    let hw = read_u32(reader)? as usize;
    if num_classes == 0 || hw == 0 || hw > 4096 || count > 1 << 24 {
        return Err(DataError::Format("implausible event-file header".into()));
    }
    let mut streams = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        let label = read_u32(reader)? as usize;
        if label >= num_classes {
            return Err(DataError::Format(format!(
                "label {label} out of range for {num_classes} classes"
            )));
        }
        let duration = read_u32(reader)?;
        let n_events = read_u32(reader)? as usize;
        if n_events > 1 << 26 {
            return Err(DataError::Format("implausible event count".into()));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let x = read_u16(reader)?;
            let y = read_u16(reader)?;
            let polarity = read_u16(reader)? != 0;
            let lo = read_u16(reader)? as u32;
            let hi = read_u16(reader)? as u32;
            let t = lo | (hi << 16);
            if (x as usize) >= hw || (y as usize) >= hw || t >= duration.max(1) {
                return Err(DataError::Format(
                    "event outside sensor/duration bounds".into(),
                ));
            }
            events.push(Event { x, y, polarity, t });
        }
        streams.push(EventStream {
            events,
            hw,
            duration,
        });
        labels.push(label);
    }
    Ok(EventDataset::from_parts(streams, labels, num_classes, hw))
}

/// Save a dataset to the file at `path`.
///
/// The write is atomic (temporary sibling file + rename), so an
/// interrupted save never leaves a half-written dataset behind.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_events(dataset: &EventDataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "events".into());
    tmp_name.push_str(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
    write_events(dataset, &mut f)?;
    f.flush()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a dataset from the file at `path`.
///
/// # Errors
///
/// See [`read_events`].
pub fn load_events(path: impl AsRef<Path>) -> Result<EventDataset, DataError> {
    read_events(&mut io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{synth_dvs_gesture, SynthEventConfig};

    fn tiny() -> EventDataset {
        synth_dvs_gesture(&SynthEventConfig {
            train_per_class: 1,
            test_per_class: 1,
            ..SynthEventConfig::default()
        })
        .0
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = tiny();
        let mut buf = Vec::new();
        write_events(&ds, &mut buf).unwrap();
        let back = read_events(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.num_classes(), ds.num_classes());
        assert_eq!(back.hw(), ds.hw());
        for i in 0..ds.len() {
            let (a, la) = ds.sample(i);
            let (b, lb) = back.sample(i);
            assert_eq!(la, lb);
            assert_eq!(a.duration, b.duration);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("skipper_events_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.skevt");
        let ds = tiny();
        save_events(&ds, &path).unwrap();
        let back = load_events(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_events(&mut &b"NOPE!!rest"[..]).unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let ds = tiny();
        let mut buf = Vec::new();
        write_events(&ds, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_events(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_label_rejected() {
        let ds = tiny();
        let mut buf = Vec::new();
        write_events(&ds, &mut buf).unwrap();
        // The first label lives right after the 18-byte header.
        buf[18] = 0xFF;
        let err = read_events(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
