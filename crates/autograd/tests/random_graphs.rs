//! Property tests: tape gradients agree with finite differences on
//! randomly composed graphs of smooth ops.

use proptest::prelude::*;
use skipper_autograd::{gradcheck::gradcheck, Graph, Var};
use skipper_tensor::{Tensor, XorShiftRng};

/// One randomly chosen smooth op applied to the running value (and
/// sometimes a second input).
#[derive(Debug, Clone, Copy)]
enum RandomOp {
    Scale(i8),
    AddInput,
    MulInput,
    AddScaled(i8),
}

fn apply(op: RandomOp, g: &mut Graph, cur: Var, other: Var) -> Var {
    match op {
        RandomOp::Scale(s) => g.scale(cur, s as f32 / 3.0 + 0.1),
        RandomOp::AddInput => g.add(cur, other),
        RandomOp::MulInput => g.mul(cur, other),
        RandomOp::AddScaled(s) => g.add_scaled(cur, other, s as f32 / 4.0),
    }
}

fn op_strategy() -> impl Strategy<Value = RandomOp> {
    prop_oneof![
        (-6i8..6).prop_map(RandomOp::Scale),
        Just(RandomOp::AddInput),
        Just(RandomOp::MulInput),
        (-6i8..6).prop_map(RandomOp::AddScaled),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Chains of random elementwise ops gradcheck against central
    /// differences.
    #[test]
    fn random_elementwise_chains_gradcheck(
        ops in prop::collection::vec(op_strategy(), 1..6),
        seed in 0u64..10_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let x = Tensor::randn([4], &mut rng);
        let y = Tensor::randn([4], &mut rng);
        let result = gradcheck(
            &[x, y],
            |g, v| {
                let mut cur = v[0];
                for &op in &ops {
                    cur = apply(op, g, cur, v[1]);
                }
                cur
            },
            1e-3,
            5e-2,
        );
        prop_assert!(result.is_ok(), "{:?} with ops {ops:?}", result.err());
    }

    /// Linear layers inside arbitrary smooth chains gradcheck too.
    #[test]
    fn linear_in_chain_gradchecks(
        pre_scale in -3.0f32..3.0,
        post_scale in -3.0f32..3.0,
        seed in 0u64..10_000,
    ) {
        prop_assume!(pre_scale.abs() > 0.05 && post_scale.abs() > 0.05);
        let mut rng = XorShiftRng::new(seed);
        let x = Tensor::randn([2, 3], &mut rng);
        let w = Tensor::randn([4, 3], &mut rng);
        let b = Tensor::randn([4], &mut rng);
        let result = gradcheck(
            &[x, w, b],
            |g, v| {
                let s = g.scale(v[0], pre_scale);
                let lin = g.linear(s, v[1], Some(v[2]));
                g.scale(lin, post_scale)
            },
            1e-2,
            5e-2,
        );
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }

    /// Seeding a gradient twice accumulates exactly (linearity of the
    /// backward pass).
    #[test]
    fn backward_is_linear_in_seeds(seed in 0u64..10_000, s in 0.1f32..4.0) {
        let mut rng = XorShiftRng::new(seed);
        let value = Tensor::randn([5], &mut rng);

        let grad_with_seed = |scale: f32| -> Tensor {
            let mut g = Graph::new();
            let x = g.leaf(value.clone(), true);
            let y = g.scale(x, 2.5);
            let z = g.mul(y, y);
            g.seed_grad(z, Tensor::full([5], scale));
            g.backward();
            g.grad(x).unwrap().clone()
        };
        let g1 = grad_with_seed(1.0);
        let gs = grad_with_seed(s);
        prop_assert!(gs.allclose(&g1.scale(s), 1e-3 * (1.0 + s)));
    }

    /// Pruned subgraphs (requires_grad = false) never receive gradients,
    /// whatever the graph shape.
    #[test]
    fn no_grad_leaves_stay_clean(seed in 0u64..10_000) {
        let mut rng = XorShiftRng::new(seed);
        let mut g = Graph::new();
        let frozen = g.leaf(Tensor::randn([3], &mut rng), false);
        let live = g.leaf(Tensor::randn([3], &mut rng), true);
        let a = g.mul(frozen, live);
        let b = g.add(a, frozen);
        g.seed_grad(b, Tensor::ones([3]));
        g.backward();
        prop_assert!(g.grad(frozen).is_none());
        prop_assert!(g.grad(live).is_some());
    }
}
