//! Define-by-run reverse-mode automatic differentiation for SNN-BPTT.
//!
//! This crate stands in for the slice of PyTorch autograd that the Skipper
//! paper (MICRO 2022) builds on. The central type is [`Graph`], an arena
//! tape: every forward op appends a node holding its output tensor (the
//! "stored activation") and, on [`Graph::backward`], gradients flow through
//! the nodes in reverse creation order.
//!
//! Three properties matter for reproducing the paper:
//!
//! 1. **Activations live exactly as long as the graph.** Node values are
//!    the saved activations; dropping the `Graph` frees them, so the memory
//!    tracker sees precisely what a framework's autograd would allocate and
//!    release. Baseline BPTT keeps one graph for all `T` timesteps;
//!    checkpointed training builds and drops one small graph per time
//!    segment.
//! 2. **Seed-gradient injection.** [`Graph::seed_grad`] accumulates an
//!    external gradient into any node, which is how a later time segment
//!    hands `∂L/∂U`, `∂L/∂o` across a checkpoint boundary, and how the
//!    analytically computed loss gradient enters at the readout.
//! 3. **Surrogate spike gradients.** [`Graph::spike`] implements the
//!    non-differentiable Heaviside firing function with a
//!    [`Surrogate`] derivative on the backward pass (Neftci et al. 2019),
//!    and the membrane reset uses the *detached* previous spikes, matching
//!    the paper's "the reset term is not taken into account for the
//!    gradient computation".
//!
//! # Example
//!
//! ```
//! use skipper_autograd::Graph;
//! use skipper_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2.0], [1]), true);
//! let y = g.scale(x, 3.0); // y = 3x
//! let z = g.mul(y, y); // z = 9x²; dz/dx = 18x = 36
//! g.seed_grad(z, Tensor::ones([1]));
//! g.backward();
//! assert_eq!(g.grad(x).unwrap().data(), &[36.0]);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod surrogate;

pub use graph::{Graph, Var};
pub use surrogate::Surrogate;
