//! Surrogate derivatives for the Heaviside spike function.
//!
//! The firing non-linearity `o = H(U − θ)` has a zero-almost-everywhere
//! derivative, so BPTT substitutes a smooth *surrogate* σ′(U − θ) on the
//! backward pass (the paper's Eq. 2, following Neftci et al., "Surrogate
//! gradient learning in spiking neural networks", 2019). The forward pass
//! stays binary; only gradients are smoothed.

use std::fmt;

/// A surrogate gradient family for `H(x)` around `x = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surrogate {
    /// Triangular (piecewise-linear) window:
    /// `σ′(x) = max(0, 1 − |x|/width) / width`.
    Triangle {
        /// Half-width of the support.
        width: f32,
    },
    /// Fast sigmoid: `σ′(x) = 1 / (1 + slope·|x|)²`.
    FastSigmoid {
        /// Sharpness of the pseudo-derivative.
        slope: f32,
    },
    /// Arc-tangent: `σ′(x) = alpha / (2(1 + (π/2·alpha·x)²))`.
    ArcTan {
        /// Sharpness parameter.
        alpha: f32,
    },
}

impl Surrogate {
    /// The default used across the paper's experiments: a unit-width
    /// triangle (equivalent to the "linear" surrogate of Bellec et al.).
    pub fn default_triangle() -> Surrogate {
        Surrogate::Triangle { width: 1.0 }
    }

    /// The surrogate derivative evaluated at `x = U − θ`.
    #[inline]
    pub fn derivative(&self, x: f32) -> f32 {
        match *self {
            Surrogate::Triangle { width } => {
                let a = 1.0 - (x / width).abs();
                if a > 0.0 {
                    a / width
                } else {
                    0.0
                }
            }
            Surrogate::FastSigmoid { slope } => {
                let d = 1.0 + slope * x.abs();
                1.0 / (d * d)
            }
            Surrogate::ArcTan { alpha } => {
                let z = std::f32::consts::FRAC_PI_2 * alpha * x;
                alpha / (2.0 * (1.0 + z * z))
            }
        }
    }
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate::default_triangle()
    }
}

impl fmt::Display for Surrogate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Surrogate::Triangle { width } => write!(f, "triangle(width={width})"),
            Surrogate::FastSigmoid { slope } => write!(f, "fast-sigmoid(slope={slope})"),
            Surrogate::ArcTan { alpha } => write!(f, "arctan(alpha={alpha})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let s = Surrogate::Triangle { width: 1.0 };
        assert_eq!(s.derivative(0.0), 1.0);
        assert_eq!(s.derivative(1.0), 0.0);
        assert_eq!(s.derivative(-1.0), 0.0);
        assert!((s.derivative(0.5) - 0.5).abs() < 1e-6);
        assert_eq!(s.derivative(5.0), 0.0);
    }

    #[test]
    fn all_surrogates_peak_at_zero_and_are_symmetric() {
        for s in [
            Surrogate::Triangle { width: 0.7 },
            Surrogate::FastSigmoid { slope: 2.0 },
            Surrogate::ArcTan { alpha: 2.0 },
        ] {
            let peak = s.derivative(0.0);
            for x in [0.1f32, 0.5, 1.0, 3.0] {
                assert!(s.derivative(x) <= peak, "{s} not peaked at 0");
                assert!(
                    (s.derivative(x) - s.derivative(-x)).abs() < 1e-6,
                    "{s} not symmetric"
                );
            }
        }
    }

    #[test]
    fn derivatives_are_nonnegative() {
        for s in [
            Surrogate::default_triangle(),
            Surrogate::FastSigmoid { slope: 5.0 },
            Surrogate::ArcTan { alpha: 1.0 },
        ] {
            for i in -20..=20 {
                assert!(s.derivative(i as f32 * 0.25) >= 0.0);
            }
        }
    }
}
