//! Finite-difference gradient checking.
//!
//! [`gradcheck`] is the correctness oracle used throughout the test suite:
//! it treats the sum of a graph output as a scalar loss, computes analytic
//! gradients with [`Graph::backward`], and compares them against central
//! differences. Note that it can only be applied to *smooth* graphs —
//! spiking nodes are piecewise constant, which is the entire reason
//! surrogate gradients exist (their correctness is checked structurally
//! instead, in the graph tests).

use crate::graph::{Graph, Var};
use skipper_tensor::Tensor;

/// Result details of a failed gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradMismatch {
    /// Which input tensor disagreed.
    pub input: usize,
    /// Flat element index within that input.
    pub element: usize,
    /// Central-difference estimate.
    pub numeric: f64,
    /// Tape gradient.
    pub analytic: f64,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch at input {} element {}: numeric {} vs analytic {}",
            self.input, self.element, self.numeric, self.analytic
        )
    }
}

impl std::error::Error for GradMismatch {}

/// Check the tape gradients of `f` at `inputs` against central differences.
///
/// `f` receives a graph plus one leaf `Var` per input (all requiring
/// gradients) and returns the output var; the implied loss is the **sum of
/// the output elements**. Every element of every input is perturbed by
/// `±eps`; the check fails if any analytic/numeric pair differs by more
/// than `tol·(1 + |analytic|)`.
///
/// # Errors
///
/// Returns the first [`GradMismatch`] found.
pub fn gradcheck<F>(inputs: &[Tensor], f: F, eps: f32, tol: f64) -> Result<(), GradMismatch>
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone(), true)).collect();
    let out = f(&mut g, &vars);
    let ones = Tensor::ones(g.value(out).shape().clone());
    g.seed_grad(out, ones);
    g.backward();
    let analytic: Vec<Option<Tensor>> = vars.iter().map(|&v| g.grad(v).cloned()).collect();

    // Numeric pass per element.
    let loss = |tensors: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = tensors.iter().map(|t| g.leaf(t.clone(), true)).collect();
        let out = f(&mut g, &vars);
        g.value(out).sum()
    };
    for (ii, input) in inputs.iter().enumerate() {
        let ana = match &analytic[ii] {
            Some(t) => t.clone(),
            None => Tensor::zeros(input.shape().clone()),
        };
        for e in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.iter().map(Tensor::deep_clone).collect();
            plus[ii].data_mut()[e] += eps;
            let mut minus: Vec<Tensor> = inputs.iter().map(Tensor::deep_clone).collect();
            minus[ii].data_mut()[e] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps as f64);
            let a = ana.data()[e] as f64;
            if (numeric - a).abs() > tol * (1.0 + a.abs()) {
                return Err(GradMismatch {
                    input: ii,
                    element: e,
                    numeric,
                    analytic: a,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_tensor::{Conv2dSpec, XorShiftRng};

    #[test]
    fn passes_on_linear_chain() {
        let mut rng = XorShiftRng::new(21);
        let x = Tensor::randn([2, 3], &mut rng);
        let w = Tensor::randn([4, 3], &mut rng);
        let b = Tensor::randn([4], &mut rng);
        gradcheck(
            &[x, w, b],
            |g, v| g.linear(v[0], v[1], Some(v[2])),
            1e-2,
            1e-2,
        )
        .unwrap();
    }

    #[test]
    fn passes_on_conv_pool_reshape() {
        let mut rng = XorShiftRng::new(22);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], &mut rng);
        gradcheck(
            &[x, w],
            |g, v| {
                let c = g.conv2d(v[0], v[1], None, Conv2dSpec::padded(1));
                let p = g.avg_pool2d(c, 2);
                g.reshape(p, [1, 8])
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn passes_on_elementwise_mix() {
        let mut rng = XorShiftRng::new(23);
        let a = Tensor::randn([5], &mut rng);
        let b = Tensor::randn([5], &mut rng);
        gradcheck(
            &[a, b],
            |g, v| {
                let s = g.add_scaled(v[0], v[1], 0.5);
                let m = g.mul(s, v[1]);
                g.scale(m, 1.5)
            },
            1e-3,
            1e-2,
        )
        .unwrap();
    }

    #[test]
    fn catches_wrong_gradients() {
        // mask_mul with mismatched forward/backward would fail; emulate a
        // wrong gradient by checking mul against a graph that detaches one
        // operand: numeric sees the dependency, analytic does not.
        let a = Tensor::from_vec(vec![2.0], [1]);
        let err = gradcheck(
            &[a],
            |g, v| {
                let frozen = g.value(v[0]).clone();
                g.add_scaled_const(v[0], &frozen, 1.0) // y = x + detach(x)
            },
            1e-3,
            1e-3,
        )
        .unwrap_err();
        assert_eq!(err.input, 0);
        assert!((err.numeric - 2.0).abs() < 1e-2);
        assert!((err.analytic - 1.0).abs() < 1e-6);
    }
}
