//! The arena tape: nodes, ops, forward construction and reverse sweep.

use crate::surrogate::Surrogate;
use skipper_memprof::{record_op, Category, CategoryGuard, OpKind};
use skipper_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward_input, conv2d_backward_weight, matmul,
    matmul_nt, matmul_tn, Conv2dSpec, Tensor,
};

/// Handle to a node in a [`Graph`].
///
/// A `Var` is only meaningful with the graph that created it; using it with
/// another graph panics (indices are bounds-checked) or yields nonsense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Arena index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// External input (weights, checkpoint states, spike inputs).
    Leaf,
    /// `a + b`.
    Add(Var, Var),
    /// `a + s·b`.
    AddScaled(Var, Var, f32),
    /// `a + s·c` where `c` is a constant tensor outside the graph
    /// (used for the detached membrane reset term).
    AddScaledConst(Var),
    /// `s·a`.
    Scale(Var, f32),
    /// Hadamard product `a ⊙ b`.
    Mul(Var, Var),
    /// Dense layer `x[B,I] · w[O,I]ᵀ (+ b[O])`.
    Linear { x: Var, w: Var, b: Option<Var> },
    /// 2-D convolution.
    Conv2d {
        x: Var,
        w: Var,
        b: Option<Var>,
        spec: Conv2dSpec,
    },
    /// Non-overlapping average pooling with window `k`.
    AvgPool { x: Var, k: usize },
    /// Shape view; gradient reshapes back.
    Reshape(Var),
    /// Heaviside firing with a surrogate backward.
    Spike {
        u: Var,
        theta: f32,
        surrogate: Surrogate,
    },
    /// `x ⊙ mask` with a fixed binary mask (dropout; mask is pre-scaled).
    MaskMul(Var),
    /// `max(0, x)` — used by the ANN pre-training mode of hybrid training.
    Relu(Var),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    /// Constant payload for ops that need one (reset tensors, masks).
    aux: Option<Tensor>,
    requires_grad: bool,
}

/// A define-by-run autodiff tape.
///
/// Nodes are created in topological order by the forward-building methods;
/// [`Graph::backward`] sweeps them once in reverse. Node output tensors are
/// the "stored activations" of the paper — they stay alive until the graph
/// is dropped, which is exactly the lifetime autograd frameworks give them.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes held by node values (the live activation footprint of
    /// this graph, excluding gradients).
    pub fn activation_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.value.byte_size()).sum()
    }

    fn push(&mut self, value: Tensor, op: Op, aux: Option<Tensor>, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            aux,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    // ------------------------------------------------------------------
    // Forward construction
    // ------------------------------------------------------------------

    /// Insert an external tensor. `requires_grad` marks it as a gradient
    /// sink (weights, checkpoint boundary states).
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, None, requires_grad)
    }

    /// `a + b` (elementwise).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Add(a, b), None, rg)
    }

    /// `a + s·b` (elementwise).
    pub fn add_scaled(&mut self, a: Var, b: Var, s: f32) -> Var {
        let value = self.value(a).add_scaled(self.value(b), s);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::AddScaled(a, b, s), None, rg)
    }

    /// `a + s·c` with constant `c`: the value uses `c`, the gradient
    /// ignores it. This is the *detached* reset term `U − θ·o_{t-1}` of the
    /// paper's Eq. 1/2.
    pub fn add_scaled_const(&mut self, a: Var, c: &Tensor, s: f32) -> Var {
        let value = self.value(a).add_scaled(c, s);
        let rg = self.requires(a);
        self.push(value, Op::AddScaledConst(a), None, rg)
    }

    /// `s·a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        let rg = self.requires(a);
        self.push(value, Op::Scale(a, s), None, rg)
    }

    /// `a ⊙ b` (elementwise).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Mul(a, b), None, rg)
    }

    /// Dense layer: `x[B,I] · w[O,I]ᵀ + b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn linear(&mut self, x: Var, w: Var, b: Option<Var>) -> Var {
        let mut out = matmul_nt(self.value(x), self.value(w));
        if let Some(b) = b {
            let bias = self.value(b).clone();
            let (rows, cols) = out.shape().as_2d();
            assert_eq!(bias.numel(), cols, "bias length vs output features");
            let od = out.data_mut();
            for r in 0..rows {
                for (c, &bv) in bias.data().iter().enumerate() {
                    od[r * cols + c] += bv;
                }
            }
        }
        let rg = self.requires(x) || self.requires(w) || b.is_some_and(|b| self.requires(b));
        self.push(out, Op::Linear { x, w, b }, None, rg)
    }

    /// 2-D convolution (see [`skipper_tensor::conv2d`]).
    pub fn conv2d(&mut self, x: Var, w: Var, b: Option<Var>, spec: Conv2dSpec) -> Var {
        let bias = b.map(|b| self.value(b).clone());
        let out = conv2d(self.value(x), self.value(w), bias.as_ref(), spec);
        let rg = self.requires(x) || self.requires(w) || b.is_some_and(|b| self.requires(b));
        self.push(out, Op::Conv2d { x, w, b, spec }, None, rg)
    }

    /// Non-overlapping average pooling.
    pub fn avg_pool2d(&mut self, x: Var, k: usize) -> Var {
        let out = avg_pool2d(self.value(x), k);
        let rg = self.requires(x);
        self.push(out, Op::AvgPool { x, k }, None, rg)
    }

    /// Shape view over the same elements.
    pub fn reshape(&mut self, x: Var, shape: impl Into<skipper_tensor::Shape>) -> Var {
        let out = self.value(x).reshape(shape);
        let rg = self.requires(x);
        self.push(out, Op::Reshape(x), None, rg)
    }

    /// Spike generation `o = H(u − θ)` with surrogate backward
    /// `∂o/∂u := σ′(u − θ)`.
    pub fn spike(&mut self, u: Var, theta: f32, surrogate: Surrogate) -> Var {
        let value = self.value(u).map(|x| if x >= theta { 1.0 } else { 0.0 });
        let rg = self.requires(u);
        self.push(
            value,
            Op::Spike {
                u,
                theta,
                surrogate,
            },
            None,
            rg,
        )
    }

    /// Rectified linear unit `max(0, x)`.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        let rg = self.requires(x);
        self.push(value, Op::Relu(x), None, rg)
    }

    /// Multiply by a fixed (pre-scaled) mask — dropout and similar.
    pub fn mask_mul(&mut self, x: Var, mask: Tensor) -> Var {
        let value = self.value(x).mul(&mask);
        let rg = self.requires(x);
        self.push(value, Op::MaskMul(x), Some(mask), rg)
    }

    // ------------------------------------------------------------------
    // Values and gradients
    // ------------------------------------------------------------------

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if any flowed into it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Remove and return the gradient of `v`.
    pub fn take_grad(&mut self, v: Var) -> Option<Tensor> {
        self.nodes[v.0].grad.take()
    }

    /// Accumulate an externally supplied gradient into `v` (checkpoint
    /// boundary gradients, analytic loss gradients).
    ///
    /// # Panics
    ///
    /// Panics if `grad`'s shape differs from the node value's.
    pub fn seed_grad(&mut self, v: Var, grad: Tensor) {
        assert_eq!(
            grad.shape(),
            self.value(v).shape(),
            "seed gradient shape mismatch at node {}",
            v.0
        );
        self.accumulate(v, grad);
    }

    fn accumulate(&mut self, v: Var, grad: Tensor) {
        let node = &mut self.nodes[v.0];
        match node.grad.as_mut() {
            Some(g) => g.add_assign(&grad),
            None => node.grad = Some(grad),
        }
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Propagate all seeded gradients through the tape, in reverse
    /// topological (creation) order. Gradients land on every node with
    /// `requires_grad`; read them with [`Graph::grad`]/[`Graph::take_grad`].
    pub fn backward(&mut self) {
        let _cat = CategoryGuard::new(Category::Activations);
        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                self.nodes[i].grad = None;
                continue;
            }
            let Some(g) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    if self.requires(a) {
                        self.accumulate(a, g.clone());
                    }
                    if self.requires(b) {
                        self.accumulate(b, g);
                    }
                }
                Op::AddScaled(a, b, s) => {
                    if self.requires(a) {
                        self.accumulate(a, g.clone());
                    }
                    if self.requires(b) {
                        self.accumulate(b, g.scale(s));
                    }
                }
                Op::AddScaledConst(a) => {
                    if self.requires(a) {
                        self.accumulate(a, g);
                    }
                }
                Op::Scale(a, s) => {
                    if self.requires(a) {
                        self.accumulate(a, g.scale(s));
                    }
                }
                Op::Mul(a, b) => {
                    if self.requires(a) {
                        let ga = g.mul(self.value(b));
                        self.accumulate(a, ga);
                    }
                    if self.requires(b) {
                        let gb = g.mul(self.value(a));
                        self.accumulate(b, gb);
                    }
                }
                Op::Linear { x, w, b } => {
                    if self.requires(x) {
                        let gx = matmul(&g, self.value(w)); // [B,O]·[O,I]
                        self.accumulate(x, gx);
                    }
                    if self.requires(w) {
                        let gw = matmul_tn(&g, self.value(x)); // [B,O]ᵀ·[B,I]
                        self.accumulate(w, gw);
                    }
                    if let Some(b) = b {
                        if self.requires(b) {
                            let gb = column_sums(&g);
                            self.accumulate(b, gb);
                        }
                    }
                }
                Op::Conv2d { x, w, b, spec } => {
                    if self.requires(x) {
                        let shape = self.value(x).shape().dims().to_vec();
                        let gx = conv2d_backward_input(&g, &shape, self.value(w), spec);
                        self.accumulate(x, gx);
                    }
                    let need_w = self.requires(w);
                    let need_b = b.is_some_and(|b| self.requires(b));
                    if need_w || need_b {
                        let wshape = self.value(w).shape().dims().to_vec();
                        let (gw, gb) = conv2d_backward_weight(&g, self.value(x), &wshape, spec);
                        if need_w {
                            self.accumulate(w, gw);
                        }
                        if let (Some(b), true) = (b, need_b) {
                            self.accumulate(b, gb);
                        }
                    }
                }
                Op::AvgPool { x, k } => {
                    if self.requires(x) {
                        let shape = self.value(x).shape().dims().to_vec();
                        let gx = avg_pool2d_backward(&g, &shape, k);
                        self.accumulate(x, gx);
                    }
                }
                Op::Reshape(x) => {
                    if self.requires(x) {
                        let shape = self.value(x).shape().clone();
                        self.accumulate(x, g.reshape(shape));
                    }
                }
                Op::Spike {
                    u,
                    theta,
                    surrogate,
                } => {
                    if self.requires(u) {
                        record_op(
                            OpKind::Elementwise,
                            2.0 * g.numel() as f64,
                            3.0 * g.byte_size() as f64,
                        );
                        let uval = self.value(u).clone();
                        let data: Vec<f32> = g
                            .data()
                            .iter()
                            .zip(uval.data())
                            .map(|(&gv, &uv)| gv * surrogate.derivative(uv - theta))
                            .collect();
                        let gu = Tensor::from_vec(data, uval.shape().clone());
                        self.accumulate(u, gu);
                    }
                }
                Op::MaskMul(x) => {
                    if self.requires(x) {
                        // lint:allow(panic): aux is populated when this node was recorded as a dropout-mask op
                        let mask = self.nodes[i].aux.as_ref().expect("mask present").clone();
                        self.accumulate(x, g.mul(&mask));
                    }
                }
                Op::Relu(x) => {
                    if self.requires(x) {
                        let xval = self.value(x).clone();
                        let data: Vec<f32> = g
                            .data()
                            .iter()
                            .zip(xval.data())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 })
                            .collect();
                        self.accumulate(x, Tensor::from_vec(data, xval.shape().clone()));
                    }
                }
            }
            // Interior gradients are no longer needed once propagated; free
            // them eagerly, as autograd frameworks do.
            if !matches!(self.nodes[i].op, Op::Leaf) {
                self.nodes[i].grad = None;
            }
        }
    }
}

/// Sum each column of a `[R,C]` tensor into a `[C]` vector.
fn column_sums(t: &Tensor) -> Tensor {
    let (rows, cols) = t.shape().as_2d();
    record_op(OpKind::Reduce, t.numel() as f64, t.byte_size() as f64);
    let mut out = Tensor::zeros([cols]);
    let od = out.data_mut();
    for r in 0..rows {
        let row = &t.data()[r * cols..(r + 1) * cols];
        for (o, &v) in od.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_tensor::XorShiftRng;

    #[test]
    fn add_and_scale_chain() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]), true);
        let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0], [2]), true);
        let c = g.add(a, b);
        let d = g.scale(c, 2.0);
        assert_eq!(g.value(d).data(), &[8.0, 12.0]);
        g.seed_grad(d, Tensor::ones([2]));
        g.backward();
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x + x should give dy/dx = 2.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![5.0], [1]), true);
        let y = g.add(x, x);
        g.seed_grad(y, Tensor::ones([1]));
        g.backward();
        assert_eq!(g.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn mul_product_rule() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![3.0], [1]), true);
        let b = g.leaf(Tensor::from_vec(vec![4.0], [1]), true);
        let c = g.mul(a, b);
        g.seed_grad(c, Tensor::ones([1]));
        g.backward();
        assert_eq!(g.grad(a).unwrap().data(), &[4.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[3.0]);
    }

    #[test]
    fn detached_const_blocks_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0], [1]), true);
        let c = Tensor::from_vec(vec![10.0], [1]);
        let y = g.add_scaled_const(a, &c, -0.5);
        assert_eq!(g.value(y).data(), &[-4.0]);
        g.seed_grad(y, Tensor::from_vec(vec![2.0], [1]));
        g.backward();
        assert_eq!(
            g.grad(a).unwrap().data(),
            &[2.0],
            "grad passes through a only"
        );
    }

    #[test]
    fn linear_gradients_match_manual() {
        // x[1,2]·w[1,2]ᵀ + b: out = x·w + b
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0, 3.0], [1, 2]), true);
        let w = g.leaf(Tensor::from_vec(vec![5.0, 7.0], [1, 2]), true);
        let b = g.leaf(Tensor::from_vec(vec![1.0], [1]), true);
        let y = g.linear(x, w, Some(b));
        assert_eq!(g.value(y).data(), &[2.0 * 5.0 + 3.0 * 7.0 + 1.0]);
        g.seed_grad(y, Tensor::ones([1, 1]));
        g.backward();
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.grad(w).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0]);
    }

    #[test]
    fn spike_forward_is_binary_and_backward_is_surrogate() {
        let mut g = Graph::new();
        let u = g.leaf(Tensor::from_vec(vec![0.2, 0.9, 1.4, 2.5], [4]), true);
        let o = g.spike(u, 1.0, Surrogate::default_triangle());
        assert_eq!(g.value(o).data(), &[0.0, 0.0, 1.0, 1.0]);
        g.seed_grad(o, Tensor::ones([4]));
        g.backward();
        let gu = g.grad(u).unwrap();
        // triangle derivative at u-θ = -0.8, -0.1, 0.4, 1.5
        let expect = [0.2f32, 0.9, 0.6, 0.0];
        for (a, e) in gu.data().iter().zip(expect) {
            assert!((a - e).abs() < 1e-5, "{a} vs {e}");
        }
    }

    #[test]
    fn seed_grad_into_interior_node_adds_paths() {
        // z = 2y, with an extra seed on y: dL/dx must include both.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0], [1]), true);
        let y = g.scale(x, 3.0);
        let z = g.scale(y, 2.0);
        g.seed_grad(z, Tensor::ones([1]));
        g.seed_grad(y, Tensor::ones([1])); // boundary-style injection
        g.backward();
        // dz/dx = 6, plus seeded dy/dx = 3 → 9.
        assert_eq!(g.grad(x).unwrap().data(), &[9.0]);
    }

    #[test]
    fn no_requires_grad_prunes_propagation() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0], [1]), false);
        let y = g.scale(x, 2.0);
        g.seed_grad(y, Tensor::ones([1]));
        g.backward();
        assert!(g.grad(x).is_none());
    }

    #[test]
    fn reshape_routes_gradient_back() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones([2, 3]), true);
        let y = g.reshape(x, [6]);
        g.seed_grad(y, Tensor::from_fn([6], |i| i as f32));
        g.backward();
        let gx = g.grad(x).unwrap();
        assert_eq!(gx.shape().dims(), &[2, 3]);
        assert_eq!(gx.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn mask_mul_applies_mask_both_ways() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]), true);
        let mask = Tensor::from_vec(vec![0.0, 2.0], [2]);
        let y = g.mask_mul(x, mask);
        assert_eq!(g.value(y).data(), &[0.0, 4.0]);
        g.seed_grad(y, Tensor::ones([2]));
        g.backward();
        assert_eq!(g.grad(x).unwrap().data(), &[0.0, 2.0]);
    }

    #[test]
    fn activation_bytes_counts_node_values() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros([10]), true);
        let _y = g.scale(x, 1.0);
        assert_eq!(g.activation_bytes(), 2 * 40);
    }

    #[test]
    fn conv_and_pool_nodes_run_end_to_end() {
        let mut rng = XorShiftRng::new(3);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn([1, 2, 4, 4], &mut rng), false);
        let w = g.leaf(Tensor::randn([3, 2, 3, 3], &mut rng), true);
        let b = g.leaf(Tensor::zeros([3]), true);
        let c = g.conv2d(x, w, Some(b), Conv2dSpec::padded(1));
        let p = g.avg_pool2d(c, 2);
        let f = g.reshape(p, [1, 3 * 2 * 2]);
        g.seed_grad(f, Tensor::ones([1, 12]));
        g.backward();
        assert!(g.grad(w).is_some());
        assert!(g.grad(b).is_some());
        assert_eq!(g.grad(w).unwrap().shape().dims(), &[3, 2, 3, 3]);
    }
}
