//! The SLO burn-rate engine: turns the gateway's raw latency histogram
//! and shed counters into "are we OK?" numbers.
//!
//! An SLO has two parts here: a **latency target** (the p99 of answered
//! requests must stay under `latency_p99_us`) and an **availability
//! target** (at least `availability_target` of attempts must be
//! answered). Each implies an error budget — 1 % of requests may be
//! slower, `1 - availability_target` of attempts may be shed — and the
//! *burn rate* is how fast a window of traffic spends that budget:
//!
//! ```text
//! latency_burn      = slow_fraction / (1 - 0.99)
//! availability_burn = shed_fraction / (1 - availability_target)
//! burn_rate         = max(latency_burn, availability_burn)
//! ```
//!
//! Burn 1.0 = exactly on budget; 10 = the budget disappears ten times
//! faster than allowed. The engine evaluates two rolling windows (short
//! and long) and publishes both as `serve.slo_burn_rate{window}` gauges
//! plus the `GET /slo` endpoint the gateway registers. Alerting should
//! require **both** windows to burn: the short window alone pages on
//! blips, the long window alone pages an hour late (see DESIGN.md §13).
//!
//! Only *involuntary* sheds count against availability: `queue_full`,
//! `deadline` and `shutdown`. Rate-limit and unknown-tenant rejections
//! are admission control doing its job — a tenant bursting past its
//! contract must not page the operator.

use crate::api::{SloStatus, SloWindowStatus};
use crate::lock_unpoisoned;
use skipper_obs::{gauge_set, labeled, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency-p99 target in milliseconds.
pub const SLO_P99_ENV: &str = "SKIPPER_SLO_P99_MS";
/// Availability target in percent (e.g. `99.5`).
pub const SLO_AVAILABILITY_ENV: &str = "SKIPPER_SLO_AVAILABILITY_PCT";
/// Short burn window in seconds.
pub const SLO_SHORT_ENV: &str = "SKIPPER_SLO_SHORT_S";
/// Long burn window in seconds.
pub const SLO_LONG_ENV: &str = "SKIPPER_SLO_LONG_S";

/// Shed reasons that spend the availability budget. The other typed
/// reasons (`rate_limited`, `unknown_tenant`) are deliberate rejections.
const INVOLUNTARY_SHEDS: [&str; 3] = ["queue_full", "deadline", "shutdown"];

/// The serving SLO: targets plus the evaluation cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// The p99 of `serve.request_wall_us` must stay at or under this many
    /// microseconds. Defaults to the gateway's default request deadline
    /// (1 s): answering slower than clients wait is already failure.
    pub latency_p99_us: f64,
    /// Fraction of attempts that must be answered (0.99 = 99 %).
    pub availability_target: f64,
    /// Fast-burn window: catches "everything is on fire right now".
    pub short_window: Duration,
    /// Slow-burn window: catches "we are steadily leaking budget".
    pub long_window: Duration,
    /// How often the engine samples the registry and re-evaluates.
    pub eval_period: Duration,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            latency_p99_us: 1_000_000.0,
            availability_target: 0.99,
            short_window: Duration::from_secs(60),
            long_window: Duration::from_secs(600),
            eval_period: Duration::from_millis(250),
        }
    }
}

/// One registry reading the engine keeps in its ring.
#[derive(Debug, Clone)]
struct Sample {
    at: Instant,
    hist: Option<Histogram>,
    shed: f64,
}

fn read_registry_sample() -> Sample {
    let registry = skipper_obs::registry();
    let shed = INVOLUNTARY_SHEDS
        .iter()
        .map(|reason| registry.counter(&labeled("serve.shed", "reason", reason)))
        .sum();
    Sample {
        at: Instant::now(),
        hist: registry.histogram("serve.request_wall_us"),
        shed,
    }
}

/// Estimated number of samples in `delta_counts` lying above `threshold`,
/// assuming samples are uniform within each bucket. The overflow bucket
/// (unbounded above) counts entirely as "above" once the threshold
/// reaches the last finite bound — the conservative reading.
fn count_above(bounds: &[f64], delta_counts: &[u64], threshold: f64) -> f64 {
    let mut above = 0.0;
    for (i, &count) in delta_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let count = count as f64;
        let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
        match bounds.get(i) {
            None => {
                // Overflow bucket: above unless the threshold exceeds the
                // last bound (then we cannot place it — count it all).
                above += count;
            }
            Some(&upper) if upper <= threshold => {}
            Some(_) if lower >= threshold => above += count,
            Some(&upper) => above += count * (upper - threshold) / (upper - lower),
        }
    }
    above
}

/// Evaluate one window between two registry readings. Pure: testable
/// without threads or the global registry.
fn window_status(window: &str, old: &Sample, new: &Sample, cfg: &SloConfig) -> SloWindowStatus {
    let seconds = new.at.saturating_duration_since(old.at).as_secs_f64();
    let (requests, slow) = match (&old.hist, &new.hist) {
        (_, None) => (0.0, 0.0),
        (None, Some(cur)) => {
            let requests = cur.count() as f64;
            (
                requests,
                count_above(cur.bounds(), cur.counts(), cfg.latency_p99_us),
            )
        }
        (Some(prev), Some(cur)) => {
            if prev.bounds() != cur.bounds() || prev.count() > cur.count() {
                // Registry cleared or re-registered mid-flight: the delta
                // is meaningless, report the window as empty.
                (0.0, 0.0)
            } else {
                let delta: Vec<u64> = cur
                    .counts()
                    .iter()
                    .zip(prev.counts())
                    .map(|(c, p)| c.saturating_sub(*p))
                    .collect();
                let requests = (cur.count() - prev.count()) as f64;
                (
                    requests,
                    count_above(cur.bounds(), &delta, cfg.latency_p99_us),
                )
            }
        }
    };
    let shed = (new.shed - old.shed).max(0.0);
    let latency_budget = 1.0 - 0.99;
    let latency_burn = if requests > 0.0 {
        (slow / requests) / latency_budget
    } else {
        0.0
    };
    let availability_budget = (1.0 - cfg.availability_target).max(1e-9);
    let attempts = requests + shed;
    let availability_burn = if attempts > 0.0 {
        (shed / attempts) / availability_budget
    } else {
        0.0
    };
    SloWindowStatus {
        window: window.to_string(),
        seconds,
        burn_rate: latency_burn.max(availability_burn),
        latency_burn,
        availability_burn,
        requests,
        slow,
        shed,
    }
}

fn idle_status(cfg: &SloConfig) -> SloStatus {
    SloStatus {
        latency_p99_target_us: cfg.latency_p99_us,
        availability_target: cfg.availability_target,
        healthy: true,
        windows: Vec::new(),
    }
}

/// The running burn-rate engine; dropping it stops and joins the
/// evaluation thread.
#[derive(Debug)]
pub struct SloEngine {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<SloStatus>>,
    thread: Option<JoinHandle<()>>,
}

impl SloEngine {
    /// Start evaluating `cfg` against the global registry.
    pub fn start(cfg: SloConfig) -> SloEngine {
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(idle_status(&cfg)));
        let eval_stop = Arc::clone(&stop);
        let eval_status = Arc::clone(&status);
        let thread = std::thread::Builder::new()
            .name("skipper-serve-slo".into())
            .spawn(move || eval_loop(&cfg, &eval_stop, &eval_status))
            .ok();
        if thread.is_none() {
            eprintln!("skipper-serve: cannot spawn the SLO engine thread");
        }
        SloEngine {
            stop,
            status,
            thread,
        }
    }

    /// The latest evaluation (what `GET /slo` serves).
    pub fn status(&self) -> SloStatus {
        lock_unpoisoned(&self.status).clone()
    }
}

impl Drop for SloEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn eval_loop(cfg: &SloConfig, stop: &AtomicBool, status: &Mutex<SloStatus>) {
    let mut ring: VecDeque<Sample> = VecDeque::new();
    let slice = Duration::from_millis(25);
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now_sample = read_registry_sample();
        ring.push_back(now_sample.clone());
        // Keep one sample older than the long window so its delta always
        // spans the full window once the process has lived that long.
        while ring.len() > 2
            && ring
                .get(1)
                .is_some_and(|s| now_sample.at.duration_since(s.at) >= cfg.long_window)
        {
            ring.pop_front();
        }
        let oldest_at_least = |window: Duration| -> &Sample {
            ring.iter()
                .rev()
                .find(|s| now_sample.at.duration_since(s.at) >= window)
                .or_else(|| ring.front())
                .unwrap_or(&now_sample)
        };
        let windows = vec![
            window_status("short", oldest_at_least(cfg.short_window), &now_sample, cfg),
            window_status("long", oldest_at_least(cfg.long_window), &now_sample, cfg),
        ];
        for w in &windows {
            gauge_set(
                &labeled("serve.slo_burn_rate", "window", &w.window),
                w.burn_rate,
            );
        }
        let healthy = windows.iter().all(|w| w.burn_rate < 1.0);
        {
            let mut s = lock_unpoisoned(status);
            s.healthy = healthy;
            s.windows = windows;
        }
        // Sliced sleep keeps shutdown prompt.
        let mut waited = Duration::ZERO;
        while waited < cfg.eval_period {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let step = slice.min(cfg.eval_period - waited);
            std::thread::sleep(step);
            waited += step;
        }
    }
}

/// Overlay the `SKIPPER_SLO_*` environment knobs onto `cfg`.
///
/// # Errors
///
/// A set-but-malformed variable names itself and the expected shape.
pub fn overlay_env(mut cfg: SloConfig) -> Result<SloConfig, String> {
    if let Some(ms) = parse_env::<f64>(SLO_P99_ENV)? {
        cfg.latency_p99_us = (ms.max(1.0)) * 1_000.0;
    }
    if let Some(pct) = parse_env::<f64>(SLO_AVAILABILITY_ENV)? {
        cfg.availability_target = (pct / 100.0).clamp(0.0, 0.999_999);
    }
    if let Some(s) = parse_env::<u64>(SLO_SHORT_ENV)? {
        cfg.short_window = Duration::from_secs(s.max(1));
    }
    if let Some(s) = parse_env::<u64>(SLO_LONG_ENV)? {
        cfg.long_window = Duration::from_secs(s.max(1));
    }
    Ok(cfg)
}

fn parse_env<T: std::str::FromStr>(var: &str) -> Result<Option<T>, String> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{var}={raw:?} is not a valid value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: Instant, walls: &[f64], shed: f64) -> Sample {
        let mut hist = Histogram::default_us();
        for &w in walls {
            hist.observe(w);
        }
        Sample {
            at,
            hist: Some(hist),
            shed,
        }
    }

    #[test]
    fn healthy_traffic_burns_below_one() {
        let cfg = SloConfig::default();
        let t0 = Instant::now();
        let old = sample(t0, &[], 0.0);
        // 100 requests around 5 ms, none near the 1 s target, nothing shed.
        let new = sample(t0 + Duration::from_secs(60), &[5_000.0; 100], 0.0);
        let w = window_status("short", &old, &new, &cfg);
        assert_eq!(w.requests, 100.0);
        assert!(w.burn_rate < 1.0, "burn {w:?}");
        assert_eq!(w.shed, 0.0);
    }

    #[test]
    fn slow_tail_breaches_the_latency_budget() {
        let cfg = SloConfig::default();
        let t0 = Instant::now();
        let old = sample(t0, &[], 0.0);
        // 10 % of requests land an order of magnitude over the target:
        // 10x the 1 % budget → burn 10.
        let mut walls = vec![5_000.0; 90];
        walls.extend(vec![20_000_000.0; 10]);
        let new = sample(t0 + Duration::from_secs(60), &walls, 0.0);
        let w = window_status("short", &old, &new, &cfg);
        assert!(
            w.latency_burn > 5.0,
            "a 10% slow tail must burn way past 1: {w:?}"
        );
        assert!(w.burn_rate >= w.latency_burn);
    }

    #[test]
    fn involuntary_sheds_burn_availability() {
        let cfg = SloConfig::default();
        let t0 = Instant::now();
        let old = sample(t0, &[], 2.0);
        // 95 answered + 5 shed in the window: 5 % unavailability over a
        // 1 % budget → availability burn 5.
        let new = sample(t0 + Duration::from_secs(60), &[5_000.0; 95], 7.0);
        let w = window_status("short", &old, &new, &cfg);
        assert_eq!(w.shed, 5.0);
        assert!((w.availability_burn - 5.0).abs() < 1e-9, "{w:?}");
        assert!(w.burn_rate >= 1.0);
    }

    #[test]
    fn empty_window_is_healthy() {
        let cfg = SloConfig::default();
        let t0 = Instant::now();
        let old = Sample {
            at: t0,
            hist: None,
            shed: 0.0,
        };
        let new = Sample {
            at: t0 + Duration::from_secs(60),
            hist: None,
            shed: 0.0,
        };
        let w = window_status("long", &old, &new, &cfg);
        assert_eq!(w.burn_rate, 0.0);
        assert_eq!(w.requests, 0.0);
    }

    #[test]
    fn registry_reset_mid_window_reports_empty_not_garbage() {
        let cfg = SloConfig::default();
        let t0 = Instant::now();
        let old = sample(t0, &[5_000.0; 50], 0.0);
        let new = sample(t0 + Duration::from_secs(5), &[5_000.0; 10], 0.0);
        let w = window_status("short", &old, &new, &cfg);
        assert_eq!(w.requests, 0.0, "shrunk count means a cleared registry");
        assert_eq!(w.burn_rate, 0.0);
    }

    #[test]
    fn count_above_interpolates_within_buckets() {
        // One bucket (100, 1000] with 10 samples; threshold 550 sits
        // halfway → 5 estimated above.
        let bounds = [100.0, 1000.0];
        let counts = [0u64, 10, 0];
        assert!((count_above(&bounds, &counts, 550.0) - 5.0).abs() < 1e-9);
        // Threshold below the bucket: everything above.
        assert!((count_above(&bounds, &counts, 50.0) - 10.0).abs() < 1e-9);
        // Threshold above the bucket: nothing.
        assert_eq!(count_above(&bounds, &counts, 1000.0), 0.0);
        // Overflow bucket counts as above.
        assert_eq!(count_above(&bounds, &[0, 0, 3], 1e9), 3.0);
    }

    #[test]
    fn engine_evaluates_and_serves_status() {
        let cfg = SloConfig {
            eval_period: Duration::from_millis(20),
            ..SloConfig::default()
        };
        let engine = SloEngine::start(cfg);
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if engine.status().windows.len() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let status = engine.status();
        assert_eq!(status.windows.len(), 2, "engine never evaluated");
        assert_eq!(status.windows[0].window, "short");
        assert_eq!(status.windows[1].window, "long");
    }

    #[test]
    fn env_overlay_parses_and_rejects() {
        // No env set: identity.
        let cfg = overlay_env(SloConfig::default()).expect("no env set");
        assert_eq!(cfg, SloConfig::default());
    }
}
