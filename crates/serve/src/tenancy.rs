//! Per-tenant admission control: classic token buckets.
//!
//! Each tenant owns a bucket of up to `burst` tokens refilled
//! continuously at `rate_per_sec`; admitting a request spends one token.
//! An empty bucket means the tenant is over its rate and the request is
//! shed with `429` before it ever touches the queue — overload from one
//! tenant cannot starve another's budget.

use crate::config::TenantConfig;
use crate::lock_unpoisoned;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The request named a tenant that is not configured.
    UnknownTenant,
    /// The tenant's token bucket is empty.
    RateLimited,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The admission table: configured budgets plus live bucket levels.
#[derive(Debug)]
pub struct Admission {
    tenants: Vec<TenantConfig>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Admission {
    /// Build the table; every bucket starts full (a fresh gateway allows
    /// each tenant its full burst immediately).
    pub fn new(tenants: &[TenantConfig]) -> Admission {
        Admission {
            tenants: tenants.to_vec(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    fn budget(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Try to admit one request for `tenant` at `now`.
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTenant`] for unconfigured tenants,
    /// [`AdmitError::RateLimited`] when the bucket is empty.
    pub fn admit(&self, tenant: &str, now: Instant) -> Result<(), AdmitError> {
        let budget = self.budget(tenant).ok_or(AdmitError::UnknownTenant)?;
        let mut buckets = lock_unpoisoned(&self.buckets);
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: budget.burst,
            last_refill: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens =
            (bucket.tokens + elapsed.as_secs_f64() * budget.rate_per_sec).min(budget.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(AdmitError::RateLimited)
        }
    }

    /// Live view for `GET /v1/tenants`: each configured tenant's budget
    /// and current token level (refreshed to `now`, full if untouched).
    pub fn levels(&self, now: Instant) -> Vec<(TenantConfig, f64)> {
        let buckets = lock_unpoisoned(&self.buckets);
        self.tenants
            .iter()
            .map(|t| {
                let tokens = match buckets.get(&t.name) {
                    None => t.burst,
                    Some(b) => {
                        let elapsed = now.saturating_duration_since(b.last_refill);
                        (b.tokens + elapsed.as_secs_f64() * t.rate_per_sec).min(t.burst)
                    }
                };
                (t.clone(), tokens)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn table() -> Admission {
        Admission::new(&[
            TenantConfig::new("fast", 100.0, 3.0),
            TenantConfig::new("slow", 1.0, 1.0),
        ])
    }

    #[test]
    fn unknown_tenants_are_rejected() {
        let a = table();
        assert_eq!(
            a.admit("nobody", Instant::now()),
            Err(AdmitError::UnknownTenant)
        );
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let a = table();
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(a.admit("fast", t0), Ok(()));
        }
        // Bucket drained: the 4th request at the same instant is shed.
        assert_eq!(a.admit("fast", t0), Err(AdmitError::RateLimited));
        // 20 ms at 100/s refills two tokens.
        let t1 = t0 + Duration::from_millis(20);
        assert_eq!(a.admit("fast", t1), Ok(()));
        assert_eq!(a.admit("fast", t1), Ok(()));
        assert_eq!(a.admit("fast", t1), Err(AdmitError::RateLimited));
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let a = table();
        let t0 = Instant::now();
        assert_eq!(a.admit("slow", t0), Ok(()));
        assert_eq!(a.admit("slow", t0), Err(AdmitError::RateLimited));
        // "fast" is unaffected by "slow" draining its bucket.
        assert_eq!(a.admit("fast", t0), Ok(()));
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let a = table();
        let t0 = Instant::now();
        // Untouched bucket reports full, not rate * elapsed.
        let levels = a.levels(t0 + Duration::from_secs(3600));
        let fast = levels.iter().find(|(t, _)| t.name == "fast").unwrap();
        assert_eq!(fast.1, 3.0);
    }
}
