//! The model pool: the gateway's handle on "the current model".
//!
//! A [`ModelPool`] hands out `Arc<InferSession>` clones, so a hot reload
//! is one atomic pointer swap: in-flight micro-batches keep predicting on
//! the session they already hold while new batches pick up the reloaded
//! weights — no request ever observes a half-written model.
//!
//! A pool built with [`ModelPool::watching`] owns a network factory and a
//! `.skw` path; [`ModelPool::poll_reload`] stats the file and, when the
//! (mtime, length) stamp moved, builds a **fresh** network from the
//! factory, loads the weights into it, and swaps. Building fresh instead
//! of mutating the live network is what keeps the swap atomic —
//! `SpikingNetwork::share` aliases parameter storage, so loading into a
//! shared copy would tear the weights under a concurrent `predict`.

use skipper_core::{InferSession, InferSkip, SkipperError};
use skipper_snn::SpikingNetwork;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use crate::lock_unpoisoned;

/// Builds the network topology a watched `.skw` is loaded into.
pub type NetFactory = Box<dyn Fn() -> SpikingNetwork + Send + Sync>;

/// `(mtime, length)` stamp used to detect weight-file changes.
type Stamp = (SystemTime, u64);

struct WatchSource {
    factory: NetFactory,
    path: PathBuf,
    skip: Option<InferSkip>,
    seen: Mutex<Option<Stamp>>,
}

impl std::fmt::Debug for WatchSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchSource")
            .field("path", &self.path)
            .field("skip", &self.skip)
            .finish()
    }
}

/// A swappable `Arc<InferSession>`; see the module docs.
#[derive(Debug)]
pub struct ModelPool {
    current: Mutex<Arc<InferSession>>,
    watch: Option<WatchSource>,
    reloads: AtomicU64,
}

impl ModelPool {
    /// A pool that always serves `session` (no hot reload).
    pub fn fixed(session: InferSession) -> ModelPool {
        ModelPool {
            current: Mutex::new(Arc::new(session)),
            watch: None,
            reloads: AtomicU64::new(0),
        }
    }

    /// A pool that serves `factory()` weights-loaded from the `.skw` at
    /// `path`, reloading whenever the file changes. `skip` configures
    /// inference-time skipping on every built session.
    ///
    /// # Errors
    ///
    /// The initial load must succeed — a gateway must not start serving
    /// uninitialized weights. I/O, container and shape errors propagate.
    pub fn watching(
        factory: NetFactory,
        path: impl Into<PathBuf>,
        skip: Option<InferSkip>,
    ) -> Result<ModelPool, SkipperError> {
        let path = path.into();
        let session = build_session(&factory, &path, skip)?;
        let seen = stamp(&path);
        Ok(ModelPool {
            current: Mutex::new(Arc::new(session)),
            watch: Some(WatchSource {
                factory,
                path,
                skip,
                seen: Mutex::new(seen),
            }),
            reloads: AtomicU64::new(0),
        })
    }

    /// The current session. Callers hold the `Arc` across a whole
    /// micro-batch so a concurrent reload cannot tear their model.
    pub fn current(&self) -> Arc<InferSession> {
        Arc::clone(&lock_unpoisoned(&self.current))
    }

    /// Whether this pool watches a weight file (i.e. wants a reload
    /// thread).
    pub fn watches(&self) -> bool {
        self.watch.is_some()
    }

    /// Successful hot reloads since construction.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Check the watched file and swap in a freshly built session when
    /// its stamp moved. Returns `Ok(true)` on a swap, `Ok(false)` when
    /// unchanged (or not watching, or the file is momentarily absent —
    /// `.skw` writes go through a tmp-file rename, so absence is
    /// transient).
    ///
    /// # Errors
    ///
    /// A changed file that fails to load is an error; the previous
    /// session keeps serving.
    pub fn poll_reload(&self) -> Result<bool, SkipperError> {
        let Some(watch) = &self.watch else {
            return Ok(false);
        };
        let Some(now) = stamp(&watch.path) else {
            return Ok(false);
        };
        {
            let seen = lock_unpoisoned(&watch.seen);
            if *seen == Some(now) {
                return Ok(false);
            }
        }
        let session = build_session(&watch.factory, &watch.path, watch.skip)?;
        *lock_unpoisoned(&self.current) = Arc::new(session);
        *lock_unpoisoned(&watch.seen) = Some(now);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        skipper_obs::counter_add("serve.model_reloads", 1.0);
        Ok(true)
    }
}

fn build_session(
    factory: &NetFactory,
    path: &Path,
    skip: Option<InferSkip>,
) -> Result<InferSession, SkipperError> {
    let mut session = match skip {
        Some(s) => InferSession::new(factory()).with_skip(s),
        None => InferSession::new(factory()),
    };
    session.load_weights(path)?;
    Ok(session)
}

fn stamp(path: &Path) -> Option<Stamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_core::{Method, TrainSession};
    use skipper_snn::{custom_net, save_params, Adam, ModelConfig};
    use skipper_tensor::{Tensor, XorShiftRng};

    fn net() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    }

    fn spikes(seed: u64, t: usize) -> Vec<Tensor> {
        let mut rng = XorShiftRng::new(seed);
        (0..t)
            .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.5) as i32 as f32))
            .collect()
    }

    #[test]
    fn watching_pool_swaps_on_file_change_and_keeps_old_arc_alive() {
        let dir = std::env::temp_dir().join(format!("skipper-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.skw");
        save_params(net().params(), &path).unwrap();

        let pool = ModelPool::watching(Box::new(net), &path, None).unwrap();
        let before = pool.current();
        assert!(!pool.poll_reload().unwrap(), "unchanged file: no swap");

        // Train a couple of steps and overwrite the weights.
        let mut session = TrainSession::builder(net(), Method::Bptt, 4)
            .optimizer(Box::new(Adam::new(0.05)))
            .workers(1)
            .build()
            .unwrap();
        let inputs = spikes(1, 4);
        session.train_batch(&inputs, &[0, 1]);
        std::thread::sleep(std::time::Duration::from_millis(20));
        save_params(session.net().params(), &path).unwrap();

        assert!(pool.poll_reload().unwrap(), "changed file must swap");
        assert_eq!(pool.reloads(), 1);
        let after = pool.current();
        assert!(!Arc::ptr_eq(&before, &after));

        // The old handle still predicts — in-flight batches are safe —
        // and the two handles disagree, proving the swap took.
        let old = before.predict(&inputs).unwrap();
        let new = after.predict(&inputs).unwrap();
        assert!(old.logits.data().iter().all(|v| v.is_finite()));
        assert_ne!(old.logits.data(), new.logits.data());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixed_pool_never_reloads() {
        let pool = ModelPool::fixed(InferSession::new(net()));
        assert!(!pool.watches());
        assert!(!pool.poll_reload().unwrap());
        assert_eq!(pool.reloads(), 0);
    }

    #[test]
    fn missing_watch_file_fails_construction() {
        let err = ModelPool::watching(Box::new(net), "/nonexistent/model.skw", None);
        assert!(err.is_err());
    }
}
