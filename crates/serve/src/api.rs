//! Wire types for the gateway's JSON endpoints.
//!
//! A prediction request carries **one sample**: a pre-encoded spike train
//! of `timesteps` frames, each of shape `shape` (e.g. `[3, 8, 8]`),
//! flattened timestep-major into `inputs`. Clients encode (Poisson,
//! latency, …) on their side — the gateway never runs an RNG, so a
//! response is a pure function of the request batch and the loaded
//! weights, and replicas answer identically.

use serde::{Deserialize, Serialize};
use skipper_tensor::Tensor;

/// `POST /v1/predict` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Admission-control tenant; must be configured on the gateway.
    pub tenant: String,
    /// Spike-train length `T`.
    pub timesteps: usize,
    /// Per-timestep sample shape, e.g. `[3, 8, 8]` (no batch dimension —
    /// batching is the gateway's job).
    pub shape: Vec<usize>,
    /// Flat spike data, timestep-major: `timesteps * shape.product()`
    /// values.
    pub inputs: Vec<f32>,
    /// Optional per-request deadline override in milliseconds; the
    /// gateway sheds the request rather than answer later than this.
    pub deadline_ms: Option<u64>,
}

impl PredictRequest {
    /// Validate and unflatten into one `[1, …shape]` tensor per timestep
    /// (the gateway stacks these along the batch dimension).
    ///
    /// # Errors
    ///
    /// A human-readable reason when the declared geometry is empty,
    /// overflows, or disagrees with `inputs.len()`.
    pub fn to_timestep_tensors(&self) -> Result<Vec<Tensor>, String> {
        if self.timesteps == 0 {
            return Err("timesteps must be >= 1".to_string());
        }
        if self.shape.is_empty() || self.shape.contains(&0) {
            return Err(format!(
                "shape {:?} must be non-empty and positive",
                self.shape
            ));
        }
        let per_step: usize = self
            .shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| format!("shape {:?} overflows", self.shape))?;
        let want = per_step
            .checked_mul(self.timesteps)
            .ok_or_else(|| format!("{} x {:?} overflows", self.timesteps, self.shape))?;
        if self.inputs.len() != want {
            return Err(format!(
                "inputs has {} values; {} timesteps of shape {:?} need {}",
                self.inputs.len(),
                self.timesteps,
                self.shape,
                want
            ));
        }
        let mut sample_shape = Vec::with_capacity(self.shape.len() + 1);
        sample_shape.push(1usize);
        sample_shape.extend_from_slice(&self.shape);
        Ok(self
            .inputs
            .chunks_exact(per_step)
            .map(|step| Tensor::from_vec(step.to_vec(), sample_shape.clone()))
            .collect())
    }
}

/// `POST /v1/predict` success body (HTTP 200).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Argmax class of the time-averaged logits.
    pub class: usize,
    /// The sample's time-averaged logits.
    pub logits: Vec<f32>,
    /// Timesteps the micro-batch actually ran.
    pub evaluated_steps: usize,
    /// Timesteps early-exited by inference-time skipping.
    pub skipped_steps: usize,
    /// How many requests shared the micro-batch this one rode in.
    pub batch_size: usize,
}

/// One row of `GET /v1/tenants`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Configured sustained rate, requests/second.
    pub rate_per_sec: f64,
    /// Configured burst capacity.
    pub burst: f64,
    /// Current token-bucket level.
    pub tokens: f64,
}

/// `GET /v1/tenants` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantsResponse {
    /// Every configured tenant with its live bucket level.
    pub tenants: Vec<TenantStatus>,
}

/// One rolling window's burn rate in `GET /slo`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloWindowStatus {
    /// Window name, `"short"` or `"long"`.
    pub window: String,
    /// Window length, seconds.
    pub seconds: f64,
    /// Overall burn rate: max of the latency and availability burns.
    /// `>= 1` means the error budget is being spent faster than the SLO
    /// allows.
    pub burn_rate: f64,
    /// Latency burn: fraction of answered requests slower than the p99
    /// target, over the 1 % the target tolerates.
    pub latency_burn: f64,
    /// Availability burn: involuntarily-shed fraction over the allowed
    /// unavailability.
    pub availability_burn: f64,
    /// Requests answered inside the window.
    pub requests: f64,
    /// Estimated answered requests above the latency target.
    pub slow: f64,
    /// Availability-impacting sheds inside the window (queue_full,
    /// deadline, shutdown — policy rejections like rate limiting are the
    /// SLO working, not breaking).
    pub shed: f64,
}

/// `GET /slo` body: the burn-rate engine's latest evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// Configured latency target: the p99 must stay at or under this many
    /// microseconds.
    pub latency_p99_target_us: f64,
    /// Configured availability target as a fraction (0.99 = "99 % of
    /// attempts answered").
    pub availability_target: f64,
    /// True while every window burns below 1.0. Alerts should require
    /// *both* windows to burn — see DESIGN.md §13.
    pub healthy: bool,
    /// Per-window burn rates, short first.
    pub windows: Vec<SloWindowStatus>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(timesteps: usize, shape: Vec<usize>, values: usize) -> PredictRequest {
        PredictRequest {
            tenant: "t".to_string(),
            timesteps,
            shape,
            inputs: vec![1.0; values],
            deadline_ms: None,
        }
    }

    #[test]
    fn well_formed_request_unflattens() {
        let tensors = request(4, vec![3, 8, 8], 4 * 3 * 8 * 8)
            .to_timestep_tensors()
            .unwrap();
        assert_eq!(tensors.len(), 4);
        assert_eq!(tensors[0].shape().dims(), &[1, 3, 8, 8]);
    }

    #[test]
    fn geometry_mismatches_are_rejected() {
        assert!(request(0, vec![3], 0).to_timestep_tensors().is_err());
        assert!(request(2, vec![], 2).to_timestep_tensors().is_err());
        assert!(request(2, vec![3, 0], 0).to_timestep_tensors().is_err());
        assert!(request(2, vec![3], 5).to_timestep_tensors().is_err());
    }

    #[test]
    fn json_round_trip_preserves_float_bits() {
        let req = PredictRequest {
            tenant: "acme".to_string(),
            timesteps: 1,
            shape: vec![2],
            inputs: vec![0.1, f32::MIN_POSITIVE],
            deadline_ms: Some(25),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = serde_json::from_str(&json).unwrap();
        for (a, b) in req.inputs.iter().zip(&back.inputs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.deadline_ms, Some(25));

        // A body without the optional field still parses.
        let json = r#"{"tenant":"a","timesteps":1,"shape":[1],"inputs":[0.0]}"#;
        let sparse: PredictRequest = serde_json::from_str(json).unwrap();
        assert_eq!(sparse.deadline_ms, None);
    }
}
