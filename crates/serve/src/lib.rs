//! `skipper-serve`: a multi-tenant inference gateway over
//! [`InferSession`](skipper_core::InferSession).
//!
//! Training amortizes kernel launches over large batches; serving gets
//! single-sample requests. The gateway recovers the batch efficiency by
//! **dynamic micro-batching**: admitted requests queue, and a batcher
//! thread coalesces compatible ones (same timestep count and shape) into
//! one forward pass — up to `max_batch` requests or `max_delay` of
//! waiting, and never past any request's deadline.
//!
//! The pieces, each its own module:
//!
//! * [`config`] — [`GatewayConfig`]/[`TenantConfig`] plus the
//!   `SKIPPER_SERVE_*` environment overlay;
//! * [`tenancy`] — token-bucket admission control: per-tenant rate
//!   limits answered with typed `429`s, so one noisy tenant cannot
//!   starve the rest;
//! * [`model`] — the hot-reloadable [`ModelPool`]: an atomic
//!   `Arc<InferSession>` swap keyed on the watched `.skw` file's stamp;
//! * [`api`] — the JSON wire types (`/v1/predict`, `/v1/tenants`,
//!   `/slo`);
//! * [`slo`] — the [`SloEngine`]: rolling-window burn rates over the
//!   latency histogram and shed counters, published as
//!   `serve.slo_burn_rate{window}` gauges and the `GET /slo` endpoint;
//! * [`gateway`] — the [`Gateway`]: HTTP handlers on a
//!   [`skipper_obs::Router`], the queue, the batcher, reload and SLO
//!   threads.
//!
//! Everything rides the shared router redesign: registering on
//! [`skipper_obs::global_router()`] puts `/v1/predict` on the same
//! server as `/metrics` and `/cluster`; a private router isolates a
//! gateway instance completely (tests run several side by side).
//!
//! The paper's time-skipping transfers to serving as an optional
//! inference-time mode ([`GatewayConfig::skip`]): per micro-batch, the
//! SST percentile of input spike activity early-exits quiet timesteps.
//! The `serve_loopback` bench measures the latency reduction.
//!
//! ```
//! use skipper_core::InferSession;
//! use skipper_serve::{Gateway, GatewayConfig, ModelPool, TenantConfig};
//! use skipper_snn::{custom_net, ModelConfig};
//! use std::sync::Arc;
//!
//! let net = custom_net(&ModelConfig {
//!     input_hw: 8,
//!     width_mult: 0.25,
//!     ..ModelConfig::default()
//! });
//! let cfg = GatewayConfig {
//!     tenants: vec![TenantConfig::new("acme", 100.0, 100.0)],
//!     ..GatewayConfig::default()
//! };
//! let router = Arc::new(skipper_obs::Router::new());
//! let mut gateway = Gateway::start(
//!     cfg,
//!     ModelPool::fixed(InferSession::new(net)),
//!     Arc::clone(&router),
//! )
//! .expect("threads spawn");
//! let addr = gateway.bind("127.0.0.1:0").expect("loopback binds");
//! // POST /v1/predict and GET /v1/tenants now answer at `addr`.
//! # let _ = addr;
//! ```

pub mod api;
pub mod config;
pub mod gateway;
pub mod model;
pub mod slo;
pub mod tenancy;

pub use api::{
    PredictRequest, PredictResponse, SloStatus, SloWindowStatus, TenantStatus, TenantsResponse,
};
pub use config::{parse_tenants, GatewayConfig, TenantConfig, ADDR_ENV};
pub use gateway::Gateway;
pub use model::{ModelPool, NetFactory};
pub use slo::{SloConfig, SloEngine};
pub use tenancy::{Admission, AdmitError};

use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning: gateway state (queue,
/// buckets, the model pointer) is always valid between single in-place
/// updates, so a panicking handler thread must not wedge the batcher.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
