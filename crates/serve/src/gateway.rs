//! The gateway itself: HTTP handlers, the request queue, and the
//! micro-batcher thread.
//!
//! # Request life cycle
//!
//! ```text
//! POST /v1/predict
//!   └─ parse + validate geometry          → 400 bad_request
//!   └─ admission (token bucket)           → 400 unknown tenant
//!                                         → 429 rate_limited
//!   └─ queue admission (capacity)         → 503 overloaded
//!   └─ enqueue, block on a response channel
//!        batcher: coalesce up to max_batch compatible requests, but
//!        dispatch no later than min(oldest.enqueued + max_delay,
//!        earliest deadline) — batching never delays a request past its
//!        deadline
//!   └─ predict on the pool's current session, split per-row
//!   └─ 200 with logits/class              → 503 deadline when unmet
//! ```
//!
//! Requests are **compatible** (may share a micro-batch) when they agree
//! on timestep count and per-step shape; the batch is their row-wise
//! concatenation, so with skipping disabled each row's logits are
//! bit-identical to a solo `InferSession::predict` on that sample. With
//! skipping enabled the SST is computed over the whole micro-batch —
//! replicas seeing the same batch still answer identically.

use crate::api::{PredictRequest, PredictResponse, TenantStatus, TenantsResponse};
use crate::config::GatewayConfig;
use crate::lock_unpoisoned;
use crate::model::ModelPool;
use crate::slo::SloEngine;
use crate::tenancy::{Admission, AdmitError};
use skipper_obs::{
    counter_add, gauge_set, labeled, observe, observe_with_exemplar, span, HttpServer, Request,
    Response, RouteGuard, Router,
};
use skipper_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Extra time a blocked handler allows past the deadline for a batch
/// that was *dispatched* in time to finish executing.
const EXECUTION_GRACE: Duration = Duration::from_secs(30);

/// How far before the earliest queued deadline the batcher stops
/// coalescing and dispatches what it has. Without this lead the window
/// wait would wake exactly *at* the deadline and the request would be
/// shed instead of served.
const DISPATCH_LEAD: Duration = Duration::from_millis(5);

/// Why a queued request was answered without a prediction.
enum Shed {
    /// Still queued at its deadline (or no response in time).
    Deadline,
    /// The gateway is stopping.
    Shutdown,
    /// The model rejected the batch (shape drift after a reload, …).
    Model(String),
}

type JobResult = Result<PredictResponse, Shed>;

/// One admitted request waiting for a micro-batch slot.
struct Job {
    /// Per-timestep `[1, …]` tensors.
    inputs: Vec<Tensor>,
    enqueued: Instant,
    deadline: Instant,
    respond: mpsc::Sender<JobResult>,
    /// The handler's `gateway_request` span id (0 when tracing is off) —
    /// becomes the exemplar on the phase histograms this job feeds.
    span: u64,
}

/// Record one request's time inside `phase`, remembering `span` as the
/// bucket's exemplar so a flame-graph/trace lookup can start from the
/// histogram.
fn phase_wall(phase: &str, wall: Duration, span: u64) {
    observe_with_exemplar(
        &labeled("serve.phase_wall_us", "phase", phase),
        wall.as_secs_f64() * 1e6,
        span,
    );
}

struct Inner {
    cfg: GatewayConfig,
    pool: ModelPool,
    admission: Admission,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
}

/// The running gateway: routes registered, batcher (and reloader, for a
/// watching pool) threads live. Dropping it sheds queued requests with a
/// typed `shutdown` reason, joins the threads and unregisters the routes.
pub struct Gateway {
    inner: Arc<Inner>,
    router: Arc<Router>,
    routes: Vec<RouteGuard>,
    servers: Vec<HttpServer>,
    batcher: Option<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
    slo: Option<Arc<SloEngine>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("tenants", &self.inner.cfg.tenants.len())
            .field("max_batch", &self.inner.cfg.max_batch)
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Gateway {
    /// Register `POST /v1/predict` + `GET /v1/tenants` (and, with an SLO
    /// configured, `GET /slo`) on `router`, then start the batcher, the
    /// SLO engine, and — for a watching pool — the reload poller.
    ///
    /// Pass [`skipper_obs::global_router()`] to share the process-wide
    /// server with `/metrics` and `/cluster`, or a private router for an
    /// isolated instance (tests run many gateways side by side this way).
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failures.
    pub fn start(
        cfg: GatewayConfig,
        pool: ModelPool,
        router: Arc<Router>,
    ) -> std::io::Result<Gateway> {
        let inner = Arc::new(Inner {
            admission: Admission::new(&cfg.tenants),
            cfg,
            pool,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let predict_inner = Arc::clone(&inner);
        let predict = router.register("POST", "/v1/predict", move |req| {
            handle_predict(&predict_inner, req)
        });
        let tenants_inner = Arc::clone(&inner);
        let tenants = router.register("GET", "/v1/tenants", move |_req| {
            handle_tenants(&tenants_inner)
        });
        let mut routes = vec![predict, tenants];
        let slo = inner.cfg.slo.clone().map(|slo_cfg| {
            let engine = Arc::new(SloEngine::start(slo_cfg));
            let slo_engine = Arc::clone(&engine);
            routes.push(router.register("GET", "/slo", move |_req| {
                match serde_json::to_string(&slo_engine.status()) {
                    Ok(json) => Response::ok_json(json),
                    Err(e) => Response::service_unavailable("model_error", &format!("{e:?}")),
                }
            }));
            engine
        });
        let batch_inner = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("skipper-serve-batch".into())
            .spawn(move || batcher_loop(&batch_inner))?;
        let reloader = if inner.pool.watches() {
            let reload_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("skipper-serve-reload".into())
                    .spawn(move || reload_loop(&reload_inner))?,
            )
        } else {
            None
        };
        Ok(Gateway {
            inner,
            router,
            routes,
            servers: Vec::new(),
            batcher: Some(batcher),
            reloader,
            slo,
        })
    }

    /// Bind an HTTP listener on `addr` (port 0 picks a free port)
    /// serving this gateway's router — which also exposes whatever else
    /// is registered there (`/metrics`, `/healthz`, …).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let server = HttpServer::bind(addr, Arc::clone(&self.router))?;
        let addr = server.addr();
        self.servers.push(server);
        Ok(addr)
    }

    /// [`bind`](Gateway::bind) on `SKIPPER_SERVE_ADDR`; `None` when the
    /// variable is unset.
    pub fn bind_from_env(&mut self) -> Option<std::io::Result<std::net::SocketAddr>> {
        let addr = std::env::var(crate::config::ADDR_ENV).ok()?;
        Some(self.bind(&addr))
    }

    /// The model pool behind this gateway.
    pub fn pool(&self) -> &ModelPool {
        &self.inner.pool
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // Close the front door before stopping the batcher: no listener,
        // no route, no new work.
        self.servers.clear();
        self.routes.clear();
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.cv.notify_all();
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reloader.take() {
            let _ = t.join();
        }
        // Routes are gone, so nothing can read `/slo` while the engine's
        // evaluation thread stops and joins.
        drop(self.slo.take());
    }
}

fn shed(reason: &str) {
    counter_add(&labeled("serve.shed", "reason", reason), 1.0);
}

fn handle_predict(inner: &Arc<Inner>, req: &Request) -> Response {
    // The request span lives until the response is ready, so a profiler
    // sample taken while the handler blocks on the batcher attributes the
    // wait to `gateway_request`; its id rides on the queued job as the
    // phase-histogram exemplar.
    let request_span = span!("gateway_request");
    let start = Instant::now();
    if inner.stop.load(Ordering::Relaxed) {
        return Response::service_unavailable("shutting_down", "gateway is stopping");
    }
    let parsed: PredictRequest = match serde_json::from_str(&req.body_str()) {
        Ok(p) => p,
        Err(e) => return Response::bad_request(&format!("invalid JSON body: {e:?}")),
    };
    let inputs = match parsed.to_timestep_tensors() {
        Ok(v) => v,
        Err(reason) => return Response::bad_request(&reason),
    };
    match inner.admission.admit(&parsed.tenant, start) {
        Err(AdmitError::UnknownTenant) => {
            shed("unknown_tenant");
            return Response::bad_request(&format!(
                "tenant {:?} is not configured on this gateway",
                parsed.tenant
            ));
        }
        Err(AdmitError::RateLimited) => {
            shed("rate_limited");
            return Response::too_many_requests(&format!(
                "tenant {:?} is over its rate budget",
                parsed.tenant
            ));
        }
        Ok(()) => {}
    }
    let budget = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(inner.cfg.deadline);
    let deadline = start + budget;
    let (tx, rx) = mpsc::channel();
    {
        let mut q = lock_unpoisoned(&inner.queue);
        if q.len() >= inner.cfg.queue_cap {
            drop(q);
            shed("queue_full");
            return Response::service_unavailable("overloaded", "request queue is full");
        }
        q.push_back(Job {
            inputs,
            enqueued: start,
            deadline,
            respond: tx,
            span: request_span.id(),
        });
        gauge_set("serve.queue_depth", q.len() as f64);
    }
    inner.cv.notify_all();
    counter_add(&labeled("serve.requests", "tenant", &parsed.tenant), 1.0);

    let wait = deadline.saturating_duration_since(Instant::now()) + EXECUTION_GRACE;
    match rx.recv_timeout(wait) {
        Ok(Ok(body)) => match serde_json::to_string(&body) {
            Ok(json) => {
                observe("serve.request_wall_us", start.elapsed().as_secs_f64() * 1e6);
                Response::ok_json(json)
            }
            Err(e) => Response::service_unavailable("model_error", &format!("{e:?}")),
        },
        // The batcher already counted this shed.
        Ok(Err(Shed::Deadline)) => {
            Response::service_unavailable("deadline", "not dispatched before the deadline")
        }
        Ok(Err(Shed::Shutdown)) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            Response::service_unavailable("shutting_down", "gateway is stopping")
        }
        Ok(Err(Shed::Model(reason))) => Response::service_unavailable("model_error", &reason),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shed("deadline");
            Response::service_unavailable("deadline", "no response before the deadline")
        }
    }
}

fn handle_tenants(inner: &Arc<Inner>) -> Response {
    let tenants = inner
        .admission
        .levels(Instant::now())
        .into_iter()
        .map(|(t, tokens)| TenantStatus {
            name: t.name,
            rate_per_sec: t.rate_per_sec,
            burst: t.burst,
            tokens,
        })
        .collect();
    match serde_json::to_string(&TenantsResponse { tenants }) {
        Ok(json) => Response::ok_json(json),
        Err(e) => Response::service_unavailable("model_error", &format!("{e:?}")),
    }
}

/// Whether two jobs may share a micro-batch: same timestep count and
/// per-step shape.
fn compatible(a: &Job, b: &Job) -> bool {
    a.inputs.len() == b.inputs.len()
        && a.inputs.first().map(|t| t.shape().dims()) == b.inputs.first().map(|t| t.shape().dims())
}

fn wait_on<'a>(
    cv: &Condvar,
    guard: MutexGuard<'a, VecDeque<Job>>,
    dur: Duration,
) -> MutexGuard<'a, VecDeque<Job>> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

/// Pop the front job plus every compatible one, up to `max_batch`.
fn extract_batch(q: &mut VecDeque<Job>, max_batch: usize) -> Vec<Job> {
    let Some(front) = q.pop_front() else {
        return Vec::new();
    };
    let mut batch = vec![front];
    let mut i = 0;
    while i < q.len() && batch.len() < max_batch {
        let matches = q
            .get(i)
            .zip(batch.first())
            .is_some_and(|(job, front)| compatible(job, front));
        if matches {
            if let Some(job) = q.remove(i) {
                batch.push(job);
            }
        } else {
            i += 1;
        }
    }
    batch
}

fn batcher_loop(inner: &Arc<Inner>) {
    loop {
        let batch = {
            let mut q = lock_unpoisoned(&inner.queue);
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    for job in q.drain(..) {
                        shed("shutdown");
                        // lint:allow(blocking): mpsc::Sender::send on an unbounded channel never parks the sender
                        let _ = job.respond.send(Err(Shed::Shutdown));
                    }
                    return;
                }
                let now = Instant::now();
                // Shed everything already past its deadline: predicting
                // for a client that stopped waiting wastes batch slots.
                let mut i = 0;
                while i < q.len() {
                    if q.get(i).is_some_and(|j| j.deadline <= now) {
                        if let Some(job) = q.remove(i) {
                            shed("deadline");
                            // lint:allow(blocking): mpsc::Sender::send on an unbounded channel never parks the sender
                            let _ = job.respond.send(Err(Shed::Deadline));
                        }
                    } else {
                        i += 1;
                    }
                }
                let Some(front) = q.front() else {
                    // lint:allow(blocking): condvar protocol — wait_timeout atomically releases serve.queue while parked
                    q = wait_on(&inner.cv, q, Duration::from_millis(50));
                    continue;
                };
                // Dispatch when the batch is full, the coalescing window
                // closed, or someone's deadline approaches — whichever
                // comes first. Batching must never push a response past
                // its request's deadline.
                let window_end = front.enqueued + inner.cfg.max_delay;
                let earliest_deadline = q.iter().map(|j| j.deadline).min().unwrap_or(window_end);
                let deadline_cutoff = earliest_deadline
                    .checked_sub(DISPATCH_LEAD)
                    .unwrap_or(earliest_deadline);
                let cutoff = window_end.min(deadline_cutoff);
                let ready = q.iter().filter(|j| compatible(j, front)).count();
                if ready >= inner.cfg.max_batch || now >= cutoff {
                    let batch = extract_batch(&mut q, inner.cfg.max_batch);
                    gauge_set("serve.queue_depth", q.len() as f64);
                    break batch;
                }
                // lint:allow(blocking): condvar protocol — wait_timeout atomically releases serve.queue while parked
                q = wait_on(&inner.cv, q, cutoff.saturating_duration_since(now));
            }
        };
        dispatch(inner, &batch);
    }
}

/// Stack the batch row-wise, predict once, split the logits back out.
///
/// Phase attribution happens here: each job's `queue_wait` ends when its
/// batch is picked up, `batch_wait` covers the row-stacking (time spent
/// because of company), and `execute` is the forward pass itself. Each
/// phase histogram carries span-id exemplars — the jobs' request spans
/// for the waits, the `execute` span for the model time.
fn dispatch(inner: &Arc<Inner>, batch: &[Job]) {
    let Some(front) = batch.first() else {
        return;
    };
    let _batch_span = span!("gateway_batch");
    let picked_up = Instant::now();
    for job in batch {
        phase_wall(
            "queue_wait",
            picked_up.saturating_duration_since(job.enqueued),
            job.span,
        );
    }
    let rows = batch.len();
    let timesteps = front.inputs.len();
    let mut steps: Vec<Tensor> = Vec::with_capacity(timesteps);
    for t in 0..timesteps {
        let mut dims = Vec::new();
        let mut data = Vec::new();
        for job in batch {
            if let Some(x) = job.inputs.get(t) {
                if dims.is_empty() {
                    dims = x.shape().dims().to_vec();
                }
                data.extend_from_slice(x.data());
            }
        }
        if let Some(d0) = dims.first_mut() {
            *d0 = rows;
        }
        steps.push(Tensor::from_vec(data, dims));
    }
    for job in batch {
        phase_wall("batch_wait", picked_up.elapsed(), job.span);
    }
    // Hold one Arc across the whole batch: a concurrent hot reload swaps
    // the pool pointer without tearing this prediction.
    let session = inner.pool.current();
    counter_add("serve.batches", 1.0);
    observe("serve.batch_size", rows as f64);
    let execute_span = span!("execute");
    let execute_start = Instant::now();
    let result = session.predict(&steps);
    phase_wall("execute", execute_start.elapsed(), execute_span.id());
    drop(execute_span);
    match result {
        Ok(pred) => {
            counter_add("serve.steps_evaluated", pred.evaluated_steps as f64);
            counter_add("serve.steps_skipped", pred.skipped_steps as f64);
            let classes = pred.logits.shape().dims().last().copied().unwrap_or(0);
            for (i, job) in batch.iter().enumerate() {
                let logits = pred
                    .logits
                    .data()
                    .get(i * classes..(i + 1) * classes)
                    .map(<[f32]>::to_vec)
                    .unwrap_or_default();
                let _ = job.respond.send(Ok(PredictResponse {
                    class: pred.classes.get(i).copied().unwrap_or(0),
                    logits,
                    evaluated_steps: pred.evaluated_steps,
                    skipped_steps: pred.skipped_steps,
                    batch_size: rows,
                }));
            }
        }
        Err(e) => {
            let reason = format!("{e}");
            for job in batch {
                let _ = job.respond.send(Err(Shed::Model(reason.clone())));
            }
        }
    }
}

/// Poll the watched `.skw` at the configured interval, in short slices
/// so shutdown stays prompt.
fn reload_loop(inner: &Arc<Inner>) {
    let slice = Duration::from_millis(25);
    loop {
        let mut waited = Duration::ZERO;
        while waited < inner.cfg.reload_poll {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            let step = slice.min(inner.cfg.reload_poll - waited);
            std::thread::sleep(step);
            waited += step;
        }
        // `serve.model_reloads` is counted inside the pool on success.
        if inner.pool.poll_reload().is_err() {
            counter_add("serve.model_reload_errors", 1.0);
        }
    }
}
