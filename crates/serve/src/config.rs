//! Gateway configuration: batching budgets, per-tenant rate limits, and
//! the `SKIPPER_SERVE_*` environment overlay.

use crate::slo::{overlay_env as overlay_slo_env, SloConfig};
use skipper_core::InferSkip;
use std::time::Duration;

/// `host:port` the gateway binds when served from the environment.
pub const ADDR_ENV: &str = "SKIPPER_SERVE_ADDR";
/// Micro-batch size cap (`max_batch`).
pub const BATCH_ENV: &str = "SKIPPER_SERVE_BATCH";
/// Coalescing window in milliseconds (`max_delay`).
pub const DELAY_ENV: &str = "SKIPPER_SERVE_DELAY_MS";
/// Queued-request cap before the gateway sheds with 503 (`queue_cap`).
pub const QUEUE_ENV: &str = "SKIPPER_SERVE_QUEUE";
/// Default per-request deadline in milliseconds (`deadline`).
pub const DEADLINE_ENV: &str = "SKIPPER_SERVE_DEADLINE_MS";
/// Tenant table, `name=rate:burst[,name=rate:burst…]`.
pub const TENANTS_ENV: &str = "SKIPPER_SERVE_TENANTS";
/// Inference-time skip percentile (0 disables skipping).
pub const SKIP_ENV: &str = "SKIPPER_SERVE_SKIP_PCT";
/// Model-pool watch poll interval in milliseconds.
pub const RELOAD_ENV: &str = "SKIPPER_SERVE_RELOAD_MS";

/// One tenant's admission-control budget: a token bucket holding up to
/// `burst` tokens, refilled at `rate_per_sec`; each admitted request
/// spends one token.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant name as sent in the request body.
    pub name: String,
    /// Steady-state requests per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how far above the steady rate a burst may go.
    pub burst: f64,
}

impl TenantConfig {
    /// A tenant allowing `rate_per_sec` sustained and the same burst.
    pub fn new(name: impl Into<String>, rate_per_sec: f64, burst: f64) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            rate_per_sec,
            burst,
        }
    }
}

/// Everything the gateway needs besides the model itself. Start from
/// [`GatewayConfig::default`], set fields, optionally overlay the
/// environment with [`GatewayConfig::from_env`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Micro-batch size cap: the batcher dispatches as soon as this many
    /// compatible requests are queued.
    pub max_batch: usize,
    /// Coalescing window: the oldest queued request never waits longer
    /// than this for company (its own deadline can cut the wait shorter).
    pub max_delay: Duration,
    /// Queue capacity; requests beyond it are shed with `503 overloaded`.
    pub queue_cap: usize,
    /// Default per-request deadline (a request may tighten it with
    /// `deadline_ms`). Requests that cannot be answered by their deadline
    /// are shed with `503 deadline`.
    pub deadline: Duration,
    /// The admission table. A request naming an unlisted tenant is
    /// rejected up front.
    pub tenants: Vec<TenantConfig>,
    /// Optional SAM-driven inference-time skipping applied per
    /// micro-batch (see `skipper_core::InferSkip`).
    pub skip: Option<InferSkip>,
    /// How often the model pool polls its watched `.skw` for changes.
    pub reload_poll: Duration,
    /// The serving SLO the burn-rate engine evaluates; `None` disables
    /// the engine (no `/slo` endpoint, no `serve.slo_burn_rate` gauges).
    pub slo: Option<SloConfig>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(5),
            queue_cap: 64,
            deadline: Duration::from_millis(1000),
            tenants: Vec::new(),
            skip: None,
            reload_poll: Duration::from_millis(500),
            slo: Some(SloConfig::default()),
        }
    }
}

impl GatewayConfig {
    /// Overlay `SKIPPER_SERVE_*` environment knobs onto `self`. Unset
    /// variables keep the current value.
    ///
    /// # Errors
    ///
    /// A set-but-malformed variable is a configuration error, not a
    /// silent fallback: the message names the variable and the expected
    /// shape.
    pub fn from_env(mut self) -> Result<GatewayConfig, String> {
        if let Some(v) = env_parse::<usize>(BATCH_ENV)? {
            self.max_batch = v.max(1);
        }
        if let Some(v) = env_parse::<u64>(DELAY_ENV)? {
            self.max_delay = Duration::from_millis(v);
        }
        if let Some(v) = env_parse::<usize>(QUEUE_ENV)? {
            self.queue_cap = v.max(1);
        }
        if let Some(v) = env_parse::<u64>(DEADLINE_ENV)? {
            self.deadline = Duration::from_millis(v.max(1));
        }
        if let Ok(spec) = std::env::var(TENANTS_ENV) {
            self.tenants = parse_tenants(&spec)?;
        }
        if let Some(p) = env_parse::<f32>(SKIP_ENV)? {
            self.skip = (p > 0.0).then_some(InferSkip {
                percentile: p,
                min_steps: 1,
            });
        }
        if let Some(v) = env_parse::<u64>(RELOAD_ENV)? {
            self.reload_poll = Duration::from_millis(v.max(1));
        }
        if let Some(slo) = self.slo.take() {
            self.slo = Some(overlay_slo_env(slo)?);
        }
        Ok(self)
    }

    /// The configured tenant named `name`, if any.
    pub fn tenant(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Result<Option<T>, String> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{var}={raw:?} is not a valid value")),
    }
}

/// Parse the `SKIPPER_SERVE_TENANTS` grammar:
/// `name=rate:burst[,name=rate:burst…]`, e.g. `acme=100:200,edge=2:2`.
///
/// # Errors
///
/// Names the offending entry; rates and bursts must be positive finite
/// numbers.
pub fn parse_tenants(spec: &str) -> Result<Vec<TenantConfig>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (name, budget) = entry
            .split_once('=')
            .ok_or_else(|| format!("tenant entry {entry:?}: expected name=rate:burst"))?;
        let (rate, burst) = budget
            .split_once(':')
            .ok_or_else(|| format!("tenant entry {entry:?}: expected name=rate:burst"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("tenant entry {entry:?}: rate {rate:?} is not a number"))?;
        let burst: f64 = burst
            .trim()
            .parse()
            .map_err(|_| format!("tenant entry {entry:?}: burst {burst:?} is not a number"))?;
        if !(rate.is_finite() && rate > 0.0 && burst.is_finite() && burst >= 1.0) {
            return Err(format!(
                "tenant entry {entry:?}: rate must be > 0 and burst >= 1"
            ));
        }
        if name.trim().is_empty() {
            return Err(format!("tenant entry {entry:?}: empty tenant name"));
        }
        out.push(TenantConfig::new(name.trim(), rate, burst));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_grammar_round_trips() {
        let tenants = parse_tenants("acme=100:200, edge=2.5:4").unwrap();
        assert_eq!(
            tenants,
            vec![
                TenantConfig::new("acme", 100.0, 200.0),
                TenantConfig::new("edge", 2.5, 4.0),
            ]
        );
        assert!(parse_tenants("").unwrap().is_empty());
    }

    #[test]
    fn tenant_grammar_rejects_garbage() {
        assert!(parse_tenants("acme").is_err());
        assert!(parse_tenants("acme=5").is_err());
        assert!(parse_tenants("acme=x:2").is_err());
        assert!(parse_tenants("acme=-1:2").is_err());
        assert!(parse_tenants("acme=1:0").is_err());
        assert!(parse_tenants("=1:2").is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = GatewayConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_cap >= 1);
        assert!(cfg.skip.is_none());
        assert!(cfg.tenant("nobody").is_none());
    }
}
