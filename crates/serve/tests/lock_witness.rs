//! Runtime lock witness vs. the static lock-order graph.
//!
//! The `lock_witness` feature (forced on for this crate's tests via the
//! dev-dependency on `skipper-obs`) makes every `named_lock` acquisition
//! taken while other named locks are held record a runtime edge
//! `held -> acquired`. This test drives both of the workspace's busiest
//! concurrent subsystems — a 4-worker training engine and the serving
//! gateway under real loopback HTTP load — and then checks the
//! dynamic/static contract from both sides:
//!
//! * the witness is live: at least one runtime edge was observed, and
//! * the static approximation is sound: every runtime edge is reachable
//!   in the lock-order graph `skipper-lint` derives from source alone.
//!   Nothing happens at runtime that the analysis did not predict.

use skipper_core::{InferSession, Method, TrainSession};
use skipper_obs as obs;
use skipper_serve::{Gateway, GatewayConfig, ModelPool, PredictRequest, TenantConfig};
use skipper_snn::{custom_net, Adam, ModelConfig, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const T: usize = 4;
const SHAPE: [usize; 3] = [3, 8, 8];
const PER_STEP: usize = 3 * 8 * 8;

fn small_net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

fn encode(seed: u64) -> Vec<f32> {
    let mut rng = XorShiftRng::new(seed);
    let mut out = Vec::with_capacity(T * PER_STEP);
    for _ in 0..T {
        let frame = Tensor::rand([1, 3, 8, 8], &mut rng).map(|x| (x > 0.55) as i32 as f32);
        out.extend_from_slice(frame.data());
    }
    out
}

/// Raw HTTP POST; returns the status code.
fn post(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).unwrap();
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Engine side: a short Skipper training run on a 4-worker pool, with a
/// ring sink installed so every span/instant flows through `submit`
/// (nesting `obs.ring` under `obs.sinks`).
fn drive_engine() {
    let mut session = TrainSession::builder(
        small_net(),
        // 6-step segments: Eq. 7 admits p = 50.
        Method::Skipper {
            checkpoints: 2,
            percentile: 50.0,
        },
        12,
    )
    .optimizer(Box::new(Adam::new(1e-3)))
    .workers(4)
    .build()
    .expect("valid method");

    let mut rng = XorShiftRng::new(7);
    let inputs: Vec<Tensor> = (0..12)
        .map(|_| Tensor::rand([4, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect();
    let labels = [0usize, 1, 2, 3];
    for _ in 0..2 {
        session.train_batch(&inputs, &labels);
    }
}

/// Gateway side: loopback HTTP predictions through the micro-batcher.
fn drive_gateway() {
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 1000.0, 1000.0)],
        max_delay: Duration::from_millis(2),
        ..GatewayConfig::default()
    };
    let router = Arc::new(obs::Router::new());
    let mut gateway = Gateway::start(
        cfg,
        ModelPool::fixed(InferSession::new(small_net())),
        router,
    )
    .expect("threads spawn");
    let addr = gateway.bind("127.0.0.1:0").expect("loopback binds");
    for seed in 0..6u64 {
        let body = serde_json::to_string(&PredictRequest {
            tenant: "acme".to_string(),
            timesteps: T,
            shape: SHAPE.to_vec(),
            inputs: encode(seed),
            deadline_ms: Some(5_000),
        })
        .unwrap();
        assert_eq!(post(addr, "/v1/predict", &body), 200);
    }
}

#[test]
fn runtime_lock_edges_are_a_subset_of_the_static_graph() {
    let (ring, _handle) = obs::RingBufferSink::new(1 << 12);
    let id = obs::add_sink(Box::new(ring));
    drive_engine();
    drive_gateway();
    obs::remove_sink(id);

    let edges = obs::witness_edges();
    assert!(
        !edges.is_empty(),
        "the witness observed no nested named-lock acquisition; \
         either instrumentation stopped submitting events or the \
         lock_witness feature is off for this test build"
    );

    // The static graph, derived from source alone by the same engine
    // that backs `skipper-lint --dump-lock-graph`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives at <root>/crates/serve");
    let analysis = skipper_lint::workspace_analysis(root).expect("workspace sources readable");
    for (from, to) in &edges {
        assert!(
            analysis.has_path(from, to),
            "runtime edge {from} -> {to} is not reachable in the static \
             lock-order graph: the analysis under-approximates reality \
             (a lock site it cannot see, or a summary that stopped \
             propagating)"
        );
    }

    // The deferred metric publish (kept out of named_lock so the witness
    // never takes the registry lock while witnessing it).
    obs::publish_witness_metrics();
    let snapshot = obs::registry().snapshot();
    let gauge = snapshot
        .gauges
        .iter()
        .find(|(k, _)| k == "obs.lock_witness_edges")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    assert!(
        gauge >= edges.len() as f64,
        "obs.lock_witness_edges gauge ({gauge}) lags the witnessed edge set ({})",
        edges.len()
    );
}
