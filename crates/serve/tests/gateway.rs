//! End-to-end gateway behavior over real loopback HTTP: micro-batch
//! coalescing, deadline budgets, per-tenant shedding, queue overflow,
//! and hot reload under live traffic.
//!
//! Every test runs its own gateway on a private router and a fresh
//! loopback port, so they parallelize freely; metric assertions use
//! before/after deltas because the obs registry is process-global.

use skipper_core::InferSession;
use skipper_serve::{
    Gateway, GatewayConfig, ModelPool, PredictRequest, PredictResponse, SloConfig, SloStatus,
    TenantConfig, TenantsResponse,
};
use skipper_snn::{custom_net, save_params, ModelConfig, SpikingNetwork};
use skipper_tensor::{Tensor, XorShiftRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const T: usize = 4;
const SHAPE: [usize; 3] = [3, 8, 8];
const PER_STEP: usize = 3 * 8 * 8;

fn small_net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

/// Client-side encoding: a deterministic flat spike train, timestep-major.
fn encode(seed: u64) -> Vec<f32> {
    let mut rng = XorShiftRng::new(seed);
    let mut out = Vec::with_capacity(T * PER_STEP);
    for _ in 0..T {
        let frame = Tensor::rand([1, 3, 8, 8], &mut rng).map(|x| (x > 0.55) as i32 as f32);
        out.extend_from_slice(frame.data());
    }
    out
}

fn request_body(tenant: &str, inputs: &[f32], deadline_ms: Option<u64>) -> String {
    serde_json::to_string(&PredictRequest {
        tenant: tenant.to_string(),
        timesteps: T,
        shape: SHAPE.to_vec(),
        inputs: inputs.to_vec(),
        deadline_ms,
    })
    .unwrap()
}

/// Raw HTTP POST; returns (status, body).
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    parse_response(&response)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let raw = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    parse_response(&response)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Direct (no gateway) reference prediction for one encoded sample.
fn solo_predict(session: &InferSession, inputs: &[f32]) -> Vec<f32> {
    let steps: Vec<Tensor> = inputs
        .chunks_exact(PER_STEP)
        .map(|s| Tensor::from_vec(s.to_vec(), [1, 3, 8, 8]))
        .collect();
    session.predict(&steps).unwrap().logits.data().to_vec()
}

fn start_gateway(cfg: GatewayConfig, pool: ModelPool) -> (Gateway, SocketAddr) {
    let router = Arc::new(skipper_obs::Router::new());
    let mut gateway = Gateway::start(cfg, pool, router).unwrap();
    let addr = gateway.bind("127.0.0.1:0").unwrap();
    (gateway, addr)
}

fn counter(name: &str) -> f64 {
    skipper_obs::registry()
        .snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

#[test]
fn single_request_matches_direct_inference_bit_for_bit() {
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 1000.0, 1000.0)],
        max_delay: Duration::from_millis(2),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let inputs = encode(11);
    let (status, body) = post(addr, "/v1/predict", &request_body("acme", &inputs, None));
    assert_eq!(status, 200, "body: {body}");
    let resp: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.evaluated_steps, T);
    assert_eq!(resp.skipped_steps, 0);
    assert_eq!(resp.batch_size, 1);

    let reference = solo_predict(&InferSession::new(small_net()), &inputs);
    assert_eq!(resp.logits.len(), reference.len());
    for (a, b) in resp.logits.iter().zip(&reference) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "gateway must match direct inference"
        );
    }
    // First maximum wins, matching `argmax_rows` in the core.
    let mut best = 0usize;
    for (i, &v) in reference.iter().enumerate() {
        if v > reference[best] {
            best = i;
        }
    }
    assert_eq!(resp.class, best);
}

#[test]
fn concurrent_requests_coalesce_and_rows_stay_bit_identical() {
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 1000.0, 1000.0)],
        max_batch: 4,
        // Generous window: dispatch should trigger on batch-full, not
        // the window, once all four requests are queued.
        max_delay: Duration::from_millis(300),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let samples: Vec<Vec<f32>> = (0..4).map(|i| encode(100 + i as u64)).collect();
    let handles: Vec<_> = samples
        .iter()
        .map(|inputs| {
            let body = request_body("acme", inputs, None);
            std::thread::spawn(move || post(addr, "/v1/predict", &body))
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let reference_session = InferSession::new(small_net());
    let mut max_occupancy = 0;
    for ((status, body), inputs) in responses.iter().zip(&samples) {
        assert_eq!(*status, 200, "body: {body}");
        let resp: PredictResponse = serde_json::from_str(body).unwrap();
        max_occupancy = max_occupancy.max(resp.batch_size);
        // Row independence: riding a shared micro-batch must not change
        // a single bit of this sample's logits.
        let reference = solo_predict(&reference_session, inputs);
        for (a, b) in resp.logits.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert!(
        max_occupancy >= 2,
        "4 concurrent requests inside a 300ms window must share a batch"
    );
}

#[test]
fn deadline_budget_cuts_the_coalescing_window_short() {
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 1000.0, 1000.0)],
        max_batch: 64,
        // A pathological window: without the deadline cutoff this lone
        // request would coalesce for 30 s.
        max_delay: Duration::from_secs(30),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let inputs = encode(7);
    let started = Instant::now();
    let (status, body) = post(
        addr,
        "/v1/predict",
        &request_body("acme", &inputs, Some(300)),
    );
    let elapsed = started.elapsed();
    assert_eq!(status, 200, "body: {body}");
    assert!(
        elapsed < Duration::from_secs(5),
        "batching delayed a 300ms-deadline request by {elapsed:?}"
    );
    let resp: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.batch_size, 1);
}

#[test]
fn tenant_overload_sheds_with_typed_429_and_spares_other_tenants() {
    let sink = skipper_obs::add_sink(Box::new(skipper_obs::NullSink));
    let shed_before = counter("serve.shed{reason=rate_limited}");
    let cfg = GatewayConfig {
        tenants: vec![
            // Effectively no refill within the test's lifetime.
            TenantConfig::new("tiny", 0.001, 2.0),
            TenantConfig::new("big", 1000.0, 1000.0),
        ],
        max_delay: Duration::from_millis(2),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let inputs = encode(21);
    let mut statuses = Vec::new();
    for _ in 0..6 {
        let (status, body) = post(addr, "/v1/predict", &request_body("tiny", &inputs, None));
        if status != 200 {
            assert_eq!(status, 429, "body: {body}");
            assert!(body.contains("rate_limited"), "body: {body}");
        }
        statuses.push(status);
    }
    assert_eq!(&statuses[..2], &[200, 200], "burst budget admits two");
    assert!(
        statuses[2..].iter().all(|&s| s == 429),
        "drained bucket must shed: {statuses:?}"
    );

    // The other tenant's bucket is untouched by tiny's overload.
    let (status, body) = post(addr, "/v1/predict", &request_body("big", &inputs, None));
    assert_eq!(status, 200, "body: {body}");

    // Unknown tenants are a client error, not a rate limit.
    let (status, body) = post(addr, "/v1/predict", &request_body("nobody", &inputs, None));
    assert_eq!(status, 400, "body: {body}");

    assert!(counter("serve.shed{reason=rate_limited}") >= shed_before + 4.0);
    skipper_obs::remove_sink(sink);
}

#[test]
fn queue_overflow_sheds_with_typed_503() {
    let sink = skipper_obs::add_sink(Box::new(skipper_obs::NullSink));
    let shed_before = counter("serve.shed{reason=queue_full}");
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 1000.0, 1000.0)],
        // Huge batch + long window: requests pile up in the queue, and
        // the 2-deep queue sheds the rest.
        max_batch: 64,
        max_delay: Duration::from_millis(400),
        queue_cap: 2,
        deadline: Duration::from_secs(5),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let handles: Vec<_> = (0..6)
        .map(|i| {
            let body = request_body("acme", &encode(300 + i as u64), None);
            std::thread::spawn(move || post(addr, "/v1/predict", &body))
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let ok = responses.iter().filter(|(s, _)| *s == 200).count();
    let overloaded = responses
        .iter()
        .filter(|(s, b)| *s == 503 && b.contains("overloaded"))
        .count();
    assert_eq!(
        ok, 2,
        "queue capacity bounds the served requests: {responses:?}"
    );
    assert_eq!(overloaded, 4, "the rest shed as overloaded: {responses:?}");
    assert!(counter("serve.shed{reason=queue_full}") >= shed_before + 4.0);
    skipper_obs::remove_sink(sink);
}

#[test]
fn hot_reload_swaps_weights_mid_traffic_without_failing_requests() {
    let dir = std::env::temp_dir().join(format!(
        "skipper-serve-reload-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.skw");
    save_params(small_net().params(), &path).unwrap();

    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("acme", 10_000.0, 10_000.0)],
        max_delay: Duration::from_millis(2),
        reload_poll: Duration::from_millis(30),
        ..GatewayConfig::default()
    };
    let pool = ModelPool::watching(Box::new(small_net), &path, None).unwrap();
    let (gateway, addr) = start_gateway(cfg, pool);

    // Continuous traffic while the weights change underneath.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let inputs = encode(400 + c as u64);
                let mut served = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, body) =
                        post(addr, "/v1/predict", &request_body("acme", &inputs, None));
                    assert_eq!(status, 200, "in-flight request failed mid-reload: {body}");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Train a clearly different model and overwrite the watched file.
    let mut trainer =
        skipper_core::TrainSession::builder(small_net(), skipper_core::Method::Bptt, T)
            .optimizer(Box::new(skipper_snn::Adam::new(0.05)))
            .workers(1)
            .build()
            .unwrap();
    let train_inputs: Vec<Tensor> = encode(5)
        .chunks_exact(PER_STEP)
        .map(|s| Tensor::from_vec(s.to_vec(), [1, 3, 8, 8]))
        .collect();
    for _ in 0..3 {
        trainer.train_batch(&train_inputs, &[3]);
    }
    std::thread::sleep(Duration::from_millis(25));
    save_params(trainer.net().params(), &path).unwrap();

    // Wait for the pool to pick it up while traffic keeps flowing.
    let waited = Instant::now();
    while gateway.pool().reloads() == 0 {
        assert!(
            waited.elapsed() < Duration::from_secs(10),
            "reload never happened"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for c in clients {
        assert!(c.join().unwrap() > 0, "client never got a response");
    }

    // Post-reload predictions match a fresh session on the new weights.
    let inputs = encode(77);
    let (status, body) = post(addr, "/v1/predict", &request_body("acme", &inputs, None));
    assert_eq!(status, 200, "body: {body}");
    let resp: PredictResponse = serde_json::from_str(&body).unwrap();
    let mut reference_session = InferSession::new(small_net());
    reference_session.load_weights(&path).unwrap();
    let reference = solo_predict(&reference_session, &inputs);
    for (a, b) in resp.logits.iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits(), "reloaded weights must serve");
    }
    // And they differ from the boot weights, proving the swap happened.
    let boot = solo_predict(&InferSession::new(small_net()), &inputs);
    assert_ne!(resp.logits, boot, "reload must change the readout");

    drop(gateway);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_endpoint_reports_budgets_and_levels() {
    let cfg = GatewayConfig {
        tenants: vec![
            TenantConfig::new("acme", 100.0, 50.0),
            TenantConfig::new("edge", 2.0, 4.0),
        ],
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let (status, body) = get(addr, "/v1/tenants");
    assert_eq!(status, 200, "body: {body}");
    let parsed: TenantsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed.tenants.len(), 2);
    let acme = parsed.tenants.iter().find(|t| t.name == "acme").unwrap();
    assert_eq!(acme.rate_per_sec, 100.0);
    assert_eq!(acme.burst, 50.0);
    assert!(acme.tokens <= 50.0 && acme.tokens > 0.0);

    // Malformed JSON is a 400 up front, not a queue entry.
    let (status, body) = post(addr, "/v1/predict", "{not json");
    assert_eq!(status, 400, "body: {body}");
}

#[test]
fn slo_endpoint_evaluates_and_phases_attribute_request_time() {
    let sink = skipper_obs::add_sink(Box::new(skipper_obs::NullSink));
    let cfg = GatewayConfig {
        tenants: vec![TenantConfig::new("slo", 1000.0, 1000.0)],
        slo: Some(SloConfig {
            eval_period: Duration::from_millis(20),
            ..SloConfig::default()
        }),
        ..GatewayConfig::default()
    };
    let (_gateway, addr) = start_gateway(cfg, ModelPool::fixed(InferSession::new(small_net())));

    let (status, body) = post(addr, "/v1/predict", &request_body("slo", &encode(91), None));
    assert_eq!(status, 200, "body: {body}");

    // The engine evaluates every 20 ms; wait until both windows appear.
    let deadline = Instant::now() + Duration::from_secs(5);
    let slo: SloStatus = loop {
        let (status, body) = get(addr, "/slo");
        assert_eq!(status, 200, "body: {body}");
        let parsed: SloStatus = serde_json::from_str(&body).expect("/slo body parses");
        if parsed.windows.len() == 2 || Instant::now() >= deadline {
            break parsed;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(slo.windows.len(), 2, "engine never evaluated: {slo:?}");
    assert_eq!(slo.windows[0].window, "short");
    assert_eq!(slo.windows[1].window, "long");
    assert!(slo.healthy, "one fast request must not breach: {slo:?}");
    assert!(slo.windows.iter().all(|w| w.burn_rate < 1.0), "{slo:?}");

    // Phase attribution: the served request landed one sample in each
    // phase histogram, and each carries a span-id exemplar.
    let snapshot = skipper_obs::registry().snapshot();
    for phase in ["queue_wait", "batch_wait", "execute"] {
        let name = format!("serve.phase_wall_us{{phase={phase}}}");
        let hist = snapshot
            .histograms
            .iter()
            .find(|(k, _)| k == &name)
            .map(|(_, h)| h)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(hist.count() > 0, "{name} saw no samples");
        assert!(
            hist.exemplars().iter().any(|&id| id != 0),
            "{name} recorded no exemplar"
        );
    }
    skipper_obs::remove_sink(sink);
}
