//! Data-driven threshold balancing.
//!
//! With sparse inputs (event-camera data especially), Kaiming-initialised
//! synaptic currents can sit far below a fixed firing threshold, so spike
//! activity dies out after a couple of layers and no gradient signal
//! reaches the readout. The classic remedy is *weight/threshold balancing*
//! (Diehl et al. 2015, the paper's ref. \[18\]): choose each layer's
//! threshold from the actual distribution of its membrane potentials.
//!
//! [`calibrate_thresholds`] does this layer by layer: run the calibration
//! batch through the (partially calibrated) network, take a high quantile
//! of the layer's membrane potential across neurons and timesteps, and set
//! the threshold so that roughly `target_rate` of (neuron, timestep) pairs
//! fire. Earlier layers are calibrated first so that later layers see
//! realistic input activity.

use crate::error::SnnError;
use crate::network::{Module, SpikingNetwork, StepCtx};
use skipper_memprof::set_op_logging;
use skipper_tensor::Tensor;

/// Set the firing threshold of the `lif_index`-th LIF population.
///
/// # Errors
///
/// Returns [`SnnError::Mismatch`] when `lif_index` is out of range for
/// this network.
///
/// # Panics
///
/// Panics if `theta` is not positive (a programmer error, not a
/// recoverable condition).
pub fn set_threshold(
    net: &mut SpikingNetwork,
    lif_index: usize,
    theta: f32,
) -> Result<(), SnnError> {
    assert!(theta > 0.0, "threshold must be positive");
    let mut idx = 0usize;
    for m in net.modules_mut() {
        let units: Vec<&mut crate::network::LifUnit> = match m {
            Module::ConvLif { lif, .. } | Module::LinearLif { lif, .. } => vec![lif],
            Module::Residual { lif1, lif2, .. } => vec![lif1, lif2],
            _ => vec![],
        };
        for u in units {
            if idx == lif_index {
                u.cfg.threshold = theta;
                return Ok(());
            }
            idx += 1;
        }
    }
    Err(SnnError::Mismatch(format!(
        "lif index {lif_index} out of range ({idx} populations)"
    )))
}

/// Balance every layer's threshold on `inputs` (a spike sequence of one
/// calibration batch) so that roughly `target_rate` of (neuron, timestep)
/// pairs fire. Returns the chosen thresholds.
///
/// # Panics
///
/// Panics if `inputs` is empty or `target_rate` is outside `(0, 1)`.
pub fn calibrate_thresholds(
    net: &mut SpikingNetwork,
    inputs: &[Tensor],
    target_rate: f32,
) -> Vec<f32> {
    assert!(!inputs.is_empty(), "need at least one calibration timestep");
    assert!(
        (0.0..1.0).contains(&target_rate) && target_rate > 0.0,
        "target rate in (0,1)"
    );
    let layers = net.spiking_layer_count();
    let batch = inputs[0].shape()[0];
    let was_logging = set_op_logging(false); // calibration is not a kernel cost
    let mut thresholds = Vec::with_capacity(layers);
    for l in 0..layers {
        // Forward pass with layers < l already calibrated.
        let mut state = net.init_state(batch);
        let mut potentials: Vec<f32> = Vec::new();
        for (t, input) in inputs.iter().enumerate() {
            let _ = net.step_infer(input, &mut state, &StepCtx::eval(t));
            potentials.extend_from_slice(state.mems[l].data());
        }
        potentials.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((1.0 - target_rate) as f64 * potentials.len() as f64) as usize;
        let theta = potentials[rank.min(potentials.len() - 1)].max(1e-3);
        // lint:allow(panic): `l` enumerates this net's own LIF populations, so it is in range
        set_threshold(net, l, theta).expect("lif index enumerated from this net");
        thresholds.push(theta);
    }
    set_op_logging(was_logging);
    thresholds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{lenet5, ModelConfig};
    use crate::network::NetworkState;
    use skipper_tensor::XorShiftRng;

    fn sparse_inputs(timesteps: usize, batch: usize) -> Vec<Tensor> {
        let mut rng = XorShiftRng::new(7);
        (0..timesteps)
            .map(|_| Tensor::rand([batch, 2, 16, 16], &mut rng).map(|x| (x > 0.97) as i32 as f32))
            .collect()
    }

    fn total_rate(net: &SpikingNetwork, inputs: &[Tensor], layer: usize) -> f64 {
        let batch = inputs[0].shape()[0];
        let mut state: NetworkState = net.init_state(batch);
        let mut sum = 0.0f64;
        let mut n = 0.0f64;
        for (t, input) in inputs.iter().enumerate() {
            let _ = net.step_infer(input, &mut state, &StepCtx::eval(t));
            sum += state.spikes[layer].sum();
            n += state.spikes[layer].numel() as f64;
        }
        sum / n
    }

    #[test]
    fn calibration_revives_dead_deep_layers() {
        let mut net = lenet5(&ModelConfig {
            input_hw: 16,
            in_channels: 2,
            num_classes: 11,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let inputs = sparse_inputs(12, 2);
        let deep = net.spiking_layer_count() - 1;
        let before = total_rate(&net, &inputs, deep);
        let thresholds = calibrate_thresholds(&mut net, &inputs, 0.08);
        let after = total_rate(&net, &inputs, deep);
        assert_eq!(thresholds.len(), 5);
        assert!(
            after > before && after > 0.01,
            "deep layer rate {before} -> {after}"
        );
        // The achieved rate should be within a factor of a few of target.
        assert!(after < 0.5, "rate {after} not runaway");
    }

    #[test]
    fn set_threshold_targets_the_right_population() {
        let mut net = lenet5(&ModelConfig {
            input_hw: 16,
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        set_threshold(&mut net, 2, 0.123).unwrap();
        let mut seen = Vec::new();
        for m in net.modules() {
            if let Module::ConvLif { lif, .. } = m {
                seen.push(lif.cfg.threshold);
            }
        }
        assert_eq!(seen[2], 0.123);
        assert_ne!(seen[1], 0.123);
    }

    #[test]
    fn set_threshold_rejects_bad_index() {
        let mut net = lenet5(&ModelConfig {
            width_mult: 0.25,
            ..ModelConfig::default()
        });
        let err = set_threshold(&mut net, 99, 1.0).unwrap_err();
        assert!(err.to_string().contains("out of range"), "got: {err}");
    }
}
