//! Synapse layers: the weighted connections `W^l · o_t^{l-1}` of Eq. 1.
//!
//! Layers own [`ParamId`]s, not tensors — the weights live in a
//! [`ParamStore`] so they can be bound into many short-lived tapes (see
//! [`crate::params`]). Each layer offers a taped forward (builds graph
//! nodes) and a plain forward (used during the gradient-free first pass of
//! checkpointed training).

use crate::params::{ParamBinder, ParamId, ParamStore};
use skipper_autograd::{Graph, Var};
use skipper_tensor::{conv2d, matmul_nt, Conv2dSpec, Tensor, XorShiftRng};

fn kaiming(shape: &[usize], fan_in: usize, rng: &mut XorShiftRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::randn(shape, rng);
    t.scale_assign(std);
    t
}

/// A 2-D convolutional synapse.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    weight: ParamId,
    bias: Option<ParamId>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
}

impl Conv2dLayer {
    /// Create a `kernel x kernel` convolution with Kaiming-initialised
    /// weights registered in `store`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut XorShiftRng,
    ) -> Conv2dLayer {
        let fan_in = in_channels * kernel * kernel;
        let w = kaiming(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        let weight = store.add(format!("{name}.weight"), w);
        let bias = bias.then(|| store.add(format!("{name}.bias"), Tensor::zeros(out_channels)));
        Conv2dLayer {
            weight,
            bias,
            spec,
            in_channels,
            out_channels,
            kernel,
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride/padding specification.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Weight parameter id.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Spatial output size for an `(h, w)` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            self.spec.out_dim(h, self.kernel),
            self.spec.out_dim(w, self.kernel),
        )
    }

    /// Taped forward.
    pub fn forward_taped(
        &self,
        g: &mut Graph,
        binder: &mut ParamBinder,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let w = binder.bind(g, store, self.weight);
        let b = self.bias.map(|b| binder.bind(g, store, b));
        g.conv2d(x, w, b, self.spec)
    }

    /// Plain forward (no graph).
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        conv2d(
            x,
            store.value(self.weight),
            self.bias.map(|b| store.value(b)),
            self.spec,
        )
    }
}

/// A dense (fully connected) synapse, weights `[out, in]`.
#[derive(Debug, Clone)]
pub struct LinearLayer {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl LinearLayer {
    /// Create a dense layer with Kaiming-initialised weights registered in
    /// `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut XorShiftRng,
    ) -> LinearLayer {
        let w = kaiming(&[out_features, in_features], in_features, rng);
        let weight = store.add(format!("{name}.weight"), w);
        let bias = bias.then(|| store.add(format!("{name}.bias"), Tensor::zeros(out_features)));
        LinearLayer {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight parameter id.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Taped forward.
    pub fn forward_taped(
        &self,
        g: &mut Graph,
        binder: &mut ParamBinder,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let w = binder.bind(g, store, self.weight);
        let b = self.bias.map(|b| binder.bind(g, store, b));
        g.linear(x, w, b)
    }

    /// Plain forward (no graph).
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut out = matmul_nt(x, store.value(self.weight));
        if let Some(bid) = self.bias {
            let bias = store.value(bid);
            let (rows, cols) = out.shape().as_2d();
            let od = out.data_mut();
            for r in 0..rows {
                for (c, &bv) in bias.data().iter().enumerate() {
                    od[r * cols + c] += bv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_taped_matches_infer() {
        let mut rng = XorShiftRng::new(31);
        let mut store = ParamStore::new();
        let layer = Conv2dLayer::new(
            &mut store,
            "c1",
            2,
            3,
            3,
            Conv2dSpec::padded(1),
            true,
            &mut rng,
        );
        let x = Tensor::randn([2, 2, 5, 5], &mut rng);
        let plain = layer.forward_infer(&store, &x);
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(&store);
        let xv = g.leaf(x.clone(), false);
        let out = layer.forward_taped(&mut g, &mut binder, &store, xv);
        assert!(g.value(out).allclose(&plain, 1e-5));
        assert_eq!(plain.shape().dims(), &[2, 3, 5, 5]);
    }

    #[test]
    fn linear_taped_matches_infer() {
        let mut rng = XorShiftRng::new(32);
        let mut store = ParamStore::new();
        let layer = LinearLayer::new(&mut store, "fc", 6, 4, true, &mut rng);
        let x = Tensor::randn([3, 6], &mut rng);
        let plain = layer.forward_infer(&store, &x);
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(&store);
        let xv = g.leaf(x.clone(), false);
        let out = layer.forward_taped(&mut g, &mut binder, &store, xv);
        assert!(g.value(out).allclose(&plain, 1e-5));
        assert_eq!(plain.shape().dims(), &[3, 4]);
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = XorShiftRng::new(33);
        let mut store = ParamStore::new();
        let small = Conv2dLayer::new(
            &mut store,
            "a",
            4,
            8,
            3,
            Conv2dSpec::default(),
            false,
            &mut rng,
        );
        let big = Conv2dLayer::new(
            &mut store,
            "b",
            64,
            8,
            3,
            Conv2dSpec::default(),
            false,
            &mut rng,
        );
        let var = |id: ParamId| {
            let t = store.value(id);
            t.map(|x| x * x).mean()
        };
        let vs = var(small.weight_id());
        let vb = var(big.weight_id());
        assert!(
            vs > 5.0 * vb,
            "fan-in 36 variance {vs} should dwarf fan-in 576 variance {vb}"
        );
    }

    #[test]
    fn out_hw_arithmetic() {
        let mut rng = XorShiftRng::new(34);
        let mut store = ParamStore::new();
        let layer = Conv2dLayer::new(
            &mut store,
            "c",
            1,
            1,
            3,
            Conv2dSpec {
                stride: 2,
                padding: 1,
            },
            false,
            &mut rng,
        );
        assert_eq!(layer.out_hw(8, 8), (4, 4));
    }
}
