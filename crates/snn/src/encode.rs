//! Input encoders: frames → spike-tensor sequences.
//!
//! The paper converts CIFAR-10/100 frames to spikes with Poisson rate
//! encoding (Section VII) and feeds DVS/N-MNIST event data as binned spike
//! frames (binning lives in `skipper-data`, next to the event generators).
//! Encoded sequences are booked under [`Category::Input`] — the "input"
//! share of the paper's memory breakdowns.
//!
//! [`Category::Input`]: skipper_memprof::Category::Input

use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::{Tensor, XorShiftRng};

/// Anything that turns a batch of frames `[B,C,H,W]` into `T` spike
/// tensors of the same shape.
pub trait Encoder {
    /// Encode `frames` into a length-`timesteps` spike sequence.
    fn encode(&self, frames: &Tensor, timesteps: usize, rng: &mut XorShiftRng) -> Vec<Tensor>;
}

/// Poisson rate encoding: pixel intensity `x ∈ [0,1]` fires each timestep
/// with probability `gain·x` (independent across time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonEncoder {
    /// Firing-probability multiplier.
    pub gain: f32,
}

impl Default for PoissonEncoder {
    fn default() -> Self {
        PoissonEncoder { gain: 1.0 }
    }
}

impl Encoder for PoissonEncoder {
    fn encode(&self, frames: &Tensor, timesteps: usize, rng: &mut XorShiftRng) -> Vec<Tensor> {
        let _cat = CategoryGuard::new(Category::Input);
        let src = frames.data();
        (0..timesteps)
            .map(|_| {
                let data = src
                    .iter()
                    .map(|&x| {
                        let p = (self.gain * x).clamp(0.0, 1.0);
                        if rng.next_f32() < p {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                Tensor::from_vec(data, frames.shape().clone())
            })
            .collect()
    }
}

/// Time-to-first-spike (latency) encoding: each pixel fires exactly once,
/// earlier for brighter values; zero pixels never fire.
///
/// Latency codes are the sparsest rate-free alternative in the SNN
/// literature; they exercise the time-skipping machinery with a very
/// different temporal activity profile (activity concentrated early).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEncoder {
    /// Fraction of the horizon used for the code (the rest stays silent).
    pub window: f32,
}

impl Default for LatencyEncoder {
    fn default() -> Self {
        LatencyEncoder { window: 1.0 }
    }
}

impl Encoder for LatencyEncoder {
    fn encode(&self, frames: &Tensor, timesteps: usize, _rng: &mut XorShiftRng) -> Vec<Tensor> {
        let _cat = CategoryGuard::new(Category::Input);
        let horizon = ((timesteps as f32 * self.window.clamp(0.0, 1.0)) as usize).max(1);
        let src = frames.data();
        // fire_time = (1 - x)·(horizon-1), brighter → earlier.
        let fire: Vec<Option<usize>> = src
            .iter()
            .map(|&x| {
                if x <= 0.0 {
                    None
                } else {
                    Some(((1.0 - x.clamp(0.0, 1.0)) * (horizon - 1) as f32).round() as usize)
                }
            })
            .collect();
        (0..timesteps)
            .map(|t| {
                let data = fire
                    .iter()
                    .map(|&f| if f == Some(t) { 1.0 } else { 0.0 })
                    .collect();
                Tensor::from_vec(data, frames.shape().clone())
            })
            .collect()
    }
}

/// Repeats the analog frame at every timestep (direct-input coding; cheap
/// shared storage, useful for tests and constant-current experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepeatEncoder;

impl Encoder for RepeatEncoder {
    fn encode(&self, frames: &Tensor, timesteps: usize, _rng: &mut XorShiftRng) -> Vec<Tensor> {
        let _cat = CategoryGuard::new(Category::Input);
        let owned = frames.deep_clone();
        (0..timesteps).map(|_| owned.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_tracks_intensity() {
        let frames = Tensor::from_vec(vec![0.0, 0.25, 0.75, 1.0], [1, 1, 2, 2]);
        let mut rng = XorShiftRng::new(50);
        let seq = PoissonEncoder::default().encode(&frames, 2000, &mut rng);
        assert_eq!(seq.len(), 2000);
        let mut counts = [0.0f64; 4];
        for t in &seq {
            for (c, &v) in counts.iter_mut().zip(t.data()) {
                assert!(v == 0.0 || v == 1.0, "spikes are binary");
                *c += v as f64;
            }
        }
        let rates: Vec<f64> = counts.iter().map(|c| c / 2000.0).collect();
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 0.25).abs() < 0.05);
        assert!((rates[2] - 0.75).abs() < 0.05);
        assert!((rates[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gain_clamps_probability() {
        let frames = Tensor::full([1, 1, 1, 1], 0.9);
        let mut rng = XorShiftRng::new(51);
        let seq = PoissonEncoder { gain: 5.0 }.encode(&frames, 100, &mut rng);
        assert!(seq.iter().all(|t| t.data()[0] == 1.0));
    }

    #[test]
    fn repeat_encoder_shares_storage() {
        let frames = Tensor::ones([1, 1, 2, 2]);
        let mut rng = XorShiftRng::new(52);
        let seq = RepeatEncoder.encode(&frames, 5, &mut rng);
        assert!(seq[0].shares_storage(&seq[4]));
        assert_eq!(seq[0].data(), frames.data());
    }

    #[test]
    fn latency_encoder_fires_once_brighter_earlier() {
        let frames = Tensor::from_vec(vec![1.0, 0.5, 0.0], [1, 1, 1, 3]);
        let mut rng = XorShiftRng::new(54);
        let seq = LatencyEncoder::default().encode(&frames, 10, &mut rng);
        let mut fire_times = [None::<usize>; 3];
        let mut totals = [0u32; 3];
        for (t, frame) in seq.iter().enumerate() {
            for (i, &v) in frame.data().iter().enumerate() {
                if v == 1.0 {
                    totals[i] += 1;
                    fire_times[i].get_or_insert(t);
                }
            }
        }
        assert_eq!(totals, [1, 1, 0], "each nonzero pixel fires exactly once");
        assert!(
            fire_times[0].unwrap() < fire_times[1].unwrap(),
            "brighter first"
        );
        assert_eq!(fire_times[0].unwrap(), 0);
    }

    #[test]
    fn latency_window_confines_activity() {
        let frames = Tensor::from_vec(vec![0.1], [1, 1, 1, 1]);
        let mut rng = XorShiftRng::new(55);
        let seq = LatencyEncoder { window: 0.5 }.encode(&frames, 20, &mut rng);
        let last_active = seq
            .iter()
            .enumerate()
            .filter(|(_, f)| f.sum() > 0.0)
            .map(|(t, _)| t)
            .max()
            .unwrap();
        assert!(last_active < 10, "activity confined to the first half");
    }

    #[test]
    fn encoded_input_booked_under_input_category() {
        use skipper_memprof as mp;
        mp::reset_all();
        let frames = Tensor::ones([1, 1, 4, 4]);
        let mut rng = XorShiftRng::new(53);
        let seq = PoissonEncoder::default().encode(&frames, 3, &mut rng);
        assert_eq!(
            mp::snapshot().live(mp::Category::Input),
            3 * 16 * 4,
            "3 timesteps x 16 px x 4 B"
        );
        drop(seq);
        drop(frames);
    }
}
