//! Typed errors for the SNN substrate's fallible paths.
//!
//! Everything that touches the filesystem or parses an on-disk container
//! returns [`SnnError`] instead of panicking, so training harnesses can
//! distinguish an unreadable file from a corrupt one from a model that
//! simply does not match the stored weights, and react accordingly
//! (retry, refuse to resume, fall back to fresh initialisation, …).
//! Panics remain only for programmer-error invariants documented on the
//! individual functions (e.g. structurally impossible method
//! configurations).

use std::io;

/// Errors raised by the `skipper-snn` crate.
#[derive(Debug)]
pub enum SnnError {
    /// An underlying I/O operation failed (file missing, permission,
    /// short read against the OS, …).
    Io(io::Error),
    /// The bytes are not a valid container of the expected format:
    /// bad magic, unsupported version, truncation, CRC mismatch or an
    /// implausible field. The string names the offending record.
    Format(String),
    /// The container parsed fine but does not match the model it is
    /// being applied to (missing/unknown parameter, shape mismatch).
    Mismatch(String),
}

impl std::fmt::Display for SnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnnError::Io(e) => write!(f, "i/o error: {e}"),
            SnnError::Format(detail) => write!(f, "malformed container: {detail}"),
            SnnError::Mismatch(detail) => write!(f, "model mismatch: {detail}"),
        }
    }
}

impl std::error::Error for SnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnnError {
    fn from(e: io::Error) -> SnnError {
        // An unexpected EOF mid-record means the file was cut short, which
        // callers should see as corruption, not as an OS-level failure.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnnError::Format("unexpected end of file (truncated?)".into())
        } else {
            SnnError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_becomes_format_error() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(SnnError::from(eof), SnnError::Format(_)));
        let denied = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(SnnError::from(denied), SnnError::Io(_)));
    }

    #[test]
    fn display_is_descriptive() {
        let e = SnnError::Mismatch("shape mismatch for 'conv1.weight'".into());
        assert!(e.to_string().contains("conv1.weight"));
    }
}
