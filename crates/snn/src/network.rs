//! The [`SpikingNetwork`] container: a feed-forward (optionally residual)
//! stack of spiking modules, unrolled over time by the trainers.
//!
//! A network exposes its per-timestep forward in two forms:
//!
//! * [`SpikingNetwork::step_infer`] — plain tensors, no graph. Used for the
//!   gradient-free first forward pass of checkpointed training and for
//!   evaluation. Intermediate tensors die immediately; only the neuron
//!   state survives.
//! * [`SpikingNetwork::step_taped`] — appends nodes to a
//!   [`Graph`]; every intermediate value is retained by the tape (the
//!   "stored activations" whose footprint the paper measures).
//!
//! Both forms also report the timestep's network-wide spike count — the
//! Spike Activity Monitor (SAM) statistic `s_t = Σ_l sum(o_t^l)` of the
//! paper's Eq. 4.
//!
//! Because the membrane reset is detached (see [`crate::lif`]), the neuron
//! state carried between timesteps is `(U, o)` as *values*; only `U`
//! carries gradient across a checkpoint boundary.

use crate::layers::{Conv2dLayer, LinearLayer};
use crate::lif::{lif_step_infer, lif_step_taped, LifConfig};
use crate::params::{ParamBinder, ParamStore};
use skipper_autograd::{Graph, Var};
use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::{avg_pool2d, Tensor, XorShiftRng};

/// A LIF population attached to a synapse layer.
#[derive(Debug, Clone)]
pub struct LifUnit {
    /// Neuron parameters.
    pub cfg: LifConfig,
    /// Index into the network's state vectors.
    pub state_id: usize,
}

/// One stage of a [`SpikingNetwork`].
#[derive(Debug, Clone)]
pub enum Module {
    /// Convolution → LIF (→ optional average pool).
    ConvLif {
        /// The synapse.
        conv: Conv2dLayer,
        /// The neuron population.
        lif: LifUnit,
        /// Non-overlapping pool window applied to the spikes.
        pool: Option<usize>,
    },
    /// Dense → LIF (→ optional dropout on the spikes).
    LinearLif {
        /// The synapse.
        lin: LinearLayer,
        /// The neuron population.
        lif: LifUnit,
        /// Drop probability (masks are deterministic per iteration seed so
        /// recomputation reproduces them exactly).
        dropout: Option<f32>,
    },
    /// Pre-activation residual block: `LIF₂(conv₂(LIF₁(conv₁(x))) + sc(x))`.
    Residual {
        /// First convolution of the main path.
        conv1: Conv2dLayer,
        /// Neuron after `conv1`.
        lif1: LifUnit,
        /// Second convolution of the main path.
        conv2: Conv2dLayer,
        /// `1x1` projection for channel/stride changes (`None` = identity).
        shortcut: Option<Conv2dLayer>,
        /// Neuron after the junction.
        lif2: LifUnit,
    },
    /// Standalone average pooling.
    Pool(usize),
    /// Collapse `[B,C,H,W]` to `[B,C·H·W]`.
    Flatten,
    /// Non-spiking readout integrator: produces the timestep's logit
    /// contribution. Must be the last module.
    Output(LinearLayer),
}

impl Module {
    /// Number of spiking (LIF) layers in this module.
    pub fn spiking_layers(&self) -> usize {
        match self {
            Module::ConvLif { .. } | Module::LinearLif { .. } => 1,
            Module::Residual { .. } => 2,
            Module::Pool(_) | Module::Flatten | Module::Output(_) => 0,
        }
    }
}

/// Execution context of one timestep.
#[derive(Debug, Clone, Copy)]
pub struct StepCtx {
    /// Seed fixed for the whole iteration; dropout masks derive from it so
    /// the recomputation pass reproduces the first pass exactly.
    pub iter_seed: u64,
    /// The timestep index.
    pub t: usize,
    /// Training mode (enables dropout).
    pub train: bool,
    /// Index of this tensor's first sample within the *global* batch.
    /// Zero for unsharded execution; a shard of a data-parallel engine
    /// passes its offset so per-sample randomness (dropout masks) is
    /// identical to the unsharded run over the same global batch.
    pub batch_offset: usize,
}

impl StepCtx {
    /// Training context at time `t` for an unsharded batch.
    pub fn train(iter_seed: u64, t: usize) -> StepCtx {
        StepCtx {
            iter_seed,
            t,
            train: true,
            batch_offset: 0,
        }
    }

    /// Training context at time `t` for a batch shard starting at global
    /// sample index `batch_offset`.
    pub fn train_shard(iter_seed: u64, t: usize, batch_offset: usize) -> StepCtx {
        StepCtx {
            iter_seed,
            t,
            train: true,
            batch_offset,
        }
    }

    /// Evaluation context (no dropout) at time `t`.
    pub fn eval(t: usize) -> StepCtx {
        StepCtx {
            iter_seed: 0,
            t,
            train: false,
            batch_offset: 0,
        }
    }
}

fn dropout_mask(shape: &[usize], p: f32, state_id: usize, ctx: &StepCtx) -> Tensor {
    // Seeded per (iteration, layer, timestep, global sample): each batch
    // row draws from its own stream, so a shard computes exactly the mask
    // rows the unsharded run would give its samples.
    let rows = shape[0];
    let cols: usize = shape[1..].iter().product();
    let keep = 1.0 - p;
    let inv = 1.0 / keep;
    let mut data = vec![0.0f32; rows * cols];
    for (r, row) in data.chunks_exact_mut(cols).enumerate() {
        let sample = (ctx.batch_offset + r) as u64;
        let seed = ctx
            .iter_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((state_id as u64) << 32)
            .wrapping_add(ctx.t as u64 + 1)
            .wrapping_add(sample.wrapping_mul(0xD129_9617_17B9_2C4B));
        let mut rng = XorShiftRng::new(seed);
        for v in row.iter_mut() {
            *v = if rng.next_f32() < keep { inv } else { 0.0 };
        }
    }
    Tensor::from_vec(data, shape)
}

/// Per-layer neuron state `(U, o)` as plain tensors.
///
/// Cloning is cheap (shared storage) and is exactly how a checkpoint is
/// taken: the clone keeps the storage alive after the live state moves on,
/// which is also how a framework's saved-tensor references behave.
#[derive(Debug, Clone)]
pub struct NetworkState {
    /// Membrane potentials per LIF unit.
    pub mems: Vec<Tensor>,
    /// Previous-step spikes per LIF unit.
    pub spikes: Vec<Tensor>,
}

impl NetworkState {
    /// Total bytes held (counting shared storages once per tensor).
    pub fn byte_size(&self) -> u64 {
        self.mems
            .iter()
            .chain(self.spikes.iter())
            .map(Tensor::byte_size)
            .sum()
    }
}

/// Neuron state during taped execution: membranes are graph variables (the
/// gradient path through time), previous spikes are detached values.
#[derive(Debug)]
pub struct TapedState {
    /// Membrane variables, updated every step.
    pub mems: Vec<Var>,
    /// Detached previous-step spikes.
    pub prev_spikes: Vec<Tensor>,
    /// The leaf variables the state started from (checkpoint boundary);
    /// their gradients after `backward()` are `∂L/∂U` at the boundary.
    pub initial_mems: Vec<Var>,
}

impl TapedState {
    /// Insert `state` into `g` as leaves. `requires_grad` marks membrane
    /// leaves as gradient sinks (true at checkpoint boundaries).
    pub fn from_state(g: &mut Graph, state: &NetworkState, requires_grad: bool) -> TapedState {
        let mems: Vec<Var> = state
            .mems
            .iter()
            .map(|m| g.leaf(m.clone(), requires_grad))
            .collect();
        TapedState {
            initial_mems: mems.clone(),
            mems,
            prev_spikes: state.spikes.clone(),
        }
    }

    /// Extract the current state as plain tensors.
    pub fn to_state(&self, g: &Graph) -> NetworkState {
        NetworkState {
            mems: self.mems.iter().map(|&v| g.value(v).clone()).collect(),
            spikes: self.prev_spikes.clone(),
        }
    }
}

/// Result of a plain step.
#[derive(Debug)]
pub struct StepOutput {
    /// This timestep's logit contribution `[B, classes]`.
    pub logits: Tensor,
    /// SAM statistic `s_t` (network-wide spike count).
    pub spike_sum: f64,
}

/// Result of a taped step.
#[derive(Debug)]
pub struct TapedStepOutput {
    /// This timestep's logit contribution (graph variable).
    pub logits: Var,
    /// SAM statistic `s_t`.
    pub spike_sum: f64,
}

/// A complete spiking network: modules + parameters + shape metadata.
#[derive(Debug)]
pub struct SpikingNetwork {
    name: String,
    modules: Vec<Module>,
    params: ParamStore,
    state_shapes: Vec<Vec<usize>>,
    input_shape: Vec<usize>,
    num_classes: usize,
}

impl SpikingNetwork {
    /// Assemble a network. Intended to be called by the constructors in
    /// [`crate::models`] (or custom builders following the same pattern).
    ///
    /// # Panics
    ///
    /// Panics if the last module is not [`Module::Output`] or if
    /// `state_shapes` does not cover every LIF unit.
    pub fn from_parts(
        name: impl Into<String>,
        modules: Vec<Module>,
        params: ParamStore,
        state_shapes: Vec<Vec<usize>>,
        input_shape: Vec<usize>,
        num_classes: usize,
    ) -> SpikingNetwork {
        assert!(
            matches!(modules.last(), Some(Module::Output(_))),
            "last module must be the readout"
        );
        let lif_units: usize = modules.iter().map(Module::spiking_layers).sum();
        assert_eq!(state_shapes.len(), lif_units, "state shape per LIF unit");
        SpikingNetwork {
            name: name.into(),
            modules,
            params,
            state_shapes,
            input_shape,
            num_classes,
        }
    }

    /// Network name (e.g. `"vgg5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage-sharing view of this network for a worker thread.
    ///
    /// Weights are Arc clones of the originals (no bytes are booked with
    /// the memory tracker), so the view is read-consistent with the main
    /// copy for the duration of an iteration. Gradient accumulation must
    /// not go through the view — shards harvest into
    /// [`crate::params::ShardGrads`] instead.
    pub fn share(&self) -> SpikingNetwork {
        SpikingNetwork {
            name: self.name.clone(),
            modules: self.modules.clone(),
            params: self.params.share(),
            state_shapes: self.state_shapes.clone(),
            input_shape: self.input_shape.clone(),
            num_classes: self.num_classes,
        }
    }

    /// The modules, in execution order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Mutable module access (threshold calibration and similar surgery).
    pub fn modules_mut(&mut self) -> &mut [Module] {
        &mut self.modules
    }

    /// The parameter store.
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter store (optimizers, auxiliary classifiers).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Input shape per sample, `[C, H, W]`.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// `L_n`: the number of spiking layers (the paper's constraint
    /// parameter in Eq. 7).
    pub fn spiking_layer_count(&self) -> usize {
        self.modules.iter().map(Module::spiking_layers).sum()
    }

    /// Total trainable scalars.
    pub fn param_scalars(&self) -> u64 {
        self.params.scalar_count()
    }

    /// State shapes (per sample) of each LIF unit.
    pub fn state_shapes(&self) -> &[Vec<usize>] {
        &self.state_shapes
    }

    /// Per-sample scalar elements of the full neuron state `(U, o)`.
    pub fn state_elems_per_sample(&self) -> u64 {
        2 * self
            .state_shapes
            .iter()
            .map(|s| s.iter().product::<usize>() as u64)
            .sum::<u64>()
    }

    /// Zeroed neuron state for a batch (booked as activations).
    pub fn init_state(&self, batch: usize) -> NetworkState {
        let _cat = CategoryGuard::new(Category::Activations);
        let make = |shape: &Vec<usize>| {
            let mut dims = vec![batch];
            dims.extend_from_slice(shape);
            Tensor::zeros(dims)
        };
        NetworkState {
            mems: self.state_shapes.iter().map(make).collect(),
            spikes: self.state_shapes.iter().map(make).collect(),
        }
    }

    /// Scalar elements appended to a tape by one [`step_taped`] call, per
    /// sample — the analytic activation-cost `A` used to project the
    /// paper's Fig. 4/14 configurations without running them.
    ///
    /// Reshape nodes alias existing storage and are excluded; the input
    /// leaf is excluded (it is accounted as [`Category::Input`]).
    ///
    /// [`step_taped`]: SpikingNetwork::step_taped
    pub fn per_step_graph_elems_per_sample(&self) -> u64 {
        let mut total: u64 = 0;
        let mut lif = 0usize;
        let elems = |shape: &[usize]| shape.iter().product::<usize>() as u64;
        let mut cur: u64 = elems(&self.input_shape);
        for m in &self.modules {
            match m {
                Module::ConvLif { pool, .. } => {
                    let out = elems(&self.state_shapes[lif]);
                    lif += 1;
                    total += 4 * out; // conv, pre, U, o
                    if let Some(k) = pool {
                        let pooled = out / (k * k) as u64;
                        total += pooled;
                        cur = pooled;
                    } else {
                        cur = out;
                    }
                }
                Module::LinearLif { dropout, .. } => {
                    let out = elems(&self.state_shapes[lif]);
                    lif += 1;
                    total += 4 * out;
                    if dropout.is_some() {
                        total += 2 * out; // mask + masked spikes
                    }
                    cur = out;
                }
                Module::Residual { shortcut, .. } => {
                    let mid = elems(&self.state_shapes[lif]);
                    let out = elems(&self.state_shapes[lif + 1]);
                    lif += 2;
                    total += 4 * mid; // conv1, pre1, U1, o1
                    total += out; // conv2
                    if shortcut.is_some() {
                        total += out; // projection
                    }
                    total += out; // junction add
                    total += 3 * out; // pre2, U2, o2
                    cur = out;
                }
                Module::Pool(k) => {
                    cur /= (k * k) as u64;
                    total += cur;
                }
                Module::Flatten => {} // aliasing reshape
                Module::Output(lin) => {
                    total += lin.out_features() as u64;
                }
            }
        }
        total
    }

    /// Forward FLOPs of one timestep per sample, from shapes alone — the
    /// analytic counterpart of the kernel log, used to project
    /// configurations too large to execute (paper Fig. 4).
    pub fn per_step_flops_per_sample(&self) -> f64 {
        let elems = |shape: &[usize]| shape.iter().product::<usize>() as f64;
        let conv_flops = |conv: &Conv2dLayer, out_elems: f64| {
            2.0 * (conv.in_channels() * conv.kernel() * conv.kernel()) as f64 * out_elems
        };
        let mut total = 0.0f64;
        let mut lif = 0usize;
        for m in &self.modules {
            match m {
                Module::ConvLif { conv, pool, .. } => {
                    let out = elems(&self.state_shapes[lif]);
                    lif += 1;
                    total += conv_flops(conv, out) + 4.0 * out;
                    if let Some(k) = pool {
                        total += out / (k * k) as f64;
                    }
                }
                Module::LinearLif { lin, .. } => {
                    let out = elems(&self.state_shapes[lif]);
                    lif += 1;
                    total += 2.0 * (lin.in_features() * lin.out_features()) as f64 + 4.0 * out;
                }
                Module::Residual {
                    conv1,
                    conv2,
                    shortcut,
                    ..
                } => {
                    let mid = elems(&self.state_shapes[lif]);
                    let out = elems(&self.state_shapes[lif + 1]);
                    lif += 2;
                    total += conv_flops(conv1, mid) + 4.0 * mid;
                    total += conv_flops(conv2, out);
                    if let Some(sc) = shortcut {
                        total += conv_flops(sc, out);
                    }
                    total += out + 4.0 * out; // junction add + LIF
                }
                Module::Pool(_) | Module::Flatten => {}
                Module::Output(lin) => {
                    total += 2.0 * (lin.in_features() * lin.out_features()) as f64;
                }
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // Plain (gradient-free) step
    // ------------------------------------------------------------------

    /// Advance the network one timestep without building a graph.
    ///
    /// Updates `state` in place and returns the logit contribution plus the
    /// SAM spike count.
    pub fn step_infer(
        &self,
        input: &Tensor,
        state: &mut NetworkState,
        ctx: &StepCtx,
    ) -> StepOutput {
        let (_, logits, spike_sum) =
            self.step_infer_modules(input.clone(), state, ctx, 0..self.modules.len());
        StepOutput {
            // lint:allow(panic): network validation guarantees a trailing Output layer that sets logits
            logits: logits.expect("network ends with Output"),
            spike_sum,
        }
    }

    /// Run only the modules in `range` for one timestep (no graph), taking
    /// `x` as the subnetwork input. Returns `(output, logits, spike_sum)`;
    /// `logits` is `Some` only when the range contains the readout.
    ///
    /// This is the building block for locally-supervised training
    /// (TBPTT-LBP), where gradient-isolated blocks execute separately.
    pub fn step_infer_modules(
        &self,
        input: Tensor,
        state: &mut NetworkState,
        ctx: &StepCtx,
        range: std::ops::Range<usize>,
    ) -> (Tensor, Option<Tensor>, f64) {
        let _cat = CategoryGuard::new(Category::Activations);
        let mut x = input;
        let mut spike_sum = 0.0f64;
        let mut logits = None;
        for m in &self.modules[range] {
            match m {
                Module::ConvLif { conv, lif, pool } => {
                    let current = conv.forward_infer(&self.params, &x);
                    let (u, o) = lif_step_infer(
                        &lif.cfg,
                        &current,
                        &state.mems[lif.state_id],
                        &state.spikes[lif.state_id],
                    );
                    spike_sum += o.sum();
                    state.mems[lif.state_id] = u;
                    state.spikes[lif.state_id] = o.clone();
                    x = match pool {
                        Some(k) => avg_pool2d(&o, *k),
                        None => o,
                    };
                }
                Module::LinearLif { lin, lif, dropout } => {
                    let current = lin.forward_infer(&self.params, &x);
                    let (u, o) = lif_step_infer(
                        &lif.cfg,
                        &current,
                        &state.mems[lif.state_id],
                        &state.spikes[lif.state_id],
                    );
                    spike_sum += o.sum();
                    state.mems[lif.state_id] = u;
                    state.spikes[lif.state_id] = o.clone();
                    x = match dropout {
                        Some(p) if ctx.train => {
                            let mask = dropout_mask(o.shape().dims(), *p, lif.state_id, ctx);
                            o.mul(&mask)
                        }
                        _ => o,
                    };
                }
                Module::Residual {
                    conv1,
                    lif1,
                    conv2,
                    shortcut,
                    lif2,
                } => {
                    let c1 = conv1.forward_infer(&self.params, &x);
                    let (u1, o1) = lif_step_infer(
                        &lif1.cfg,
                        &c1,
                        &state.mems[lif1.state_id],
                        &state.spikes[lif1.state_id],
                    );
                    spike_sum += o1.sum();
                    state.mems[lif1.state_id] = u1;
                    state.spikes[lif1.state_id] = o1.clone();
                    let c2 = conv2.forward_infer(&self.params, &o1);
                    let sc = match shortcut {
                        Some(p) => p.forward_infer(&self.params, &x),
                        None => x.clone(),
                    };
                    let junction = c2.add(&sc);
                    let (u2, o2) = lif_step_infer(
                        &lif2.cfg,
                        &junction,
                        &state.mems[lif2.state_id],
                        &state.spikes[lif2.state_id],
                    );
                    spike_sum += o2.sum();
                    state.mems[lif2.state_id] = u2;
                    state.spikes[lif2.state_id] = o2.clone();
                    x = o2;
                }
                Module::Pool(k) => x = avg_pool2d(&x, *k),
                Module::Flatten => {
                    let b = x.shape()[0];
                    let n = x.numel() / b;
                    x = x.reshape([b, n]);
                }
                Module::Output(lin) => {
                    logits = Some(lin.forward_infer(&self.params, &x));
                }
            }
        }
        (x, logits, spike_sum)
    }

    // ------------------------------------------------------------------
    // Taped step
    // ------------------------------------------------------------------

    /// Advance the network one timestep on tape `g`.
    ///
    /// `input` is inserted as a non-gradient leaf (it shares storage with
    /// the encoded input sequence, so no new bytes are booked).
    pub fn step_taped(
        &self,
        g: &mut Graph,
        binder: &mut ParamBinder,
        input: &Tensor,
        state: &mut TapedState,
        ctx: &StepCtx,
    ) -> TapedStepOutput {
        let x = g.leaf(input.clone(), false);
        let (_, logits, spike_sum) =
            self.step_taped_modules(g, binder, x, state, ctx, 0..self.modules.len());
        TapedStepOutput {
            // lint:allow(panic): network validation guarantees a trailing Output layer that sets logits
            logits: logits.expect("network ends with Output"),
            spike_sum,
        }
    }

    /// Run only the modules in `range` for one timestep on tape `g`, taking
    /// variable `x` as the subnetwork input. Returns
    /// `(output, logits, spike_sum)`; `logits` is `Some` only when the
    /// range contains the readout. See [`step_infer_modules`].
    ///
    /// [`step_infer_modules`]: SpikingNetwork::step_infer_modules
    pub fn step_taped_modules(
        &self,
        g: &mut Graph,
        binder: &mut ParamBinder,
        x: Var,
        state: &mut TapedState,
        ctx: &StepCtx,
        range: std::ops::Range<usize>,
    ) -> (Var, Option<Var>, f64) {
        let _cat = CategoryGuard::new(Category::Activations);
        let mut x = x;
        let mut spike_sum = 0.0f64;
        let mut logits = None;
        for m in &self.modules[range] {
            match m {
                Module::ConvLif { conv, lif, pool } => {
                    let current = conv.forward_taped(g, binder, &self.params, x);
                    let prev = state.prev_spikes[lif.state_id].clone();
                    let (u, o) =
                        lif_step_taped(g, &lif.cfg, current, state.mems[lif.state_id], &prev);
                    spike_sum += g.value(o).sum();
                    state.mems[lif.state_id] = u;
                    state.prev_spikes[lif.state_id] = g.value(o).clone();
                    x = match pool {
                        Some(k) => g.avg_pool2d(o, *k),
                        None => o,
                    };
                }
                Module::LinearLif { lin, lif, dropout } => {
                    let current = lin.forward_taped(g, binder, &self.params, x);
                    let prev = state.prev_spikes[lif.state_id].clone();
                    let (u, o) =
                        lif_step_taped(g, &lif.cfg, current, state.mems[lif.state_id], &prev);
                    spike_sum += g.value(o).sum();
                    state.mems[lif.state_id] = u;
                    state.prev_spikes[lif.state_id] = g.value(o).clone();
                    x = match dropout {
                        Some(p) if ctx.train => {
                            let mask =
                                dropout_mask(g.value(o).shape().dims(), *p, lif.state_id, ctx);
                            g.mask_mul(o, mask)
                        }
                        _ => o,
                    };
                }
                Module::Residual {
                    conv1,
                    lif1,
                    conv2,
                    shortcut,
                    lif2,
                } => {
                    let c1 = conv1.forward_taped(g, binder, &self.params, x);
                    let prev1 = state.prev_spikes[lif1.state_id].clone();
                    let (u1, o1) =
                        lif_step_taped(g, &lif1.cfg, c1, state.mems[lif1.state_id], &prev1);
                    spike_sum += g.value(o1).sum();
                    state.mems[lif1.state_id] = u1;
                    state.prev_spikes[lif1.state_id] = g.value(o1).clone();
                    let c2 = conv2.forward_taped(g, binder, &self.params, o1);
                    let sc = match shortcut {
                        Some(p) => p.forward_taped(g, binder, &self.params, x),
                        None => x,
                    };
                    let junction = g.add(c2, sc);
                    let prev2 = state.prev_spikes[lif2.state_id].clone();
                    let (u2, o2) =
                        lif_step_taped(g, &lif2.cfg, junction, state.mems[lif2.state_id], &prev2);
                    spike_sum += g.value(o2).sum();
                    state.mems[lif2.state_id] = u2;
                    state.prev_spikes[lif2.state_id] = g.value(o2).clone();
                    x = o2;
                }
                Module::Pool(k) => x = g.avg_pool2d(x, *k),
                Module::Flatten => {
                    let b = g.value(x).shape()[0];
                    let n = g.value(x).numel() / b;
                    x = g.reshape(x, [b, n]);
                }
                Module::Output(lin) => {
                    logits = Some(lin.forward_taped(g, binder, &self.params, x));
                }
            }
        }
        (x, logits, spike_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{custom_net, ModelConfig};

    fn tiny() -> SpikingNetwork {
        custom_net(&ModelConfig {
            input_hw: 8,
            in_channels: 2,
            num_classes: 4,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    }

    #[test]
    fn infer_and_taped_steps_agree() {
        let net = tiny();
        let mut rng = XorShiftRng::new(44);
        let input = Tensor::rand([2, 2, 8, 8], &mut rng).map(|x| (x > 0.5) as i32 as f32);
        let ctx = StepCtx::eval(0);

        let mut state = net.init_state(2);
        let plain = net.step_infer(&input, &mut state, &ctx);

        let mut g = Graph::new();
        let mut binder = ParamBinder::new(net.params());
        let mut tstate = TapedState::from_state(&mut g, &net.init_state(2), true);
        let taped = net.step_taped(&mut g, &mut binder, &input, &mut tstate, &ctx);

        assert!(g.value(taped.logits).allclose(&plain.logits, 1e-4));
        assert_eq!(taped.spike_sum, plain.spike_sum);
        // State agrees too.
        let tnext = tstate.to_state(&g);
        for (a, b) in tnext.mems.iter().zip(&state.mems) {
            assert!(a.allclose(b, 1e-4));
        }
        for (a, b) in tnext.spikes.iter().zip(&state.spikes) {
            assert!(a.allclose(b, 1e-5));
        }
    }

    #[test]
    fn per_step_elems_matches_real_tape_exactly() {
        use skipper_memprof as mp;
        let net = tiny();
        let batch = 3usize;
        let mut rng = XorShiftRng::new(45);
        let input = Tensor::rand([batch, 2, 8, 8], &mut rng);
        let state = net.init_state(batch);
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(net.params());
        let mut tstate = TapedState::from_state(&mut g, &state, true);
        mp::reset_all(); // isolate: everything alive so far was booked earlier
        let live_before = mp::snapshot().live(mp::Category::Activations);
        let _ = net.step_taped(&mut g, &mut binder, &input, &mut tstate, &StepCtx::eval(0));
        let live_after = mp::snapshot().live(mp::Category::Activations);
        let expect = net.per_step_graph_elems_per_sample() * batch as u64 * 4;
        assert_eq!(
            live_after - live_before,
            expect,
            "analytic per-step bytes must match the tape"
        );
    }

    #[test]
    fn spiking_layer_count_and_state_shapes() {
        let net = tiny();
        assert_eq!(net.spiking_layer_count(), 3, "custom-net has conv(3)");
        assert_eq!(net.state_shapes().len(), 3);
        assert!(net.param_scalars() > 0);
    }

    #[test]
    fn dropout_masks_are_deterministic_per_iteration() {
        let a = dropout_mask(&[4, 4], 0.5, 1, &StepCtx::train(99, 3));
        let b = dropout_mask(&[4, 4], 0.5, 1, &StepCtx::train(99, 3));
        let c = dropout_mask(&[4, 4], 0.5, 1, &StepCtx::train(100, 3));
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn dropout_masks_shard_consistently_with_batch_offset() {
        // Rows [2..4) of the full-batch mask equal rows [0..2) of a shard
        // whose batch_offset is 2: sharded dropout matches unsharded.
        let full = dropout_mask(&[4, 6], 0.5, 1, &StepCtx::train(7, 2));
        let shard = dropout_mask(&[2, 6], 0.5, 1, &StepCtx::train_shard(7, 2, 2));
        assert_eq!(&full.data()[2 * 6..], shard.data());
    }

    #[test]
    fn state_checkpoint_clone_is_cheap_until_replaced() {
        let net = tiny();
        let state = net.init_state(1);
        let checkpoint = state.clone();
        for (a, b) in state.mems.iter().zip(&checkpoint.mems) {
            assert!(a.shares_storage(b));
        }
    }
}
