//! Saving and loading trained parameters.
//!
//! A deliberately simple, self-describing binary container (no external
//! format dependencies): a magic header, then one record per parameter —
//! name, shape, and little-endian `f32` data. Loading matches records to
//! the network's parameters **by name and shape**, so weights survive
//! refactors that only reorder parameters, and mismatches fail loudly
//! rather than silently corrupting a model.
//!
//! ```no_run
//! use skipper_snn::{custom_net, ModelConfig};
//! use skipper_snn::serialize::{load_params, save_params};
//!
//! # fn main() -> std::io::Result<()> {
//! let mut net = custom_net(&ModelConfig::default());
//! save_params(net.params(), "model.skw")?;
//! load_params(net.params_mut(), "model.skw")?;
//! # Ok(())
//! # }
//! ```

use crate::params::ParamStore;
use skipper_tensor::Tensor;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "SKPRW" + format version 1.
const MAGIC: &[u8; 6] = b"SKPRW\x01";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serialize every parameter of `params` to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_params(params: &ParamStore, writer: &mut impl Write) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    write_u32(writer, params.len() as u32)?;
    for p in params.iter() {
        let name = p.name().as_bytes();
        write_u32(writer, name.len() as u32)?;
        writer.write_all(name)?;
        let dims = p.value().shape().dims();
        write_u32(writer, dims.len() as u32)?;
        for &d in dims {
            write_u32(writer, d as u32)?;
        }
        for &v in p.value().data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// One deserialized parameter record.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRecord {
    /// Parameter name (e.g. `"conv3.weight"`).
    pub name: String,
    /// The stored tensor.
    pub value: Tensor,
}

/// Deserialize all parameter records from `reader`.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic header, or a malformed record.
pub fn read_params(reader: &mut impl Read) -> io::Result<Vec<ParamRecord>> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a skipper weight file (bad magic)",
        ));
    }
    let count = read_u32(reader)? as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(reader)? as usize;
        if name_len > 1 << 16 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "parameter name implausibly long",
            ));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(reader)? as usize;
        if rank > 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tensor rank implausibly high",
            ));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(reader)? as usize);
        }
        let numel: usize = dims.iter().product();
        if numel > 1 << 28 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tensor implausibly large",
            ));
        }
        let mut bytes = vec![0u8; numel * 4];
        reader.read_exact(&mut bytes)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        records.push(ParamRecord {
            name,
            value: Tensor::from_vec(data, dims),
        });
    }
    Ok(records)
}

/// Copy `records` into `params`, matching by name.
///
/// # Errors
///
/// Fails if a parameter has no record, a record has no parameter, or a
/// shape disagrees.
pub fn apply_records(params: &mut ParamStore, records: Vec<ParamRecord>) -> io::Result<()> {
    let mut by_name: HashMap<String, ParamRecord> =
        records.into_iter().map(|r| (r.name.clone(), r)).collect();
    for p in params.iter_mut() {
        let record = by_name.remove(p.name()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no saved weights for parameter '{}'", p.name()),
            )
        })?;
        if record.value.shape() != p.value().shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for '{}': saved {} vs model {}",
                    p.name(),
                    record.value.shape(),
                    p.value().shape()
                ),
            ));
        }
        p.value_mut()
            .data_mut()
            .copy_from_slice(record.value.data());
    }
    if let Some(extra) = by_name.keys().next() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("saved file contains unknown parameter '{extra}'"),
        ));
    }
    Ok(())
}

/// Save `params` to the file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_params(params: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_params(params, &mut file)?;
    file.flush()
}

/// Load the file at `path` into `params` (matching by name and shape).
///
/// # Errors
///
/// See [`read_params`] and [`apply_records`].
pub fn load_params(params: &mut ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    let records = read_params(&mut file)?;
    apply_records(params, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{custom_net, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn cfg() -> ModelConfig {
        ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn roundtrip_preserves_every_weight() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        // Load into a differently initialised twin.
        let mut twin = custom_net(&ModelConfig { seed: 999, ..cfg() });
        let a0 = twin.params().iter().next().unwrap().value().clone();
        let records = read_params(&mut buf.as_slice()).unwrap();
        apply_records(twin.params_mut(), records).unwrap();
        for (p, q) in net.params().iter().zip(twin.params().iter()) {
            assert_eq!(p.value().data(), q.value().data(), "{}", p.name());
        }
        assert_ne!(
            a0.data(),
            twin.params().iter().next().unwrap().value().data(),
            "weights must actually change"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("skipper_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.skw");
        let net = custom_net(&cfg());
        save_params(net.params(), &path).unwrap();
        let mut twin = custom_net(&ModelConfig { seed: 31337, ..cfg() });
        load_params(twin.params_mut(), &path).unwrap();
        for (p, q) in net.params().iter().zip(twin.params().iter()) {
            assert_eq!(p.value().data(), q.value().data());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_params(&mut &b"NOTSKW\x01rest"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let records = read_params(&mut buf.as_slice()).unwrap();
        // A wider twin has different shapes.
        let mut wide = custom_net(&ModelConfig {
            width_mult: 0.5,
            ..cfg()
        });
        let err = apply_records(wide.params_mut(), records).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let mut records = read_params(&mut buf.as_slice()).unwrap();
        records.pop();
        let mut twin = custom_net(&cfg());
        let err = apply_records(twin.params_mut(), records).unwrap_err();
        assert!(err.to_string().contains("no saved weights"), "{err}");
    }

    #[test]
    fn saved_model_predicts_identically() {
        use crate::network::StepCtx;
        let mut rng = XorShiftRng::new(8);
        let input = Tensor::rand([1, 3, 8, 8], &mut rng);
        let net = custom_net(&cfg());
        let mut state = net.init_state(1);
        let expect = net.step_infer(&input, &mut state, &StepCtx::eval(0));

        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let mut twin = custom_net(&ModelConfig { seed: 1234, ..cfg() });
        apply_records(twin.params_mut(), read_params(&mut buf.as_slice()).unwrap()).unwrap();
        let mut state2 = twin.init_state(1);
        let got = twin.step_infer(&input, &mut state2, &StepCtx::eval(0));
        assert!(got.logits.allclose(&expect.logits, 1e-6));
    }
}
