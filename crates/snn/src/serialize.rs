//! Saving and loading trained parameters.
//!
//! A deliberately simple, self-describing binary container (no external
//! format dependencies): a magic header, then one record per parameter —
//! name, shape, and little-endian `f32` data. Loading matches records to
//! the network's parameters **by name and shape**, so weights survive
//! refactors that only reorder parameters, and mismatches fail loudly
//! rather than silently corrupting a model.
//!
//! Format **v2** (the default for writing) appends a CRC32 to every
//! record and a trailing record count, so torn writes, bit rot and
//! truncation are detected with a description of *which* record is bad
//! instead of garbage weights. v1 files (no checksums) still load.
//!
//! ```no_run
//! use skipper_snn::{custom_net, ModelConfig};
//! use skipper_snn::serialize::{load_params, save_params};
//!
//! # fn main() -> Result<(), skipper_snn::SnnError> {
//! let mut net = custom_net(&ModelConfig::default());
//! save_params(net.params(), "model.skw")?;
//! load_params(net.params_mut(), "model.skw")?;
//! # Ok(())
//! # }
//! ```

use crate::error::SnnError;
use crate::params::ParamStore;
use skipper_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic of the legacy checksum-less format: "SKPRW" + version 1.
const MAGIC_V1: &[u8; 6] = b"SKPRW\x01";

/// File magic of the current format: "SKPRW" + version 2
/// (per-record CRC32 + trailing record count).
const MAGIC_V2: &[u8; 6] = b"SKPRW\x02";

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

/// Incremental CRC32 (the ubiquitous IEEE variant used by zip/png/gzip).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = CRC32_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC32 of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Reader adapter that hashes every byte it passes through.
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Encode one record body (everything the per-record CRC covers).
fn encode_record(name: &str, value: &Tensor) -> Vec<u8> {
    let name = name.as_bytes();
    let dims = value.shape().dims();
    let mut body = Vec::with_capacity(8 + name.len() + 4 * dims.len() + value.byte_size() as usize);
    body.extend_from_slice(&(name.len() as u32).to_le_bytes());
    body.extend_from_slice(name);
    body.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        body.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in value.data() {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

/// Serialize named tensors to `writer` as a v2 container.
///
/// This is the general building block behind [`write_params`]; snapshot
/// code uses it directly for optimizer moments and other named state.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_records<'a>(
    records: impl IntoIterator<Item = (&'a str, &'a Tensor)>,
    writer: &mut impl Write,
) -> Result<(), SnnError> {
    let records: Vec<_> = records.into_iter().collect();
    writer.write_all(MAGIC_V2)?;
    let count = records.len() as u32;
    write_u32(writer, count)?;
    for (name, value) in records {
        let body = encode_record(name, value);
        writer.write_all(&body)?;
        write_u32(writer, crc32(&body))?;
    }
    // Trailing record count: a cheap whole-file completeness check that
    // catches files cut off cleanly between records.
    write_u32(writer, count)?;
    Ok(())
}

/// Serialize every parameter of `params` to `writer` (format v2).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_params(params: &ParamStore, writer: &mut impl Write) -> Result<(), SnnError> {
    write_records(params.iter().map(|p| (p.name(), p.value())), writer)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// One deserialized parameter record.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRecord {
    /// Parameter name (e.g. `"conv3.weight"`).
    pub name: String,
    /// The stored tensor.
    pub value: Tensor,
}

/// Read one record body (shared by v1 and v2; v2 wraps `r` in a
/// [`HashingReader`] so the caller can verify the CRC afterwards).
fn read_record(r: &mut impl Read, index: usize) -> Result<ParamRecord, SnnError> {
    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 16 {
        return Err(SnnError::Format(format!(
            "record {index}: parameter name implausibly long ({name_len} bytes)"
        )));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|e| SnnError::Format(format!("record {index}: name is not UTF-8: {e}")))?;
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(SnnError::Format(format!(
            "record {index} ('{name}'): tensor rank implausibly high ({rank})"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_u32(r)? as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > 1 << 28 {
        return Err(SnnError::Format(format!(
            "record {index} ('{name}'): tensor implausibly large ({numel} elements)"
        )));
    }
    let mut bytes = vec![0u8; numel * 4];
    r.read_exact(&mut bytes)?;
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(ParamRecord {
        name,
        value: Tensor::from_vec(data, dims),
    })
}

/// Deserialize all parameter records from `reader` (v1 or v2).
///
/// # Errors
///
/// Fails on I/O errors, a bad magic header, truncation, a CRC mismatch
/// (v2) or a malformed record, naming the offending record.
pub fn read_params(reader: &mut impl Read) -> Result<Vec<ParamRecord>, SnnError> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    let v2 = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => {
            return Err(SnnError::Format(
                "not a skipper weight file (bad magic)".into(),
            ))
        }
    };
    let count = read_u32(reader)? as usize;
    if count > 1 << 20 {
        return Err(SnnError::Format(format!(
            "implausible record count ({count})"
        )));
    }
    let mut records = Vec::with_capacity(count);
    for index in 0..count {
        if v2 {
            let mut hashing = HashingReader {
                inner: reader,
                crc: Crc32::new(),
            };
            let record = read_record(&mut hashing, index)?;
            let computed = hashing.crc.finish();
            let stored = read_u32(reader)?;
            if stored != computed {
                return Err(SnnError::Format(format!(
                    "record {index} ('{}'): CRC mismatch (stored {stored:#010x}, computed {computed:#010x})",
                    record.name
                )));
            }
            records.push(record);
        } else {
            records.push(read_record(reader, index)?);
        }
    }
    if v2 {
        let trailer = read_u32(reader)? as usize;
        if trailer != count {
            return Err(SnnError::Format(format!(
                "trailing record count {trailer} disagrees with header count {count} (truncated?)"
            )));
        }
    }
    Ok(records)
}

/// Copy `records` into `params`, matching by name.
///
/// # Errors
///
/// Fails if a parameter has no record, a record has no parameter, or a
/// shape disagrees.
pub fn apply_records(params: &mut ParamStore, records: Vec<ParamRecord>) -> Result<(), SnnError> {
    let mut by_name: BTreeMap<String, ParamRecord> =
        records.into_iter().map(|r| (r.name.clone(), r)).collect();
    for p in params.iter_mut() {
        let record = by_name.remove(p.name()).ok_or_else(|| {
            SnnError::Mismatch(format!("no saved weights for parameter '{}'", p.name()))
        })?;
        if record.value.shape() != p.value().shape() {
            return Err(SnnError::Mismatch(format!(
                "shape mismatch for '{}': saved {} vs model {}",
                p.name(),
                record.value.shape(),
                p.value().shape()
            )));
        }
        p.value_mut()
            .data_mut()
            .copy_from_slice(record.value.data());
    }
    if let Some(extra) = by_name.keys().next() {
        return Err(SnnError::Mismatch(format!(
            "saved file contains unknown parameter '{extra}'"
        )));
    }
    Ok(())
}

/// Save `params` to the file at `path` (format v2).
///
/// The write is atomic: data goes to a sibling temporary file which is
/// renamed over `path` only after a successful flush, so an interrupted
/// save can never leave a half-written model behind.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_params(params: &ParamStore, path: impl AsRef<Path>) -> Result<(), SnnError> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
    write_params(params, &mut file)?;
    file.flush()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// A temporary sibling path for atomic writes (same directory, so the
/// final rename never crosses filesystems).
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".into());
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Load the file at `path` into `params` (matching by name and shape).
///
/// # Errors
///
/// See [`read_params`] and [`apply_records`].
pub fn load_params(params: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), SnnError> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    let records = read_params(&mut file)?;
    apply_records(params, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{custom_net, ModelConfig};
    use skipper_tensor::XorShiftRng;

    fn cfg() -> ModelConfig {
        ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        }
    }

    /// The legacy v1 writer, kept in tests to prove v1 files still load.
    fn write_params_v1(params: &ParamStore, buf: &mut Vec<u8>) {
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for p in params.iter() {
            buf.extend_from_slice(&encode_record(p.name(), p.value()));
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_every_weight() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        // Load into a differently initialised twin.
        let mut twin = custom_net(&ModelConfig { seed: 999, ..cfg() });
        let a0 = twin.params().iter().next().unwrap().value().clone();
        let records = read_params(&mut buf.as_slice()).unwrap();
        apply_records(twin.params_mut(), records).unwrap();
        for (p, q) in net.params().iter().zip(twin.params().iter()) {
            assert_eq!(p.value().data(), q.value().data(), "{}", p.name());
        }
        assert_ne!(
            a0.data(),
            twin.params().iter().next().unwrap().value().data(),
            "weights must actually change"
        );
    }

    #[test]
    fn v1_files_still_load() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params_v1(net.params(), &mut buf);
        let records = read_params(&mut buf.as_slice()).unwrap();
        let mut twin = custom_net(&ModelConfig { seed: 999, ..cfg() });
        apply_records(twin.params_mut(), records).unwrap();
        for (p, q) in net.params().iter().zip(twin.params().iter()) {
            assert_eq!(p.value().data(), q.value().data());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("skipper_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.skw");
        let net = custom_net(&cfg());
        save_params(net.params(), &path).unwrap();
        let mut twin = custom_net(&ModelConfig {
            seed: 31337,
            ..cfg()
        });
        load_params(twin.params_mut(), &path).unwrap();
        for (p, q) in net.params().iter().zip(twin.params().iter()) {
            assert_eq!(p.value().data(), q.value().data());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_params(&mut &b"NOTSKW\x01rest"[..]).unwrap_err();
        assert!(matches!(err, SnnError::Format(_)), "{err}");
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = read_params(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnnError::Format(_)), "{err}");
    }

    #[test]
    fn missing_trailer_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        buf.truncate(buf.len() - 4); // drop the trailing count
        assert!(read_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_byte_fails_crc_with_record_name() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        // Flip one bit in the middle of the first record's tensor data,
        // far enough in to be past the header and the name.
        let at = 60;
        buf[at] ^= 0x40;
        let err = read_params(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let records = read_params(&mut buf.as_slice()).unwrap();
        // A wider twin has different shapes.
        let mut wide = custom_net(&ModelConfig {
            width_mult: 0.5,
            ..cfg()
        });
        let err = apply_records(wide.params_mut(), records).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let net = custom_net(&cfg());
        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let mut records = read_params(&mut buf.as_slice()).unwrap();
        records.pop();
        let mut twin = custom_net(&cfg());
        let err = apply_records(twin.params_mut(), records).unwrap_err();
        assert!(err.to_string().contains("no saved weights"), "{err}");
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let dir = std::env::temp_dir().join("skipper_serialize_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.skw");
        let net = custom_net(&cfg());
        save_params(net.params(), &path).unwrap();
        assert!(path.exists());
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn saved_model_predicts_identically() {
        use crate::network::StepCtx;
        let mut rng = XorShiftRng::new(8);
        let input = Tensor::rand([1, 3, 8, 8], &mut rng);
        let net = custom_net(&cfg());
        let mut state = net.init_state(1);
        let expect = net.step_infer(&input, &mut state, &StepCtx::eval(0));

        let mut buf = Vec::new();
        write_params(net.params(), &mut buf).unwrap();
        let mut twin = custom_net(&ModelConfig {
            seed: 1234,
            ..cfg()
        });
        apply_records(twin.params_mut(), read_params(&mut buf.as_slice()).unwrap()).unwrap();
        let mut state2 = twin.init_state(1);
        let got = twin.step_infer(&input, &mut state2, &StepCtx::eval(0));
        assert!(got.logits.allclose(&expect.logits, 1e-6));
    }
}
