//! Trainable parameters and their binding into short-lived tapes.
//!
//! Checkpointed training rebuilds a fresh autodiff graph for every time
//! segment, but the weights persist across segments and iterations. The
//! [`ParamStore`] owns them (booked under [`Category::Weights`]) together
//! with their gradient accumulators ([`Category::WeightGrads`]); a
//! [`ParamBinder`] lazily inserts each parameter into the current graph as
//! a leaf and, after the backward sweep, harvests the leaf gradients back
//! into the store — *accumulating* across segments, exactly as the paper's
//! Eq. 2 sums error gradients over all timesteps.
//!
//! [`Category::Weights`]: skipper_memprof::Category::Weights
//! [`Category::WeightGrads`]: skipper_memprof::Category::WeightGrads

use skipper_autograd::{Graph, Var};
use skipper_memprof::{Category, CategoryGuard};
use skipper_tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Dense index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One trainable tensor plus its gradient accumulator.
#[derive(Debug)]
pub struct Parameter {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Parameter {
    /// Diagnostic name (e.g. `"conv3.weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current weights.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable weights (optimizer updates).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Storage-sharing handle to this parameter (Arc clones; no new bytes
    /// are booked with the memory tracker). Used by the data-parallel
    /// engine to hand read-only weight views to worker threads; writers
    /// must go through the original, and shard gradients are collected in
    /// a [`ShardGrads`] sink rather than the shared accumulator.
    pub fn share(&self) -> Parameter {
        Parameter {
            name: self.name.clone(),
            value: self.value.clone(),
            grad: self.grad.clone(),
        }
    }
}

/// Owner of all trainable parameters of a network.
#[derive(Debug, Default)]
pub struct ParamStore {
    params: Vec<Parameter>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Register a parameter; the value is re-booked under
    /// [`Category::Weights`] and a zero gradient under
    /// [`Category::WeightGrads`].
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let value = {
            // A fresh copy (not `deep_clone`, which preserves the source's
            // category) so the bytes are booked as weights.
            let _g = CategoryGuard::new(Category::Weights);
            Tensor::from_vec(value.data().to_vec(), value.shape().clone())
        };
        let grad = {
            let _g = CategoryGuard::new(Category::WeightGrads);
            Tensor::zeros(value.shape().clone())
        };
        self.params.push(Parameter {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> u64 {
        self.params.iter().map(|p| p.value.numel() as u64).sum()
    }

    /// The parameter behind `id`.
    pub fn param(&self, id: ParamId) -> &Parameter {
        &self.params[id.0]
    }

    /// The value tensor behind `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable parameter access.
    pub fn param_mut(&mut self, id: ParamId) -> &mut Parameter {
        &mut self.params[id.0]
    }

    /// Iterate over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Parameter> {
        self.params.iter()
    }

    /// Iterate mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Parameter> {
        self.params.iter_mut()
    }

    /// Zero every gradient accumulator (start of an iteration).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill(0.0);
        }
    }

    /// Add `grad` into the accumulator of `id`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Storage-sharing view of the whole store (see [`Parameter::share`]).
    pub fn share(&self) -> ParamStore {
        ParamStore {
            params: self.params.iter().map(Parameter::share).collect(),
        }
    }
}

/// Per-shard gradient sink.
///
/// A data-parallel worker cannot accumulate into the shared
/// [`ParamStore`] (its tensors are copy-on-write views owned by the main
/// thread), so each shard harvests into its own `ShardGrads` and the
/// engine reduces the sinks in a fixed order afterwards. Slots stay
/// `None` for parameters the shard never touched.
#[derive(Debug)]
pub struct ShardGrads {
    grads: Vec<Option<Tensor>>,
}

impl ShardGrads {
    /// Empty sink sized for `store`.
    pub fn for_store(store: &ParamStore) -> ShardGrads {
        ShardGrads {
            grads: (0..store.len()).map(|_| None).collect(),
        }
    }

    /// Add `grad` into slot `index` (moving it in if the slot was empty).
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `index` is out of range.
    pub fn accumulate(&mut self, index: usize, grad: Tensor) {
        match &mut self.grads[index] {
            Some(t) => t.add_assign(&grad),
            slot @ None => *slot = Some(grad),
        }
    }

    /// Per-parameter gradients as plain buffers, in store order.
    ///
    /// The buffers own no tensor storage, so they can cross threads
    /// without upsetting the thread-local memory tracker.
    pub fn into_raw(self) -> Vec<Option<Vec<f32>>> {
        self.grads
            .into_iter()
            .map(|g| g.map(|t| t.data().to_vec()))
            .collect()
    }
}

/// Per-graph cache of parameter leaves.
///
/// Binding is lazy: a parameter used by several timesteps within one
/// segment is inserted once and its gradient accumulates on that single
/// leaf; [`ParamBinder::harvest`] then moves the leaf gradients into the
/// store.
#[derive(Debug)]
pub struct ParamBinder {
    vars: Vec<Option<Var>>,
}

impl ParamBinder {
    /// Binder sized for `store`.
    pub fn new(store: &ParamStore) -> ParamBinder {
        ParamBinder {
            vars: vec![None; store.len()],
        }
    }

    /// The graph leaf for `id`, inserting it on first use.
    pub fn bind(&mut self, g: &mut Graph, store: &ParamStore, id: ParamId) -> Var {
        if let Some(v) = self.vars[id.0] {
            return v;
        }
        // Cheap: the leaf shares the parameter's storage (Arc clone).
        let v = g.leaf(store.value(id).clone(), true);
        self.vars[id.0] = Some(v);
        v
    }

    /// Move every bound leaf's gradient from `g` into `store`'s
    /// accumulators. Call after `g.backward()`.
    pub fn harvest(&self, g: &mut Graph, store: &mut ParamStore) {
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(v) = v {
                if let Some(grad) = g.take_grad(*v) {
                    store.accumulate_grad(ParamId(i), &grad);
                }
            }
        }
    }

    /// Like [`ParamBinder::harvest`], but into a per-shard sink instead of
    /// the shared store.
    pub fn harvest_into(&self, g: &mut Graph, sink: &mut ShardGrads) {
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(v) = v {
                if let Some(grad) = g.take_grad(*v) {
                    sink.accumulate(i, grad);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::ones([2, 2]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.scalar_count(), 4);
        assert_eq!(store.param(id).name(), "w");
        assert_eq!(store.value(id).data(), &[1.0; 4]);
        assert_eq!(store.param(id).grad().data(), &[0.0; 4]);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros([2]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![1.0, 2.0], [2]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5, 0.5], [2]));
        assert_eq!(store.param(id).grad().data(), &[1.5, 2.5]);
        store.zero_grads();
        assert_eq!(store.param(id).grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn weights_and_grads_booked_under_their_categories() {
        use skipper_memprof as mp;
        mp::reset_all();
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros([256]));
        let snap = mp::snapshot();
        assert_eq!(snap.live(mp::Category::Weights), 1024);
        assert_eq!(snap.live(mp::Category::WeightGrads), 1024);
        drop(store);
        assert_eq!(mp::snapshot().total_live(), 0);
    }

    #[test]
    fn share_books_no_new_bytes_and_tracks_values() {
        use skipper_memprof as mp;
        mp::reset_all();
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros([64]));
        let before = mp::snapshot().total_live();
        let view = store.share();
        assert_eq!(mp::snapshot().total_live(), before, "share is Arc-only");
        assert!(view.value(id).shares_storage(store.value(id)));
        drop(view);
        assert_eq!(mp::snapshot().total_live(), before);
    }

    #[test]
    fn shard_grads_accumulate_and_export() {
        let mut store = ParamStore::new();
        let _a = store.add("a", Tensor::zeros([2]));
        let _b = store.add("b", Tensor::zeros([3]));
        let mut sink = ShardGrads::for_store(&store);
        sink.accumulate(0, Tensor::from_vec(vec![1.0, 2.0], [2]));
        sink.accumulate(0, Tensor::from_vec(vec![0.5, 0.5], [2]));
        let raw = sink.into_raw();
        assert_eq!(raw[0].as_deref(), Some([1.5, 2.5].as_slice()));
        assert!(raw[1].is_none(), "untouched parameter stays None");
    }

    #[test]
    fn binder_binds_once_and_harvests() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![2.0], [1]));
        let mut g = Graph::new();
        let mut binder = ParamBinder::new(&store);
        let v1 = binder.bind(&mut g, &store, id);
        let v2 = binder.bind(&mut g, &store, id);
        assert_eq!(v1, v2, "same leaf reused");
        // y = w·w → dy/dw = 2w = 4
        let y = g.mul(v1, v2);
        g.seed_grad(y, Tensor::ones([1]));
        g.backward();
        binder.harvest(&mut g, &mut store);
        assert_eq!(store.param(id).grad().data(), &[4.0]);
        // Harvest from a second "segment" accumulates.
        let mut g2 = Graph::new();
        let mut b2 = ParamBinder::new(&store);
        let v = b2.bind(&mut g2, &store, id);
        let y2 = g2.scale(v, 3.0);
        g2.seed_grad(y2, Tensor::ones([1]));
        g2.backward();
        b2.harvest(&mut g2, &mut store);
        assert_eq!(store.param(id).grad().data(), &[7.0]);
    }
}
