//! Classification metrics beyond plain accuracy.

use skipper_tensor::Tensor;

/// A confusion matrix over `k` classes.
///
/// Rows are true labels, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix for `k` classes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> ConfusionMatrix {
        assert!(k > 0, "need at least one class");
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Record one `(truth, prediction)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(truth < self.k && prediction < self.k, "class out of range");
        self.counts[truth * self.k + prediction] += 1;
    }

    /// Record a batch of logits `[B,K]` against labels.
    pub fn record_logits(&mut self, logits: &Tensor, labels: &[usize]) {
        for (pred, &truth) in logits.argmax_rows().iter().zip(labels) {
            self.record(truth, *pred);
        }
    }

    /// Count at `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> u64 {
        self.counts[truth * self.k + prediction]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` for classes never seen).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.k).map(|j| self.count(class, j)).sum();
        (row > 0).then(|| self.count(class, class) as f64 / row as f64)
    }

    /// Per-class precision (`None` for classes never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.k).map(|i| self.count(i, class)).sum();
        (col > 0).then(|| self.count(class, class) as f64 / col as f64)
    }

    /// Macro-averaged F1 over classes with defined precision and recall.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.k {
            if let (Some(p), Some(r)) = (self.precision(c), self.recall(c)) {
                if p + r > 0.0 {
                    sum += 2.0 * p * r / (p + r);
                }
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Fraction of rows whose label is among the `k` largest logits.
///
/// # Panics
///
/// Panics if shapes disagree or `k` is zero.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let (rows, cols) = logits.shape().as_2d();
    assert_eq!(rows, labels.len(), "one label per row");
    let k = k.min(cols);
    let mut hits = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let label_score = row[label];
        let better = row.iter().filter(|&&v| v > label_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f64 / rows.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(2, 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.accuracy(), 0.75);
    }

    #[test]
    fn precision_recall_f1() {
        let mut m = ConfusionMatrix::new(2);
        // class 0: 3 true, 2 recalled; predictions of 0: 2 correct + 1 wrong.
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 0);
        m.record(1, 1);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!(m.macro_f1() > 0.5 && m.macro_f1() < 1.0);
    }

    #[test]
    fn unseen_class_has_no_recall() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        assert!(m.recall(2).is_none());
        assert!(m.precision(1).is_none());
    }

    #[test]
    fn record_logits_uses_argmax() {
        let mut m = ConfusionMatrix::new(2);
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], [2, 2]);
        m.record_logits(&logits, &[0, 0]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
    }

    #[test]
    fn top_k_bounds_and_known_case() {
        let logits = Tensor::from_vec(vec![0.5, 0.3, 0.2, 0.4, 0.6, 0.3], [2, 3]);
        // Row 0 label 1: rank 2 → in top-2 but not top-1.
        // Row 1 label 2: rank 3 → only in top-3.
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 1), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 2), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 3), 1.0);
        // k=1 agrees with the confusion-matrix accuracy.
        let mut m = ConfusionMatrix::new(3);
        m.record_logits(&logits, &[1, 2]);
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 1), m.accuracy());
    }
}
